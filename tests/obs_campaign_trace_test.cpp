// End-to-end observability contract over a real campaign (DESIGN.md
// §10): the span tree covers campaign → family → experiment → attempt →
// prepare/score with cache builds and backoff events hanging off it;
// under a FakeClock single-threaded runs serialize byte-identically,
// and the canonical report is byte-identical with tracing on or off.
// On the tsan label list so a threaded traced run soaks the Tracer and
// MetricsRegistry under contention.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "datasets/tpcdi.h"
#include "harness/campaign.h"
#include "harness/journal.h"
#include "harness/json_export.h"
#include "json_mini.h"
#include "matchers/fault_injection.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace valentine {
namespace {

std::vector<DatasetPair> SmallSuite() {
  Table original = MakeTpcdiProspect(25, 99);
  PairSuiteOptions opt;
  opt.row_overlaps = {0.5};
  opt.column_overlaps = {0.5};
  opt.schema_noise_variants = false;
  opt.instance_noise_variants = false;
  return BuildFabricatedSuite(original, opt);
}

MethodFamily SmallFamily() {
  MethodFamily family = JaccardLevenshteinFamily();
  family.grid.resize(2);
  return family;
}

MethodFamily FlakyFamily(size_t fail_first) {
  FaultPlan plan;
  plan.fail_first = fail_first;
  MethodFamily base = SmallFamily();
  MethodFamily wrapped{base.name, {}};
  for (const ConfiguredMatcher& cm : base.grid) {
    wrapped.grid.push_back(
        {cm.description,
         std::make_shared<FaultInjectingMatcher>(cm.matcher, plan)});
  }
  return wrapped;
}

struct TracedRun {
  CampaignReport report;
  std::string chrome;
  std::string jsonl;
  std::string prometheus;
  std::vector<SpanRecord> spans;
};

TracedRun RunTraced(const std::vector<MethodFamily>& families,
                    size_t num_threads, size_t max_attempts = 1) {
  FakeClock clock;
  Tracer tracer(&clock);
  MetricsRegistry metrics;
  CampaignOptions options;
  options.num_threads = num_threads;
  options.policy.max_attempts = max_attempts;
  options.policy.backoff_wait = [](double) {};  // no real sleeping
  options.clock = &clock;
  options.tracer = &tracer;
  options.metrics = &metrics;
  TracedRun out;
  out.report = RunCampaignOnSuite(SmallSuite(), families, options);
  out.spans = tracer.Snapshot();
  out.chrome = ToChromeTraceJson(out.spans);
  out.jsonl = ToTraceJsonl(out.spans);
  out.prometheus = metrics.RenderPrometheusText();
  return out;
}

TEST(CampaignTraceTest, SpanTaxonomyCoversEveryStage) {
  TracedRun run = RunTraced({SmallFamily()}, /*num_threads=*/1);

  std::set<std::string> kinds;
  for (const SpanRecord& span : run.spans) kinds.insert(span.kind);
  // The acceptance bar is >= 5 distinct kinds; a cached campaign
  // produces seven.
  for (const char* kind : {"campaign", "family", "experiment", "attempt",
                           "prepare", "score", "cache-build"}) {
    EXPECT_EQ(kinds.count(kind), 1u) << "missing span kind " << kind;
  }
  EXPECT_GE(kinds.size(), 5u);
}

TEST(CampaignTraceTest, ParentageChainsFromCampaignToScore) {
  TracedRun run = RunTraced({SmallFamily()}, /*num_threads=*/1);

  std::map<uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& span : run.spans) by_id[span.span_id] = &span;

  auto parent_kind = [&](const SpanRecord& span) -> std::string {
    auto it = by_id.find(span.parent_id);
    return it == by_id.end() ? "" : it->second->kind;
  };

  size_t scores = 0;
  for (const SpanRecord& span : run.spans) {
    if (span.kind == "campaign") {
      EXPECT_EQ(span.parent_id, 0u);
    } else if (span.kind == "family") {
      EXPECT_EQ(parent_kind(span), "campaign");
    } else if (span.kind == "experiment") {
      EXPECT_EQ(parent_kind(span), "family");
    } else if (span.kind == "attempt") {
      EXPECT_EQ(parent_kind(span), "experiment");
    } else if (span.kind == "score") {
      ++scores;
      EXPECT_EQ(parent_kind(span), "attempt");
    } else if (span.kind == "prepare") {
      // Artifact-cache prepares hang off their cache-build span.
      EXPECT_EQ(parent_kind(span), "cache-build");
    }
  }
  EXPECT_GT(scores, 0u);
}

TEST(CampaignTraceTest, ExperimentTraceIdsAreJournalKeys) {
  std::vector<MethodFamily> families = {SmallFamily()};
  TracedRun run = RunTraced(families, /*num_threads=*/1);

  std::set<std::string> expected;
  for (const DatasetPair& pair : SmallSuite()) {
    for (const ConfiguredMatcher& cm : families[0].grid) {
      expected.insert(JournalKey(families[0].name, pair.id, cm.description));
    }
  }
  std::set<std::string> actual;
  for (const SpanRecord& span : run.spans) {
    if (span.kind == "experiment") actual.insert(span.trace_id);
  }
  EXPECT_EQ(actual, expected);
}

TEST(CampaignTraceTest, FakeClockRunsAreByteIdentical) {
  TracedRun first = RunTraced({SmallFamily()}, /*num_threads=*/1);
  TracedRun second = RunTraced({SmallFamily()}, /*num_threads=*/1);
  EXPECT_EQ(first.chrome, second.chrome);
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_EQ(first.prometheus, second.prometheus);
  EXPECT_EQ(ToJson(first.report), ToJson(second.report));
  // The exported Chrome trace parses as one JSON document.
  EXPECT_NE(json_mini::Parse(first.chrome), nullptr);
}

TEST(CampaignTraceTest, ReportIsByteIdenticalWithTracingOnOrOff) {
  FakeClock clock;
  CampaignOptions off;
  off.num_threads = 1;
  off.clock = &clock;
  const std::string untraced =
      ToJson(RunCampaignOnSuite(SmallSuite(), {SmallFamily()}, off));

  TracedRun traced = RunTraced({SmallFamily()}, /*num_threads=*/1);
  EXPECT_EQ(ToJson(traced.report), untraced);
  // The report never carries cache diagnostics — those live only on the
  // metrics registry (the single exclusion point).
  EXPECT_EQ(untraced.find("artifact_cache"), std::string::npos);
}

TEST(CampaignTraceTest, RetriesProduceAttemptSpansAndBackoffEvents) {
  TracedRun run =
      RunTraced({FlakyFamily(/*fail_first=*/1)}, /*num_threads=*/1,
                /*max_attempts=*/3);

  // Every experiment fails once then succeeds: two attempt spans per
  // experiment and one backoff event between them.
  std::map<std::string, size_t> attempts_by_trace;
  std::map<std::string, size_t> backoffs_by_trace;
  for (const SpanRecord& span : run.spans) {
    if (span.kind == "attempt") ++attempts_by_trace[span.trace_id];
    if (span.kind == "backoff") {
      ++backoffs_by_trace[span.trace_id];
      ASSERT_FALSE(span.attributes.empty());
      EXPECT_EQ(span.attributes[0].first, "delay_ms");
      EXPECT_NE(span.attributes[0].second, "0");
    }
  }
  ASSERT_FALSE(attempts_by_trace.empty());
  for (const auto& [trace_id, count] : attempts_by_trace) {
    EXPECT_EQ(count, 2u) << trace_id;
    EXPECT_EQ(backoffs_by_trace[trace_id], 1u) << trace_id;
  }

  // Attempt spans carry per-attempt codes; the experiment span carries
  // the terminal code and attempt count.
  for (const SpanRecord& span : run.spans) {
    if (span.kind != "experiment") continue;
    std::map<std::string, std::string> attrs(span.attributes.begin(),
                                             span.attributes.end());
    EXPECT_EQ(attrs["code"], "OK") << span.trace_id;
    EXPECT_EQ(attrs["attempts"], "2") << span.trace_id;
  }

  // Retry metrics line up with the report.
  EXPECT_EQ(run.report.families[0].retry_attempts,
            run.report.num_experiments);
  EXPECT_NE(run.prometheus.find("valentine_experiment_retries_total{family="),
            std::string::npos);
}

TEST(CampaignTraceTest, MetricsCountersMatchReportOutcomes) {
  FakeClock clock;
  MetricsRegistry metrics;
  CampaignOptions options;
  options.num_threads = 1;
  options.clock = &clock;
  options.metrics = &metrics;
  std::vector<MethodFamily> families = {SmallFamily()};
  CampaignReport report =
      RunCampaignOnSuite(SmallSuite(), families, options);

  const MetricLabels labels = {{"family", families[0].name}};
  EXPECT_EQ(metrics.CounterValue("valentine_experiments_total", labels),
            report.num_experiments);
  EXPECT_EQ(
      metrics.CounterValue("valentine_experiments_replayed_total", labels),
      0u);
  EXPECT_EQ(metrics.CounterValue("valentine_profile_cache_builds_total"),
            2u * report.num_pairs);  // source + target per pair, built once
  std::string text = metrics.RenderPrometheusText();
  EXPECT_NE(text.find("# HELP valentine_experiments_total"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE valentine_experiment_runtime_ms histogram"),
      std::string::npos);
  // Fake clock: every runtime observation is exactly 0 and lands in the
  // first bucket.
  EXPECT_NE(text.find("valentine_experiment_runtime_ms_count{family=\"" +
                      families[0].name + "\"} " +
                      std::to_string(report.num_experiments)),
            std::string::npos)
      << text;
}

// Threaded traced campaign (tsan coverage): the report still matches
// the single-threaded bytes, the span *set* is complete, and exports
// stay parseable — only byte-level trace stability is exempt (cache
// builds land on whichever thread loses the race).
TEST(CampaignTraceConcurrencyTest, ThreadedTracedRunKeepsReportIdentity) {
  TracedRun sequential = RunTraced({SmallFamily()}, /*num_threads=*/1);
  TracedRun threaded = RunTraced({SmallFamily()}, /*num_threads=*/4);
  EXPECT_EQ(ToJson(threaded.report), ToJson(sequential.report));

  std::set<std::string> experiment_traces;
  for (const SpanRecord& span : threaded.spans) {
    if (span.kind == "experiment") experiment_traces.insert(span.trace_id);
  }
  std::set<std::string> expected_traces;
  for (const SpanRecord& span : sequential.spans) {
    if (span.kind == "experiment") expected_traces.insert(span.trace_id);
  }
  EXPECT_EQ(experiment_traces, expected_traces);
  EXPECT_NE(json_mini::Parse(threaded.chrome), nullptr);
}

}  // namespace
}  // namespace valentine
