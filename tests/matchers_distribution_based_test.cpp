#include "matchers/distribution_based.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace valentine {
namespace {

Column MakeIntColumn(const std::string& name, std::vector<int64_t> values) {
  Column c(name, DataType::kInt64);
  for (int64_t v : values) c.Append(Value::Int(v));
  return c;
}

TEST(ClusterSelectionTest, EmptyGraph) {
  EXPECT_TRUE(SolveClusterSelection(0, {}, 10).empty());
}

TEST(ClusterSelectionTest, ExactSolverGroupsPositivePairs) {
  // 0-1 strongly attract, 2 repels both: expect {0,1} | {2}.
  std::vector<std::vector<double>> w(3, std::vector<double>(3, -1.0));
  w[0][1] = 1.0;
  auto assign = SolveClusterSelection(3, w, 10);
  EXPECT_EQ(assign[0], assign[1]);
  EXPECT_NE(assign[0], assign[2]);
}

TEST(ClusterSelectionTest, ExactSolverSplitsNegativeEdges) {
  std::vector<std::vector<double>> w(2, std::vector<double>(2, 0.0));
  w[0][1] = -0.5;
  auto assign = SolveClusterSelection(2, w, 10);
  EXPECT_NE(assign[0], assign[1]);
}

TEST(ClusterSelectionTest, ExactChoosesBestOfConflictingMerges) {
  // 0-1 weight 1.0, 1-2 weight 0.8, 0-2 weight -2.0: merging all three
  // costs -0.2, so the best partition keeps only the 0-1 edge.
  std::vector<std::vector<double>> w(3, std::vector<double>(3, 0.0));
  w[0][1] = 1.0;
  w[1][2] = 0.8;
  w[0][2] = -2.0;
  auto assign = SolveClusterSelection(3, w, 10);
  EXPECT_EQ(assign[0], assign[1]);
  EXPECT_NE(assign[2], assign[0]);
}

TEST(ClusterSelectionTest, GreedyMatchesExactOnEasyInstance) {
  std::vector<std::vector<double>> w(4, std::vector<double>(4, -0.5));
  w[0][1] = 1.0;
  w[2][3] = 1.0;
  auto exact = SolveClusterSelection(4, w, 10);
  auto greedy = SolveClusterSelection(4, w, 0);  // force greedy
  EXPECT_EQ(exact[0] == exact[1], greedy[0] == greedy[1]);
  EXPECT_EQ(exact[2] == exact[3], greedy[2] == greedy[3]);
  EXPECT_NE(greedy[0], greedy[2]);
}

TEST(DistributionBasedTest, IdenticalColumnsMatch) {
  Rng rng(1);
  std::vector<int64_t> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.UniformInt(0, 100));
  Table src("s");
  ASSERT_TRUE(src.AddColumn(MakeIntColumn("x", values)).ok());
  Table tgt("t");
  ASSERT_TRUE(tgt.AddColumn(MakeIntColumn("y", values)).ok());
  MatchResult r = DistributionBasedMatcher().Match(src, tgt);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].source.column, "x");
  EXPECT_GT(r[0].score, 0.9);
}

TEST(DistributionBasedTest, DisjointDistributionsRejected) {
  std::vector<int64_t> low, high;
  for (int i = 0; i < 200; ++i) {
    low.push_back(i % 50);
    high.push_back(100000 + i % 50);
  }
  Table src("s");
  ASSERT_TRUE(src.AddColumn(MakeIntColumn("low", low)).ok());
  Table tgt("t");
  ASSERT_TRUE(tgt.AddColumn(MakeIntColumn("high", high)).ok());
  MatchResult r = DistributionBasedMatcher().Match(src, tgt);
  EXPECT_TRUE(r.empty());  // phase 1 EMD too large
}

TEST(DistributionBasedTest, SimilarDistributionNoOverlapKilledByPhase2) {
  // Same range, zero intersection: phase 1 passes, phase 2 must prune
  // (intersection is empty).
  std::vector<int64_t> evens, odds;
  for (int i = 0; i < 500; ++i) {
    evens.push_back(2 * i);
    odds.push_back(2 * i + 1);
  }
  Table src("s");
  ASSERT_TRUE(src.AddColumn(MakeIntColumn("evens", evens)).ok());
  Table tgt("t");
  ASSERT_TRUE(tgt.AddColumn(MakeIntColumn("odds", odds)).ok());
  MatchResult r = DistributionBasedMatcher().Match(src, tgt);
  EXPECT_TRUE(r.empty());
}

TEST(DistributionBasedTest, LooserThresholdsFindMore) {
  // Perturbed copy: strict thresholds may reject, loose ones accept.
  Rng rng(2);
  std::vector<int64_t> base, shifted;
  for (int i = 0; i < 300; ++i) {
    int64_t v = rng.UniformInt(0, 1000);
    base.push_back(v);
    shifted.push_back(v + (i % 10 == 0 ? 150 : 0));  // 10% shifted
  }
  Table src("s");
  ASSERT_TRUE(src.AddColumn(MakeIntColumn("a", base)).ok());
  Table tgt("t");
  ASSERT_TRUE(tgt.AddColumn(MakeIntColumn("b", shifted)).ok());

  DistributionBasedOptions strict;
  strict.phase1_threshold = 0.001;
  strict.phase2_threshold = 0.001;
  DistributionBasedOptions loose;
  loose.phase1_threshold = 0.5;
  loose.phase2_threshold = 0.5;
  size_t strict_count = DistributionBasedMatcher(strict).Match(src, tgt).size();
  size_t loose_count = DistributionBasedMatcher(loose).Match(src, tgt).size();
  EXPECT_GE(loose_count, strict_count);
  EXPECT_EQ(loose_count, 1u);
}

TEST(DistributionBasedTest, StringColumnsViaHashedPoints) {
  Column a("names_a", DataType::kString);
  Column b("names_b", DataType::kString);
  for (int i = 0; i < 100; ++i) {
    std::string v = "name_" + std::to_string(i % 30);
    a.Append(Value::String(v));
    b.Append(Value::String(v));
  }
  Table src("s");
  ASSERT_TRUE(src.AddColumn(std::move(a)).ok());
  Table tgt("t");
  ASSERT_TRUE(tgt.AddColumn(std::move(b)).ok());
  MatchResult r = DistributionBasedMatcher().Match(src, tgt);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_GT(r[0].score, 0.9);
}

TEST(DistributionBasedTest, MultiColumnDisambiguation) {
  Rng rng(3);
  std::vector<int64_t> ages, incomes;
  for (int i = 0; i < 400; ++i) {
    ages.push_back(rng.UniformInt(18, 90));
    incomes.push_back(rng.UniformInt(20000, 150000));
  }
  Table src("s");
  ASSERT_TRUE(src.AddColumn(MakeIntColumn("age", ages)).ok());
  ASSERT_TRUE(src.AddColumn(MakeIntColumn("income", incomes)).ok());
  Table tgt("t");
  ASSERT_TRUE(tgt.AddColumn(MakeIntColumn("years", ages)).ok());
  ASSERT_TRUE(tgt.AddColumn(MakeIntColumn("pay", incomes)).ok());
  MatchResult r = DistributionBasedMatcher().Match(src, tgt);
  ASSERT_EQ(r.size(), 2u);
  for (const Match& m : r.matches()) {
    bool correct = (m.source.column == "age" && m.target.column == "years") ||
                   (m.source.column == "income" && m.target.column == "pay");
    EXPECT_TRUE(correct) << m.source.column << " -> " << m.target.column;
  }
}

TEST(DistributionBasedTest, MetadataDeclared) {
  DistributionBasedMatcher m;
  EXPECT_EQ(m.Name(), "DistributionBased");
  EXPECT_EQ(m.Category(), MatcherCategory::kInstanceBased);
}

}  // namespace
}  // namespace valentine
