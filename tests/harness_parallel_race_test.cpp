// Determinism contract of RunFamilyOnSuiteParallel (parallel.h): results
// are byte-identical to the sequential runner for every matcher family
// and every thread count, run after run. This is the test ThreadSanitizer
// actually exercises (`ctest -L tsan`): all workers share the same
// matcher instances, so any unsynchronized mutable state (e.g. Cupid's
// linguistic-similarity memo cache) shows up both as a TSan report and as
// a byte diff here.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "datasets/tpcdi.h"
#include "harness/json_export.h"
#include "harness/parallel.h"
#include "matchers/embdi.h"
#include "obs/clock.h"

namespace valentine {
namespace {

// Every run measures time on a shared non-advancing FakeClock
// (FamilyRunContext::clock), so timing fields are deterministically
// zero and ToJson output is byte-comparable unmodified — the fake-clock
// replacement for the old zero-out-total_ms canonicalization.
FakeClock& SharedFakeClock() {
  static FakeClock clock;
  return clock;
}

FamilyRunContext ClockedRun() {
  FamilyRunContext run;
  run.clock = &SharedFakeClock();
  return run;
}

// First `n` grid points of a family: full grids (Cupid alone has 96)
// would swamp the sanitizer cycle without adding concurrency coverage.
// Two configurations still share per-instance caches across threads.
MethodFamily Truncate(MethodFamily family, size_t n) {
  if (family.grid.size() > n) family.grid.resize(n);
  return family;
}

Ontology RaceTestOntology() {
  Ontology o;
  size_t root = o.AddClass("root", {"entity"});
  o.AddSubclass(root, "person", {"person", "customer", "prospect"});
  o.AddSubclass(root, "address", {"address", "city", "country"});
  return o;
}

MethodFamily MakeFamily(const std::string& name) {
  if (name == "Cupid") return Truncate(CupidFamily(), 2);
  if (name == "SimilarityFlooding") return SimilarityFloodingFamily();
  if (name == "COMA") return ComaFamily();
  if (name == "Distribution") return Truncate(DistributionFamily1(), 2);
  if (name == "SemProp") {
    static const Ontology kOntology = RaceTestOntology();
    return Truncate(SemPropFamily(&kOntology), 2);
  }
  if (name == "EmbDI") {
    // Minimal word2vec budget: the default EmbdiFamily() trains ~60s of
    // embeddings per thread-count case, which TSan would stretch past
    // the ctest timeout. Concurrency coverage only needs Match to run,
    // not to converge.
    EmbdiOptions opt;
    opt.dimensions = 8;
    opt.walks_per_node = 1;
    opt.epochs = 1;
    opt.sentence_length = 20;
    opt.max_rows = 40;
    MethodFamily family{"EmbDI", {}};
    family.grid.push_back(
        {"word2vec tiny", std::make_shared<EmbdiMatcher>(opt)});
    return family;
  }
  if (name == "JaccardLevenshtein") return Truncate(JaccardLevenshteinFamily(), 2);
  ADD_FAILURE() << "unknown family " << name;
  return {};
}

const std::vector<DatasetPair>& SharedSuite() {
  static const std::vector<DatasetPair> kSuite = [] {
    Table original = MakeTpcdiProspect(30, 99);
    PairSuiteOptions opt;
    opt.row_overlaps = {0.5};
    opt.column_overlaps = {0.5};
    opt.instance_noise_variants = false;
    return BuildFabricatedSuite(original, opt);
  }();
  return kSuite;
}

// Sequential baselines are deterministic per family, so compute each one
// once and share it across the four thread-count instantiations.
const std::string& SequentialBaseline(const std::string& family_name) {
  static std::map<std::string, std::string> baselines;
  auto it = baselines.find(family_name);
  if (it == baselines.end()) {
    MethodFamily family = MakeFamily(family_name);
    it = baselines
             .emplace(family_name,
                      ToJson(RunFamilyOnSuite(family, SharedSuite(),
                                              ClockedRun())))
             .first;
  }
  return it->second;
}

// (family, num_threads); 0 = hardware concurrency.
using RaceParam = std::tuple<std::string, size_t>;

class ParallelDeterminismTest : public ::testing::TestWithParam<RaceParam> {};

TEST_P(ParallelDeterminismTest, ParallelMatchesSequentialBytes) {
  const auto& [family_name, num_threads] = GetParam();
  const std::string& expected = SequentialBaseline(family_name);
  ASSERT_FALSE(SharedSuite().empty());

  // One family object for all repeats: workers share matcher instances,
  // and warm memo caches must not change results.
  MethodFamily family = MakeFamily(family_name);
  for (int repeat = 0; repeat < 3; ++repeat) {
    auto outcomes = RunFamilyOnSuiteParallel(family, SharedSuite(),
                                             num_threads, ClockedRun());
    EXPECT_EQ(ToJson(std::move(outcomes)), expected)
        << family_name << " diverged from sequential with "
        << (num_threads == 0 ? std::string("hardware") :
                               std::to_string(num_threads))
        << " threads (repeat " << repeat << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAllThreadCounts, ParallelDeterminismTest,
    ::testing::Combine(
        ::testing::Values("Cupid", "SimilarityFlooding", "COMA",
                          "Distribution", "SemProp", "EmbDI",
                          "JaccardLevenshtein"),
        // 1 exercises the sequential fallback; 0 = hardware concurrency.
        ::testing::Values<size_t>(1, 2, 8, 0)),
    [](const ::testing::TestParamInfo<RaceParam>& info) {
      // No structured bindings here: the preprocessor would split the
      // macro argument at the comma inside the bracket list.
      size_t threads = std::get<1>(info.param);
      return std::get<0>(info.param) + "_t" +
             (threads == 0 ? std::string("hw") : std::to_string(threads));
    });

// kConfig granularity slices work per (pair, configuration) and folds
// per-config results with ReducePairOutcome; the fold — and therefore
// the bytes — must still match the sequential runner. A shared
// ProfileCache rides along so TSan also sees concurrent GetOrBuild and
// concurrent artifact reads.
class ConfigGranularityDeterminismTest
    : public ::testing::TestWithParam<RaceParam> {};

TEST_P(ConfigGranularityDeterminismTest, ConfigSlicingMatchesSequentialBytes) {
  const auto& [family_name, num_threads] = GetParam();
  const std::string& expected = SequentialBaseline(family_name);
  ASSERT_FALSE(SharedSuite().empty());

  MethodFamily family = MakeFamily(family_name);
  ProfileCache cache;
  FamilyRunContext run = ClockedRun();
  run.profiles = &cache;
  for (int repeat = 0; repeat < 3; ++repeat) {
    auto outcomes =
        RunFamilyOnSuiteParallel(family, SharedSuite(), num_threads, run,
                                 ParallelGranularity::kConfig);
    EXPECT_EQ(ToJson(std::move(outcomes)), expected)
        << family_name << " diverged from sequential under kConfig with "
        << (num_threads == 0 ? std::string("hardware") :
                               std::to_string(num_threads))
        << " threads (repeat " << repeat << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesConfigGranularity, ConfigGranularityDeterminismTest,
    ::testing::Combine(
        ::testing::Values("Cupid", "SimilarityFlooding", "COMA",
                          "Distribution", "SemProp", "EmbDI",
                          "JaccardLevenshtein"),
        // Two counts keep the sanitizer cycle bounded; 0 = hardware.
        ::testing::Values<size_t>(2, 0)),
    [](const ::testing::TestParamInfo<RaceParam>& info) {
      size_t threads = std::get<1>(info.param);
      return std::get<0>(info.param) + "_t" +
             (threads == 0 ? std::string("hw") : std::to_string(threads));
    });

}  // namespace
}  // namespace valentine
