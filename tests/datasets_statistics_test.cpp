// Statistical sanity of the dataset generators: the fabricated
// experiments are only as good as the data distributions under them, so
// verify moments, cardinalities, value formats, and cross-build
// determinism for every source generator.

#include <gtest/gtest.h>

#include <regex>

#include "datasets/chembl.h"
#include "datasets/ing.h"
#include "datasets/magellan.h"
#include "datasets/opendata.h"
#include "datasets/tpcdi.h"
#include "datasets/wikidata.h"
#include "stats/descriptive.h"

namespace valentine {
namespace {

TEST(TpcdiStatsTest, GaussianColumnsHaveDeclaredMoments) {
  Table t = MakeTpcdiProspect(3000, 2026);
  NumericStats income =
      ComputeNumericStats(t.FindColumn("income")->NumericValues());
  EXPECT_NEAR(income.mean, 65000, 2500);
  EXPECT_NEAR(income.stddev, 22000, 2500);
  EXPECT_GE(income.min, 12000);  // clamped floor

  NumericStats credit =
      ComputeNumericStats(t.FindColumn("credit_rating")->NumericValues());
  EXPECT_NEAR(credit.mean, 620, 15);
}

TEST(TpcdiStatsTest, UniformColumnsCoverRange) {
  Table t = MakeTpcdiProspect(3000, 2026);
  NumericStats age = ComputeNumericStats(t.FindColumn("age")->NumericValues());
  EXPECT_EQ(age.min, 18);
  EXPECT_EQ(age.max, 95);
  EXPECT_NEAR(age.mean, (18 + 95) / 2.0, 2.5);
}

TEST(TpcdiStatsTest, PatternColumnsMatchFormat) {
  Table t = MakeTpcdiProspect(200, 2026);
  std::regex phone_re(R"(\(\d{3}\) \d{3}-\d{4})");
  for (const Value& v : t.FindColumn("phone")->values()) {
    EXPECT_TRUE(std::regex_match(v.AsString(), phone_re)) << v.AsString();
  }
  std::regex zip_re(R"(\d{5})");
  for (const Value& v : t.FindColumn("postal_code")->values()) {
    EXPECT_TRUE(std::regex_match(v.AsString(), zip_re)) << v.AsString();
  }
}

TEST(TpcdiStatsTest, IdColumnUnique) {
  Table t = MakeTpcdiProspect(500, 2026);
  EXPECT_EQ(t.FindColumn("agency_id")->DistinctStringSet().size(), 500u);
}

TEST(OpenDataStatsTest, NullableColumnsActuallySparse) {
  Table t = MakeOpenDataTable(1000, 4711);
  double null_rate =
      static_cast<double>(t.FindColumn("architect_firm")->NullCount()) /
      1000.0;
  EXPECT_NEAR(null_rate, 0.35, 0.06);
  EXPECT_EQ(t.FindColumn("permit_number")->NullCount(), 0u);
}

TEST(OpenDataStatsTest, DatesAreIso) {
  Table t = MakeOpenDataTable(150, 4711);
  std::regex date_re(R"(\d{4}-\d{2}-\d{2})");
  for (const Value& v : t.FindColumn("issue_date")->values()) {
    EXPECT_TRUE(std::regex_match(v.AsString(), date_re)) << v.AsString();
  }
}

TEST(ChemblStatsTest, DomainVocabularyPresent) {
  Table t = MakeChemblAssays(500, 99);
  auto organisms = t.FindColumn("assay_organism")->DistinctStringSet();
  EXPECT_TRUE(organisms.count("Homo sapiens"));
  EXPECT_LE(organisms.size(), 12u);  // drawn from a fixed pool
  auto types = t.FindColumn("assay_type")->DistinctStringSet();
  EXPECT_LE(types.size(), 6u);
}

TEST(GeneratorDeterminismTest, SameSeedSameBytes) {
  auto render = [](const Table& t) {
    std::string out;
    for (const Column& c : t.columns()) {
      out += c.name();
      for (const Value& v : c.values()) out += "|" + v.AsString();
    }
    return out;
  };
  EXPECT_EQ(render(MakeTpcdiProspect(100, 1)), render(MakeTpcdiProspect(100, 1)));
  EXPECT_EQ(render(MakeOpenDataTable(100, 2)), render(MakeOpenDataTable(100, 2)));
  EXPECT_EQ(render(MakeChemblAssays(100, 3)), render(MakeChemblAssays(100, 3)));
  EXPECT_EQ(render(MakeWikidataSingersBase(100, 4)),
            render(MakeWikidataSingersBase(100, 4)));
  EXPECT_NE(render(MakeTpcdiProspect(100, 1)), render(MakeTpcdiProspect(100, 2)));
}

TEST(GeneratorDeterminismTest, CuratedPairsDeterministic) {
  DatasetPair a = MakeIngPair1(150, 11);
  DatasetPair b = MakeIngPair1(150, 11);
  ASSERT_EQ(a.source.num_rows(), b.source.num_rows());
  for (size_t c = 0; c < a.source.num_columns(); ++c) {
    for (size_t r = 0; r < a.source.num_rows(); ++r) {
      ASSERT_TRUE(a.source.column(c)[r] == b.source.column(c)[r]);
    }
  }
  auto m1 = MakeMagellanPairs(100, 5);
  auto m2 = MakeMagellanPairs(100, 5);
  ASSERT_EQ(m1.size(), m2.size());
  for (size_t p = 0; p < m1.size(); ++p) {
    EXPECT_EQ(m1[p].id, m2[p].id);
    EXPECT_EQ(m1[p].target.num_rows(), m2[p].target.num_rows());
  }
}

TEST(WikidataStatsTest, SixColumnsAlternativelyEncoded) {
  auto pairs = MakeWikidataPairs(200, 7);
  const DatasetPair& u = pairs[0];  // unionable keeps all 20 columns
  // Count GT columns whose target-side value sets are disjoint from the
  // source side (the re-encoded ones).
  size_t re_encoded = 0;
  for (const auto& gt : u.ground_truth) {
    auto src_set = u.source.FindColumn(gt.source_column)->DistinctStringSet();
    size_t shared = 0;
    for (const auto& v :
         u.target.FindColumn(gt.target_column)->DistinctStrings()) {
      shared += src_set.count(v);
    }
    if (shared == 0) ++re_encoded;
  }
  EXPECT_EQ(re_encoded, 6u);  // the paper re-encodes exactly six columns
}

TEST(IngStatsTest, MatchingHashColumnsShareFiniteDomain) {
  DatasetPair p = MakeIngPair1(400, 11);
  auto src_hashes = p.source.FindColumn("task_hash")->DistinctStringSet();
  auto tgt_hashes = p.target.FindColumn("task_hash")->DistinctStringSet();
  EXPECT_LE(src_hashes.size(), 300u);  // the shared 300-hash pool
  size_t shared = 0;
  for (const auto& h : tgt_hashes) shared += src_hashes.count(h);
  EXPECT_GT(shared, tgt_hashes.size() / 2);
  // Decoy hash columns live in a different pool.
  auto decoy = p.source.FindColumn("parent_task_hash")->DistinctStringSet();
  size_t decoy_shared = 0;
  for (const auto& h : decoy) decoy_shared += src_hashes.count(h);
  EXPECT_EQ(decoy_shared, 0u);
}

}  // namespace
}  // namespace valentine
