// Tests for the HTTP message layer (serve/http.h): incremental parsing
// under adversarial framing (byte-at-a-time, torn, oversized, pipelined)
// and the response/error-envelope contract — all without sockets.

#include "serve/http.h"

#include <string>

#include <gtest/gtest.h>

#include "serve/json.h"

namespace valentine {
namespace serve {
namespace {

HttpRequestParser FeedAll(const std::string& bytes, HttpLimits limits = {}) {
  HttpRequestParser parser(limits);
  size_t used = parser.Consume(bytes.data(), bytes.size());
  EXPECT_LE(used, bytes.size());
  return parser;
}

TEST(ServeHttpParser, SimpleGet) {
  HttpRequestParser p =
      FeedAll("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().target, "/healthz");
  EXPECT_EQ(p.request().version, "HTTP/1.1");
  EXPECT_EQ(p.request().Header("host"), "x");
  EXPECT_TRUE(p.request().body.empty());
}

TEST(ServeHttpParser, PostWithBody) {
  HttpRequestParser p = FeedAll(
      "POST /v1/tables HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"");
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().body, "{\"a\"");
}

TEST(ServeHttpParser, ByteAtATime) {
  const std::string wire =
      "POST /x HTTP/1.1\r\nContent-Length: 3\r\nA: b\r\n\r\nxyz";
  HttpRequestParser p;
  for (char c : wire) {
    ASSERT_FALSE(p.failed());
    EXPECT_EQ(p.Consume(&c, 1), 1u);
  }
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().body, "xyz");
  EXPECT_EQ(p.request().Header("a"), "b");
}

TEST(ServeHttpParser, PipelinedRequestsLeaveRemainder) {
  const std::string wire =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  HttpRequestParser p;
  size_t used = p.Consume(wire.data(), wire.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().target, "/a");
  ASSERT_LT(used, wire.size());
  p.Reset();
  size_t used2 = p.Consume(wire.data() + used, wire.size() - used);
  EXPECT_EQ(used + used2, wire.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().target, "/b");
}

TEST(ServeHttpParser, HeaderNamesLowerCased) {
  HttpRequestParser p = FeedAll(
      "GET / HTTP/1.1\r\nX-MiXeD-CaSe: Value\r\n\r\n");
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().Header("x-mixed-case"), "Value");
}

TEST(ServeHttpParser, OversizedHeadersGet431) {
  HttpLimits limits;
  limits.max_header_bytes = 128;
  std::string wire = "GET / HTTP/1.1\r\nX-Big: " + std::string(500, 'a');
  HttpRequestParser p = FeedAll(wire, limits);
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.http_status(), 431);
  EXPECT_EQ(p.error_status().code(), StatusCode::kResourceExhausted);
}

TEST(ServeHttpParser, OversizedBodyGets413) {
  HttpLimits limits;
  limits.max_body_bytes = 10;
  HttpRequestParser p = FeedAll(
      "POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\n", limits);
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.http_status(), 413);
  EXPECT_EQ(p.error_status().code(), StatusCode::kResourceExhausted);
}

TEST(ServeHttpParser, ChunkedEncodingGets501) {
  HttpRequestParser p = FeedAll(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.http_status(), 501);
}

TEST(ServeHttpParser, BadVersionGets505) {
  HttpRequestParser p = FeedAll("GET / HTTP/2.0\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.http_status(), 505);
}

TEST(ServeHttpParser, MalformedRequestsGet400) {
  for (const char* wire : {
           "GARBAGE\r\n\r\n",
           "GET /\r\n\r\n",                                  // no version
           "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",          // bad header
           "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",         // empty name
           "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", // bad length
           "GET relative HTTP/1.1\r\n\r\n",                  // not origin-form
       }) {
    HttpRequestParser p = FeedAll(wire);
    EXPECT_TRUE(p.failed()) << wire;
    EXPECT_EQ(p.http_status(), 400) << wire;
  }
}

TEST(ServeHttpParser, ResetClearsEverything) {
  HttpRequestParser p = FeedAll("GARBAGE\r\n\r\n");
  ASSERT_TRUE(p.failed());
  p.Reset();
  EXPECT_EQ(p.state(), HttpRequestParser::State::kHeaders);
  const std::string ok = "GET /x HTTP/1.1\r\n\r\n";
  p.Consume(ok.data(), ok.size());
  EXPECT_TRUE(p.complete());
}

TEST(ServeHttpRequest, WantsClose) {
  HttpRequestParser keep = FeedAll("GET / HTTP/1.1\r\n\r\n");
  EXPECT_FALSE(keep.request().WantsClose());
  HttpRequestParser close = FeedAll(
      "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_TRUE(close.request().WantsClose());
  HttpRequestParser old = FeedAll("GET / HTTP/1.0\r\n\r\n");
  EXPECT_TRUE(old.request().WantsClose());
  HttpRequestParser old_keep = FeedAll(
      "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  EXPECT_FALSE(old_keep.request().WantsClose());
}

TEST(ServeHttpResponse, SerializeGolden) {
  HttpResponse r;
  r.status = 200;
  r.body = "{\"ok\":true}";
  EXPECT_EQ(SerializeResponse(r, /*close_connection=*/true),
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: 11\r\n"
            "Connection: close\r\n"
            "\r\n"
            "{\"ok\":true}");
}

TEST(ServeHttpResponse, ExtraHeadersEmitted) {
  HttpResponse r;
  r.status = 503;
  r.headers.emplace_back("Retry-After", "2");
  std::string wire = SerializeResponse(r, false);
  EXPECT_NE(wire.find("Retry-After: 2\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
}

TEST(ServeHttpStatusMapping, CoversServingCodes) {
  EXPECT_EQ(HttpStatusForCode(StatusCode::kOk), 200);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kParseError), 400);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kNotFound), 404);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kResourceExhausted), 503);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kCancelled), 503);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kDeadlineExceeded), 504);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kInternal), 500);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kIOError), 500);
}

// The error envelope's `code` must survive a round trip through
// StatusCodeFromName — that is what lets a client reconstruct the
// library-level StatusCode from the wire.
TEST(ServeHttpErrorEnvelope, CodeRoundTripsThroughStatusCodeFromName) {
  for (StatusCode code : {
           StatusCode::kInvalidArgument, StatusCode::kNotFound,
           StatusCode::kParseError, StatusCode::kResourceExhausted,
           StatusCode::kCancelled, StatusCode::kDeadlineExceeded,
           StatusCode::kIOError, StatusCode::kInternal,
       }) {
    Status status = Status::WithCode(code, "boom");
    int http = HttpStatusForCode(code);
    Result<JsonValue> parsed = ParseJson(JsonErrorEnvelope(status, http));
    ASSERT_TRUE(parsed.ok());
    const JsonValue* error = parsed.ValueOrDie().Find("error");
    ASSERT_NE(error, nullptr);
    std::optional<StatusCode> round =
        StatusCodeFromName(error->Find("code")->string_value());
    ASSERT_TRUE(round.has_value());
    EXPECT_EQ(*round, code);
    EXPECT_EQ(static_cast<int>(error->Find("http_status")->number_value()),
              http);
    EXPECT_EQ(error->Find("message")->string_value(), "boom");
  }
}

TEST(ServeHttpErrorResponse, ShedCarriesRetryAfter) {
  HttpResponse r = ErrorResponse(
      Status::ResourceExhausted("queue full"), /*retry_after_s=*/3);
  EXPECT_EQ(r.status, 503);
  ASSERT_EQ(r.headers.size(), 1u);
  EXPECT_EQ(r.headers[0].first, "Retry-After");
  EXPECT_EQ(r.headers[0].second, "3");
  // Non-503s never carry Retry-After, whatever the caller passes.
  EXPECT_TRUE(
      ErrorResponse(Status::NotFound("x"), /*retry_after_s=*/3)
          .headers.empty());
}

}  // namespace
}  // namespace serve
}  // namespace valentine
