// Trace/journal correlation across a real crash: a campaign SIGKILLed
// mid-flight is resumed with tracing on, and the resumed trace joins
// the journal — every replayed (family, pair, config) triple appears as
// an experiment span whose trace id IS its journal key, annotated
// replayed=true and never executing a matcher. The resumed report stays
// byte-identical to an uninterrupted run under the shared FakeClock.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "datasets/tpcdi.h"
#include "harness/campaign.h"
#include "harness/journal.h"
#include "harness/json_export.h"
#include "matchers/matcher.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace valentine {
namespace {

std::vector<DatasetPair> SmallSuite() {
  Table original = MakeTpcdiProspect(25, 1717);
  PairSuiteOptions opt;
  opt.row_overlaps = {0.5};
  opt.column_overlaps = {0.5};
  opt.schema_noise_variants = false;
  opt.instance_noise_variants = false;
  return BuildFabricatedSuite(original, opt);
}

MethodFamily SmallFamily() {
  MethodFamily family = JaccardLevenshteinFamily();
  family.grid.resize(2);
  return family;
}

/// Delegates until `budget` successful matches have been spent, then
/// raises SIGKILL (same pattern as harness_crash_resume_test).
class KillAfterMatcher : public ColumnMatcher {
 public:
  KillAfterMatcher(std::shared_ptr<const ColumnMatcher> inner,
                   std::shared_ptr<std::atomic<int>> budget)
      : inner_(std::move(inner)), budget_(std::move(budget)) {}

  std::string Name() const override { return inner_->Name(); }
  MatcherCategory Category() const override { return inner_->Category(); }
  std::vector<MatchType> Capabilities() const override {
    return inner_->Capabilities();
  }
  [[nodiscard]] Result<MatchResult> MatchWithContext(
      const Table& source, const Table& target,
      const MatchContext& context) const override {
    if (budget_->fetch_sub(1) <= 0) {
      raise(SIGKILL);
    }
    return inner_->Match(source, target, context);
  }

 private:
  std::shared_ptr<const ColumnMatcher> inner_;
  std::shared_ptr<std::atomic<int>> budget_;
};

MethodFamily KillAfter(const MethodFamily& base, int budget) {
  auto shared_budget = std::make_shared<std::atomic<int>>(budget);
  MethodFamily wrapped{base.name, {}};
  for (const ConfiguredMatcher& cm : base.grid) {
    wrapped.grid.push_back(
        {cm.description,
         std::make_shared<KillAfterMatcher>(cm.matcher, shared_budget)});
  }
  return wrapped;
}

TEST(CrashTraceTest, ResumedTraceJoinsJournalAndMarksReplayedSpans) {
  std::vector<DatasetPair> suite = SmallSuite();
  FakeClock fake_clock;

  // Reference: uninterrupted, journal-free, untraced.
  CampaignOptions plain;
  plain.num_threads = 2;
  plain.clock = &fake_clock;
  std::string expected =
      ToJson(RunCampaignOnSuite(suite, {SmallFamily()}, plain));

  std::string journal_path = ::testing::TempDir() + "valentine_crash_trace_" +
                             std::to_string(getpid()) + ".jsonl";
  std::remove(journal_path.c_str());
  CampaignOptions journaled = plain;
  journaled.journal_path = journal_path;

  pid_t child = fork();
  ASSERT_NE(child, -1) << "fork failed";
  if (child == 0) {
    (void)RunCampaignOnSuite(suite, {KillAfter(SmallFamily(), 5)}, journaled);
    _exit(0);  // unreachable when the kill fires
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child was expected to die mid-run";
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Collect the surviving journal keys straight from the torn file (the
  // same lines JournalIndex::Load will honor on resume).
  std::set<std::string> journaled_keys;
  {
    std::ifstream in(journal_path);
    std::string line;
    while (std::getline(in, line)) {
      std::optional<JournalEntry> e = ParseJournalEntry(line);
      if (!e.has_value()) break;  // torn final line
      journaled_keys.insert(JournalKey(e->family, e->pair_id, e->config));
    }
  }
  ASSERT_GT(journaled_keys.size(), 0u);

  // Resume with full observability.
  Tracer tracer(&fake_clock);
  MetricsRegistry metrics;
  CampaignOptions traced = journaled;
  traced.tracer = &tracer;
  traced.metrics = &metrics;
  CampaignReport resumed =
      RunCampaignOnSuite(suite, {SmallFamily()}, traced);
  EXPECT_EQ(ToJson(resumed), expected);

  // Every journaled triple surfaces as a replayed experiment span whose
  // trace id is exactly its journal key — the trace/journal join.
  std::map<std::string, bool> replayed_by_trace;  // trace id -> replayed
  std::map<std::string, size_t> attempts_by_trace;
  for (const SpanRecord& span : tracer.Snapshot()) {
    if (span.kind == "experiment") {
      bool replayed = false;
      for (const auto& [key, value] : span.attributes) {
        if (key == "replayed" && value == "true") replayed = true;
      }
      replayed_by_trace[span.trace_id] = replayed;
    }
    if (span.kind == "attempt") ++attempts_by_trace[span.trace_id];
  }
  ASSERT_EQ(replayed_by_trace.size(), resumed.num_experiments);
  for (const std::string& key : journaled_keys) {
    auto it = replayed_by_trace.find(key);
    ASSERT_NE(it, replayed_by_trace.end()) << key;
    EXPECT_TRUE(it->second) << key << " executed instead of replaying";
    // Replayed triples never reach the attempt stage.
    EXPECT_EQ(attempts_by_trace.count(key), 0u) << key;
  }
  // The rest of the campaign actually executed.
  size_t executed = 0;
  for (const auto& [trace_id, replayed] : replayed_by_trace) {
    if (!replayed) {
      ++executed;
      EXPECT_GT(attempts_by_trace[trace_id], 0u) << trace_id;
    }
  }
  EXPECT_EQ(executed + journaled_keys.size(), resumed.num_experiments);
  EXPECT_GT(executed, 0u);

  // The replay counter agrees with the journal.
  EXPECT_EQ(metrics.CounterValue("valentine_experiments_replayed_total",
                                 {{"family", "JaccardLevenshtein"}}),
            journaled_keys.size());
  EXPECT_EQ(metrics.CounterValue("valentine_experiments_total",
                                 {{"family", "JaccardLevenshtein"}}),
            executed);
  std::remove(journal_path.c_str());
}

}  // namespace
}  // namespace valentine
