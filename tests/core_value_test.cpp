#include "core/value.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.kind(), DataType::kNull);
  EXPECT_EQ(v.AsString(), "");
  EXPECT_FALSE(v.TryFloat().has_value());
}

TEST(ValueTest, IntRoundTrip) {
  Value v = Value::Int(-17);
  EXPECT_EQ(v.kind(), DataType::kInt64);
  EXPECT_EQ(v.int_value(), -17);
  EXPECT_EQ(v.AsString(), "-17");
  EXPECT_DOUBLE_EQ(*v.TryFloat(), -17.0);
}

TEST(ValueTest, FloatRendersRoundTrip) {
  Value v = Value::Float(2.5);
  EXPECT_EQ(v.kind(), DataType::kFloat64);
  EXPECT_EQ(v.AsString(), "2.5");
  EXPECT_DOUBLE_EQ(*v.TryFloat(), 2.5);
}

TEST(ValueTest, BoolAsNumber) {
  EXPECT_DOUBLE_EQ(*Value::Bool(true).TryFloat(), 1.0);
  EXPECT_DOUBLE_EQ(*Value::Bool(false).TryFloat(), 0.0);
  EXPECT_EQ(Value::Bool(true).AsString(), "true");
}

TEST(ValueTest, StringNumericParsing) {
  EXPECT_DOUBLE_EQ(*Value::String("3.75").TryFloat(), 3.75);
  EXPECT_DOUBLE_EQ(*Value::String("-12").TryFloat(), -12.0);
  EXPECT_FALSE(Value::String("12abc").TryFloat().has_value());
  EXPECT_FALSE(Value::String("").TryFloat().has_value());
  EXPECT_FALSE(Value::String("hello").TryFloat().has_value());
}

TEST(ValueTest, StringWithTrailingSpacesParses) {
  EXPECT_DOUBLE_EQ(*Value::String("5 ").TryFloat(), 5.0);
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_FALSE(Value::Int(3) == Value::Float(3.0));
  EXPECT_EQ(Value::String("a"), Value::String("a"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ParseCellTest, PrefersIntThenFloatThenBoolThenString) {
  EXPECT_EQ(ParseCell("42").kind(), DataType::kInt64);
  EXPECT_EQ(ParseCell("42.5").kind(), DataType::kFloat64);
  EXPECT_EQ(ParseCell("true").kind(), DataType::kBool);
  EXPECT_EQ(ParseCell("FALSE").kind(), DataType::kBool);
  EXPECT_EQ(ParseCell("abc").kind(), DataType::kString);
  EXPECT_EQ(ParseCell("").kind(), DataType::kNull);
}

TEST(ParseCellTest, ZeroPaddedNumbersStayStrings) {
  // "007" is an identifier; parsing to int 7 would lose the padding.
  Value v = ParseCell("007");
  EXPECT_EQ(v.kind(), DataType::kString);
  EXPECT_EQ(v.AsString(), "007");
  // Plain zero and decimals below one still parse numerically.
  EXPECT_EQ(ParseCell("0").kind(), DataType::kInt64);
  EXPECT_EQ(ParseCell("0.5").kind(), DataType::kFloat64);
}

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "int64");
  EXPECT_STREQ(DataTypeName(DataType::kString), "string");
  EXPECT_STREQ(DataTypeName(DataType::kDate), "date");
}

TEST(DataTypeTest, Compatibility) {
  EXPECT_TRUE(TypesCompatible(DataType::kInt64, DataType::kFloat64));
  EXPECT_TRUE(TypesCompatible(DataType::kString, DataType::kDate));
  EXPECT_TRUE(TypesCompatible(DataType::kBool, DataType::kInt64));
  EXPECT_FALSE(TypesCompatible(DataType::kInt64, DataType::kString));
  EXPECT_TRUE(TypesCompatible(DataType::kNull, DataType::kString));
  EXPECT_TRUE(TypesCompatible(DataType::kString, DataType::kString));
}

}  // namespace
}  // namespace valentine
