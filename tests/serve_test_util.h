#ifndef VALENTINE_TESTS_SERVE_TEST_UTIL_H_
#define VALENTINE_TESTS_SERVE_TEST_UTIL_H_

// Shared fixtures for the serving tests: a deterministic blocking
// matcher (for overload/drain sequencing) and small table builders.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "core/status.h"
#include "core/table.h"
#include "matchers/matcher.h"

namespace valentine {
namespace serve {
namespace testing {

/// A matcher that parks inside MatchWithContext until released (or the
/// request's context fires), making "worker is busy" a test-controlled
/// state instead of a timing accident. Score is constant so rankings
/// stay deterministic.
class BlockingMatcher : public ColumnMatcher {
 public:
  /// `gate` false = block; flip to true to release every waiter.
  /// `active` counts matchers currently parked (for sequencing).
  BlockingMatcher(std::atomic<bool>* gate, std::atomic<int>* active)
      : gate_(gate), active_(active) {}

  std::string Name() const override { return "BlockingTest"; }
  MatcherCategory Category() const override {
    return MatcherCategory::kSchemaBased;
  }
  std::vector<MatchType> Capabilities() const override {
    return {MatchType::kAttributeOverlap};
  }

  Result<MatchResult> MatchWithContext(
      const Table& source, const Table& target,
      const MatchContext& context) const override {
    ++*active_;
    while (!gate_->load(std::memory_order_acquire)) {
      Status check = context.Check("BlockingMatcher");
      if (!check.ok()) {
        --*active_;
        return check;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    --*active_;
    MatchResult result;
    if (source.num_columns() > 0 && target.num_columns() > 0) {
      // "struct Match" disambiguates from the Match() member function.
      struct Match m;
      m.source = {source.name(), source.column(0).name()};
      m.target = {target.name(), target.column(0).name()};
      m.score = 0.5;
      result.Add(m);
    }
    result.Sort();
    return result;
  }

 private:
  std::atomic<bool>* gate_;
  std::atomic<int>* active_;
};

/// A two-column table with overlapping string keys; `salt` varies the
/// value set so distinct tables score differently.
inline Table MakeServeTable(const std::string& name, size_t rows,
                            size_t salt) {
  Table t(name);
  Column key("key", DataType::kString);
  Column amount("amount", DataType::kInt64);
  for (size_t i = 0; i < rows; ++i) {
    key.Append(Value::String("id_" + std::to_string(i * salt % (rows * 2))));
    amount.Append(Value::Int(static_cast<int64_t>(i)));
  }
  Status s1 = t.AddColumn(std::move(key));
  Status s2 = t.AddColumn(std::move(amount));
  (void)s1;
  (void)s2;
  return t;
}

/// The same table in the service's JSON wire form.
inline std::string ServeTableJson(const std::string& name, size_t rows,
                                  size_t salt) {
  std::string keys, amounts;
  for (size_t i = 0; i < rows; ++i) {
    if (i > 0) {
      keys += ",";
      amounts += ",";
    }
    keys += "\"id_" + std::to_string(i * salt % (rows * 2)) + "\"";
    amounts += std::to_string(i);
  }
  return "{\"name\":\"" + name +
         "\",\"columns\":[{\"name\":\"key\",\"values\":[" + keys +
         "]},{\"name\":\"amount\",\"values\":[" + amounts + "]}]}";
}

}  // namespace testing
}  // namespace serve
}  // namespace valentine

#endif  // VALENTINE_TESTS_SERVE_TEST_UTIL_H_
