#include "matchers/coma.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

Table MakeValuedTable(const std::string& name,
                      std::vector<std::pair<std::string,
                                            std::vector<std::string>>> cols) {
  Table t(name);
  for (auto& [col_name, values] : cols) {
    Column c(col_name, DataType::kString);
    for (auto& v : values) c.Append(Value::String(std::move(v)));
    EXPECT_TRUE(t.AddColumn(std::move(c)).ok());
  }
  return t;
}

TEST(ComaTest, SchemaStrategyMatchesIdenticalNames) {
  Table src = MakeValuedTable("s", {{"city", {"a", "b"}},
                                    {"income", {"1", "2"}}});
  Table tgt = MakeValuedTable("t", {{"city", {"x", "y"}},
                                    {"income", {"3", "4"}}});
  ComaMatcher m;  // schema strategy default
  MatchResult r = m.Match(src, tgt);
  EXPECT_EQ(r[0].source.column, r[0].target.column);
  EXPECT_GT(r[0].score, 0.8);
}

TEST(ComaTest, InstanceStrategyUsesValueOverlap) {
  // Names are unhelpful on purpose; values decide.
  Table src = MakeValuedTable("s", {{"colA", {"apple", "pear", "plum"}},
                                    {"colB", {"red", "blue", "green"}}});
  Table tgt = MakeValuedTable("t", {{"colX", {"apple", "pear", "kiwi"}},
                                    {"colY", {"cyan", "teal", "pink"}}});
  ComaOptions opt;
  opt.strategy = ComaStrategy::kInstances;
  MatchResult r = ComaMatcher(opt).Match(src, tgt);
  EXPECT_EQ(r[0].source.column, "colA");
  EXPECT_EQ(r[0].target.column, "colX");
}

TEST(ComaTest, ThresholdFiltersPairs) {
  Table src = MakeValuedTable("s", {{"alpha", {"1"}}});
  Table tgt = MakeValuedTable("t", {{"omega", {"2"}}});
  ComaOptions opt;
  opt.threshold = 0.99;
  MatchResult r = ComaMatcher(opt).Match(src, tgt);
  EXPECT_TRUE(r.empty());
  opt.threshold = 0.0;
  EXPECT_EQ(ComaMatcher(opt).Match(src, tgt).size(), 1u);
}

TEST(ComaTest, NameTrigramSim) {
  ComaMatcher m;
  EXPECT_DOUBLE_EQ(m.NameTrigramSim("same", "same"), 1.0);
  EXPECT_GT(m.NameTrigramSim("customer_name", "customer_nm"), 0.5);
  EXPECT_LT(m.NameTrigramSim("abc", "xyz"), 0.1);
}

TEST(ComaTest, NameSynonymSimUsesThesaurus) {
  ComaMatcher m;
  EXPECT_GT(m.NameSynonymSim("income", "salary"), 0.9);
  EXPECT_GT(m.NameSynonymSim("client_id", "customer_id"), 0.9);
  EXPECT_LT(m.NameSynonymSim("income", "genre"), 0.3);
}

TEST(ComaTest, NameSynonymSimHandlesPlurals) {
  ComaMatcher m;
  EXPECT_GT(m.NameSynonymSim("addresses", "address"), 0.9);
}

TEST(ComaTest, NameAffixSimHandlesPrefixesAndAbbreviations) {
  EXPECT_DOUBLE_EQ(
      ComaMatcher::NameAffixSim("permits_permit_type", "permit_type"), 1.0);
  EXPECT_GT(ComaMatcher::NameAffixSim("addr_line", "addrline"), 0.99);
  EXPECT_LT(ComaMatcher::NameAffixSim("abc", "xyz"), 0.5);
  EXPECT_DOUBLE_EQ(ComaMatcher::NameAffixSim("", "x"), 0.0);
}

TEST(ComaTest, DataTypeSim) {
  EXPECT_DOUBLE_EQ(ComaMatcher::DataTypeSim(DataType::kInt64,
                                            DataType::kInt64), 1.0);
  EXPECT_DOUBLE_EQ(ComaMatcher::DataTypeSim(DataType::kInt64,
                                            DataType::kFloat64), 0.7);
  EXPECT_DOUBLE_EQ(ComaMatcher::DataTypeSim(DataType::kInt64,
                                            DataType::kString), 0.0);
}

TEST(ComaTest, NamesAndCategoriesPerStrategy) {
  ComaOptions schema_opt;
  schema_opt.strategy = ComaStrategy::kSchema;
  ComaMatcher schema(schema_opt);
  EXPECT_EQ(schema.Name(), "COMA-Schema");
  EXPECT_EQ(schema.Category(), MatcherCategory::kSchemaBased);

  ComaOptions inst_opt;
  inst_opt.strategy = ComaStrategy::kInstances;
  ComaMatcher inst(inst_opt);
  EXPECT_EQ(inst.Name(), "COMA-Instances");
  EXPECT_EQ(inst.Category(), MatcherCategory::kInstanceBased);
  EXPECT_GT(inst.Capabilities().size(), schema.Capabilities().size());
}

TEST(ComaTest, NumericColumnsComparedByStats) {
  // Two numeric columns with near-identical distributions but disjoint
  // values should still be related by the instance profile matcher.
  Column a("m1", DataType::kInt64);
  Column b("m2", DataType::kInt64);
  for (int i = 0; i < 100; ++i) {
    a.Append(Value::Int(1000 + i * 2));      // evens
    b.Append(Value::Int(1001 + i * 2));      // odds, same range/moments
  }
  Table src("s");
  ASSERT_TRUE(src.AddColumn(std::move(a)).ok());
  Table tgt("t");
  ASSERT_TRUE(tgt.AddColumn(std::move(b)).ok());
  ComaOptions opt;
  opt.strategy = ComaStrategy::kInstances;
  MatchResult r = ComaMatcher(opt).Match(src, tgt);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_GT(r[0].score, 0.3);
}

}  // namespace
}  // namespace valentine
