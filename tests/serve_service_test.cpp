// Tests for the HTTP-facing discovery service (serve/service.h):
// JSON↔Table codecs, routing, the copy-on-write registry, the
// byte-identity contract against a directly-driven DiscoveryEngine,
// and the zero-budget regression at the serving boundary.

#include "serve/service.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "io/artifact_store.h"
#include "serve_test_util.h"

namespace valentine {
namespace serve {
namespace {

using testing::MakeServeTable;
using testing::ServeTableJson;

HttpRequest MakeRequest(const std::string& method, const std::string& target,
                        const std::string& body = "") {
  HttpRequest r;
  r.method = method;
  r.target = target;
  r.version = "HTTP/1.1";
  r.body = body;
  return r;
}

TEST(ServeTableFromJson, DecodesTypedColumns) {
  Result<JsonValue> doc = ParseJson(
      "{\"name\":\"t\",\"columns\":["
      "{\"name\":\"s\",\"type\":\"string\",\"values\":[\"a\",null,\"b\"]},"
      "{\"name\":\"n\",\"values\":[1,2.5,3]}]}");
  ASSERT_TRUE(doc.ok());
  Result<Table> table = TableFromJson(doc.ValueOrDie());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  const Table& t = table.ValueOrDie();
  EXPECT_EQ(t.name(), "t");
  ASSERT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.column(0).type(), DataType::kString);
  EXPECT_EQ(t.column(0).NullCount(), 1u);
  // Untyped column infers from the first non-null cell; integral JSON
  // numbers decode as int64.
  EXPECT_EQ(t.column(1).type(), DataType::kInt64);
  EXPECT_EQ(t.column(1)[0].kind(), DataType::kInt64);
  EXPECT_EQ(t.column(1)[1].kind(), DataType::kFloat64);
}

TEST(ServeTableFromJson, RejectsBadShapes) {
  for (const char* doc : {
           "[]",
           "{\"columns\":[]}",                       // no name
           "{\"name\":\"\",\"columns\":[]}",         // empty name
           "{\"name\":\"t\"}",                       // no columns
           "{\"name\":\"t\",\"columns\":[{}]}",      // column without name
           "{\"name\":\"t\",\"columns\":[{\"name\":\"c\"}]}",  // no values
           "{\"name\":\"t\",\"columns\":"
           "[{\"name\":\"c\",\"values\":[[1]]}]}",   // nested cell
           "{\"name\":\"t\",\"columns\":"
           "[{\"name\":\"c\",\"type\":\"money\",\"values\":[]}]}",
           "{\"name\":\"t\",\"columns\":["
           "{\"name\":\"a\",\"values\":[1]},"
           "{\"name\":\"b\",\"values\":[1,2]}]}",    // ragged lengths
       }) {
    Result<JsonValue> parsed = ParseJson(doc);
    ASSERT_TRUE(parsed.ok()) << doc;
    Result<Table> table = TableFromJson(parsed.ValueOrDie());
    EXPECT_FALSE(table.ok()) << doc;
    EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument) << doc;
  }
}

TEST(ServeTableFromJson, RejectsReservedSeparatorCharacter) {
  // U+001F is the LSH posting-key separator; a table or column name
  // carrying it could forge another table's index keys, so the serve
  // boundary rejects it before the registry ever sees the table.
  for (const char* doc : {
           "{\"name\":\"evil\\u001ftwin\",\"columns\":["
           "{\"name\":\"c\",\"values\":[1]}]}",
           "{\"name\":\"t\",\"columns\":["
           "{\"name\":\"c\\u001fol\",\"values\":[1]}]}",
       }) {
    Result<JsonValue> parsed = ParseJson(doc);
    ASSERT_TRUE(parsed.ok()) << doc;
    Result<Table> table = TableFromJson(parsed.ValueOrDie());
    EXPECT_FALSE(table.ok()) << doc;
    EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument) << doc;
  }
  DiscoveryService service;
  HttpResponse r = service.Handle(MakeRequest(
      "POST", "/v1/tables",
      "{\"name\":\"evil\\u001ftwin\",\"columns\":["
      "{\"name\":\"c\",\"values\":[1]}]}"));
  EXPECT_EQ(r.status, 400);
}

TEST(ServeService, RegistryRebuildsNeverRepayArtifactWork) {
  // Copy-on-write registry rebuilds operate on TableRepository
  // snapshots whose entries are shared, so after N registrations of
  // distinct tables the store saw exactly N artifact builds and ZERO
  // re-consultations: previously registered tables are carried by the
  // snapshot, not re-registered through the store (the pre-pipeline
  // service paid 0+1+...+(N-1) store hits here).
  std::string dir = ::testing::TempDir() + "/valentine_serve_store_test";
  std::filesystem::remove_all(dir);
  ArtifactStore store(dir);
  MetricsRegistry metrics;
  ServiceOptions opt;
  opt.metrics = &metrics;
  opt.store = &store;
  DiscoveryService service(opt);

  constexpr int kTables = 4;
  for (int i = 0; i < kTables; ++i) {
    ASSERT_TRUE(
        service
            .RegisterTable(MakeServeTable("t" + std::to_string(i), 20, 3))
            .ok());
  }
  uint64_t builds = metrics
                        .CounterFor("valentine_discovery_store_total",
                                    {{"event", "build"}})
                        ->value();
  uint64_t hits = metrics
                      .CounterFor("valentine_discovery_store_total",
                                  {{"event", "hit"}})
                      ->value();
  EXPECT_EQ(builds, static_cast<uint64_t>(kTables));
  EXPECT_EQ(hits, 0u);

  // Unregistering rebuilds the engine from the shrunk snapshot —
  // still no store traffic for the surviving tables.
  ASSERT_TRUE(service.UnregisterTable("t0").ok());
  EXPECT_EQ(service.num_tables(), static_cast<size_t>(kTables - 1));
  EXPECT_EQ(metrics
                .CounterFor("valentine_discovery_store_total",
                            {{"event", "hit"}})
                ->value(),
            0u);
  EXPECT_EQ(metrics
                .CounterFor("valentine_discovery_store_total",
                            {{"event", "build"}})
                ->value(),
            static_cast<uint64_t>(kTables));
}

TEST(ServeService, HealthzGolden) {
  DiscoveryService service;
  HttpResponse r = service.Handle(MakeRequest("GET", "/healthz"));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "{\"status\":\"ok\",\"tables\":0}");
  ASSERT_TRUE(service.RegisterTable(MakeServeTable("t1", 10, 3)).ok());
  EXPECT_EQ(service.Handle(MakeRequest("GET", "/healthz")).body,
            "{\"status\":\"ok\",\"tables\":1}");
}

TEST(ServeService, MetricsEndpointRendersRegistry) {
  MetricsRegistry metrics;
  metrics.CounterFor("my_metric")->Increment(7);
  ServiceOptions opt;
  opt.metrics = &metrics;
  DiscoveryService service(opt);
  HttpResponse r = service.Handle(MakeRequest("GET", "/metrics"));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "text/plain; version=0.0.4");
  EXPECT_NE(r.body.find("my_metric 7"), std::string::npos) << r.body;
  // The scrape itself is counted, visible on the next scrape.
  HttpResponse again = service.Handle(MakeRequest("GET", "/metrics"));
  EXPECT_NE(again.body.find("valentine_serve_requests_total"),
            std::string::npos);
}

TEST(ServeService, RegisterUnregisterLifecycle) {
  DiscoveryService service;
  HttpResponse created = service.Handle(
      MakeRequest("POST", "/v1/tables", ServeTableJson("orders", 12, 3)));
  EXPECT_EQ(created.status, 200);
  EXPECT_EQ(created.body, "{\"registered\":\"orders\",\"tables\":1}");

  HttpResponse dup = service.Handle(
      MakeRequest("POST", "/v1/tables", ServeTableJson("orders", 12, 3)));
  EXPECT_EQ(dup.status, 400);
  EXPECT_NE(dup.body.find("\"InvalidArgument\""), std::string::npos);

  HttpResponse gone = service.Handle(
      MakeRequest("DELETE", "/v1/tables/orders"));
  EXPECT_EQ(gone.status, 200);
  EXPECT_EQ(gone.body, "{\"tables\":0,\"unregistered\":\"orders\"}");

  HttpResponse missing = service.Handle(
      MakeRequest("DELETE", "/v1/tables/orders"));
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("\"NotFound\""), std::string::npos);
}

TEST(ServeService, RoutingErrors) {
  DiscoveryService service;
  EXPECT_EQ(service.Handle(MakeRequest("GET", "/nope")).status, 404);
  EXPECT_EQ(service.Handle(MakeRequest("POST", "/healthz")).status, 405);
  EXPECT_EQ(service.Handle(MakeRequest("GET", "/v1/tables")).status, 405);
  EXPECT_EQ(service.Handle(MakeRequest("PUT", "/v1/discovery/joinable"))
                .status,
            405);
  EXPECT_EQ(
      service.Handle(MakeRequest("POST", "/v1/tables", "{not json")).status,
      400);
}

TEST(ServeService, DiscoveryMatchesDirectEngineByteForByte) {
  // Same tables, two paths: the service's HTTP surface vs a hand-built
  // DiscoveryEngine, both rendered through RenderDiscoveryResults.
  DiscoveryService service;
  DiscoveryEngine direct;
  for (size_t i = 0; i < 4; ++i) {
    Table t = MakeServeTable("table_" + std::to_string(i), 30, i + 2);
    ASSERT_TRUE(service.RegisterTable(t).ok());
    ASSERT_TRUE(direct.AddTable(std::move(t)).ok());
  }
  Table query = MakeServeTable("query_t", 30, 3);

  for (const std::string mode : {"joinable", "unionable"}) {
    HttpResponse served = service.Handle(MakeRequest(
        "POST", "/v1/discovery/" + mode,
        "{\"table\":" + ServeTableJson("query_t", 30, 3) + ",\"k\":3}"));
    ASSERT_EQ(served.status, 200) << served.body;
    std::vector<DiscoveryResult> expected =
        mode == "joinable" ? direct.FindJoinable(query, 3)
                           : direct.FindUnionable(query, 3);
    EXPECT_EQ(served.body,
              RenderDiscoveryResults("query_t", mode, 3, expected))
        << "mode=" << mode;
  }
}

TEST(ServeService, ExplainFlagReportsStagesWithoutChangingResults) {
  // Opt-in per-stage accounting: the "explain" object reports which
  // CandidateIndex served the query and the per-stage candidate counts,
  // and the rendered "results" bytes are identical with or without it.
  DiscoveryService service;
  DiscoveryEngine direct;
  for (size_t i = 0; i < 4; ++i) {
    Table t = MakeServeTable("table_" + std::to_string(i), 30, i + 2);
    ASSERT_TRUE(service.RegisterTable(t).ok());
    ASSERT_TRUE(direct.AddTable(std::move(t)).ok());
  }
  Table query = MakeServeTable("query_t", 30, 3);

  for (const std::string mode : {"joinable", "unionable"}) {
    const std::string body =
        "{\"table\":" + ServeTableJson("query_t", 30, 3) + ",\"k\":3";
    HttpResponse plain = service.Handle(
        MakeRequest("POST", "/v1/discovery/" + mode, body + "}"));
    HttpResponse explained = service.Handle(MakeRequest(
        "POST", "/v1/discovery/" + mode, body + ",\"explain\":true}"));
    ASSERT_EQ(plain.status, 200) << plain.body;
    ASSERT_EQ(explained.status, 200) << explained.body;

    // Byte-for-byte: the explained response is exactly the direct
    // engine's results + explain rendered through the shared codec.
    DiscoveryExplain expected_explain;
    Result<std::vector<DiscoveryResult>> expected =
        mode == "joinable"
            ? direct.FindJoinable(query, 3, MatchContext(), &expected_explain)
            : direct.FindUnionable(query, 3, MatchContext(),
                                   &expected_explain);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(plain.body, RenderDiscoveryResults("query_t", mode, 3,
                                                 expected.ValueOrDie()))
        << "mode=" << mode;
    EXPECT_EQ(explained.body,
              RenderDiscoveryResults("query_t", mode, 3,
                                     expected.ValueOrDie(),
                                     &expected_explain))
        << "mode=" << mode;

    // Sanity on the reported stages: the default front-end is LSH, the
    // repository had 4 tables, and everything enriched got reranked.
    EXPECT_EQ(expected_explain.index, "lsh") << "mode=" << mode;
    EXPECT_FALSE(expected_explain.fallback) << "mode=" << mode;
    EXPECT_EQ(expected_explain.repository_tables, 4u) << "mode=" << mode;
    EXPECT_EQ(expected_explain.enriched, expected_explain.reranked)
        << "mode=" << mode;
    EXPECT_NE(explained.body.find("\"explain\":{\"enriched\":"),
              std::string::npos)
        << explained.body;
    EXPECT_EQ(plain.body.find("\"explain\""), std::string::npos)
        << plain.body;
  }
}

TEST(ServeService, ExplainFlagMustBeBoolean) {
  DiscoveryService service;
  ASSERT_TRUE(service.RegisterTable(MakeServeTable("repo", 20, 3)).ok());
  HttpResponse r = service.Handle(MakeRequest(
      "POST", "/v1/discovery/joinable",
      "{\"table\":" + ServeTableJson("q", 20, 3) + ",\"explain\":1}"));
  EXPECT_EQ(r.status, 400) << r.body;
  EXPECT_NE(r.body.find("'explain' must be a boolean"), std::string::npos)
      << r.body;
}

// Regression (serving boundary): a request whose budget is already
// spent must deterministically answer 504 kDeadlineExceeded having done
// zero scoring — not race the clock into an occasional 200.
TEST(ServeService, ZeroAndNegativeBudgetsAnswer504) {
  DiscoveryService service;
  ASSERT_TRUE(service.RegisterTable(MakeServeTable("repo", 20, 3)).ok());
  for (const char* budget : {"0", "-1", "-1e300"}) {
    HttpResponse r = service.Handle(MakeRequest(
        "POST", "/v1/discovery/unionable",
        "{\"table\":" + ServeTableJson("q", 20, 5) +
            ",\"budget_ms\":" + budget + "}"));
    EXPECT_EQ(r.status, 504) << "budget_ms=" << budget << ": " << r.body;
    EXPECT_NE(r.body.find("\"DeadlineExceeded\""), std::string::npos)
        << r.body;
  }
  // A sane budget on the same repository serves fine.
  HttpResponse ok = service.Handle(MakeRequest(
      "POST", "/v1/discovery/unionable",
      "{\"table\":" + ServeTableJson("q", 20, 5) +
          ",\"budget_ms\":30000}"));
  EXPECT_EQ(ok.status, 200) << ok.body;
}

TEST(ServeService, DiscoveryRequestValidation) {
  DiscoveryService service;
  const std::string table = ServeTableJson("q", 5, 3);
  EXPECT_EQ(service
                .Handle(MakeRequest("POST", "/v1/discovery/joinable",
                                    "{\"k\":3}"))
                .status,
            400);  // missing table
  EXPECT_EQ(service
                .Handle(MakeRequest("POST", "/v1/discovery/joinable",
                                    "{\"table\":" + table +
                                        ",\"k\":0}"))
                .status,
            400);  // k < 1
  EXPECT_EQ(service
                .Handle(MakeRequest("POST", "/v1/discovery/joinable",
                                    "{\"table\":" + table +
                                        ",\"k\":\"three\"}"))
                .status,
            400);  // k not a number
  EXPECT_EQ(service
                .Handle(MakeRequest("POST", "/v1/discovery/joinable",
                                    "{\"table\":" + table +
                                        ",\"budget_ms\":\"fast\"}"))
                .status,
            400);  // budget not a number
}

TEST(ServeService, SnapshotSurvivesConcurrentMutation) {
  // A snapshot taken before a mutation keeps answering identically —
  // the COW contract in miniature (single-threaded version; the racing
  // version lives in serve_concurrency_test.cpp).
  DiscoveryService service;
  ASSERT_TRUE(service.RegisterTable(MakeServeTable("stable", 20, 3)).ok());
  std::shared_ptr<const DiscoveryEngine> before = service.Snapshot();
  Table query = MakeServeTable("q", 20, 5);
  std::vector<DiscoveryResult> results_before =
      before->FindUnionable(query, 5);
  ASSERT_TRUE(service.RegisterTable(MakeServeTable("newcomer", 20, 7)).ok());
  // The old snapshot is unaffected; a fresh one sees the new table.
  EXPECT_EQ(RenderDiscoveryResults("q", "unionable", 5,
                                   before->FindUnionable(query, 5)),
            RenderDiscoveryResults("q", "unionable", 5, results_before));
  EXPECT_EQ(service.Snapshot()->num_tables(), 2u);
  EXPECT_EQ(before->num_tables(), 1u);
}

}  // namespace
}  // namespace serve
}  // namespace valentine
