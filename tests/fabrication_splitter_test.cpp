#include "fabrication/splitter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace valentine {
namespace {

size_t CountShared(const std::vector<size_t>& a,
                   const std::vector<size_t>& b) {
  std::set<size_t> sa(a.begin(), a.end());
  size_t shared = 0;
  for (size_t x : b) shared += sa.count(x);
  return shared;
}

TEST(SplitRowsTest, ZeroOverlapDisjoint) {
  Rng rng(1);
  auto split = SplitRowsWithOverlap(100, 0.0, &rng);
  EXPECT_EQ(split.overlap_count, 0u);
  EXPECT_EQ(CountShared(split.rows_a, split.rows_b), 0u);
  EXPECT_EQ(split.rows_a.size() + split.rows_b.size(), 100u);
}

TEST(SplitRowsTest, FullOverlapIdentical) {
  Rng rng(2);
  auto split = SplitRowsWithOverlap(50, 1.0, &rng);
  EXPECT_EQ(split.rows_a.size(), 50u);
  EXPECT_EQ(split.rows_b.size(), 50u);
  EXPECT_EQ(CountShared(split.rows_a, split.rows_b), 50u);
}

TEST(SplitRowsTest, PartialOverlapCounts) {
  Rng rng(3);
  auto split = SplitRowsWithOverlap(100, 0.4, &rng);
  EXPECT_EQ(split.overlap_count, 40u);
  EXPECT_EQ(CountShared(split.rows_a, split.rows_b), 40u);
  // Non-shared rows split evenly: 30 each.
  EXPECT_EQ(split.rows_a.size(), 70u);
  EXPECT_EQ(split.rows_b.size(), 70u);
}

TEST(SplitRowsTest, AllIndicesValidAndSorted) {
  Rng rng(4);
  auto split = SplitRowsWithOverlap(30, 0.5, &rng);
  for (size_t r : split.rows_a) EXPECT_LT(r, 30u);
  EXPECT_TRUE(std::is_sorted(split.rows_a.begin(), split.rows_a.end()));
  EXPECT_TRUE(std::is_sorted(split.rows_b.begin(), split.rows_b.end()));
}

TEST(SplitRowsTest, EmptyInput) {
  Rng rng(5);
  auto split = SplitRowsWithOverlap(0, 0.5, &rng);
  EXPECT_TRUE(split.rows_a.empty());
  EXPECT_TRUE(split.rows_b.empty());
}

TEST(SplitRowsTest, SingleRowBothSidesNonEmpty) {
  Rng rng(6);
  auto split = SplitRowsWithOverlap(1, 0.0, &rng);
  EXPECT_FALSE(split.rows_a.empty());
  EXPECT_FALSE(split.rows_b.empty());
}

TEST(SplitRowsTest, OverlapClamped) {
  Rng rng(7);
  auto split = SplitRowsWithOverlap(10, 2.5, &rng);
  EXPECT_EQ(split.overlap_count, 10u);
}

TEST(SplitColumnsTest, SharedSubsetOfBoth) {
  Rng rng(8);
  auto split = SplitColumnsWithOverlap(10, 0.3, &rng);
  EXPECT_EQ(split.shared.size(), 3u);
  for (size_t s : split.shared) {
    EXPECT_TRUE(std::count(split.cols_a.begin(), split.cols_a.end(), s));
    EXPECT_TRUE(std::count(split.cols_b.begin(), split.cols_b.end(), s));
  }
}

TEST(SplitColumnsTest, NonSharedColumnsPartitioned) {
  Rng rng(9);
  auto split = SplitColumnsWithOverlap(10, 0.4, &rng);
  // Each non-shared column appears in exactly one shard.
  for (size_t c = 0; c < 10; ++c) {
    bool in_shared = std::count(split.shared.begin(), split.shared.end(), c);
    size_t occurrences =
        std::count(split.cols_a.begin(), split.cols_a.end(), c) +
        std::count(split.cols_b.begin(), split.cols_b.end(), c);
    EXPECT_EQ(occurrences, in_shared ? 2u : 1u) << c;
  }
}

TEST(SplitColumnsTest, AtLeastOneSharedColumn) {
  Rng rng(10);
  auto split = SplitColumnsWithOverlap(10, 0.0, &rng);
  EXPECT_EQ(split.shared.size(), 1u);
}

TEST(SplitColumnsTest, FullOverlap) {
  Rng rng(11);
  auto split = SplitColumnsWithOverlap(6, 1.0, &rng);
  EXPECT_EQ(split.shared.size(), 6u);
  EXPECT_EQ(split.cols_a.size(), 6u);
  EXPECT_EQ(split.cols_b.size(), 6u);
}

TEST(SplitColumnsTest, OrderPreserved) {
  Rng rng(12);
  auto split = SplitColumnsWithOverlap(12, 0.5, &rng);
  EXPECT_TRUE(std::is_sorted(split.cols_a.begin(), split.cols_a.end()));
  EXPECT_TRUE(std::is_sorted(split.cols_b.begin(), split.cols_b.end()));
}

// Property sweep: overlap accounting is exact for every overlap level.
class SplitOverlapPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SplitOverlapPropertyTest, RowOverlapExact) {
  double overlap = GetParam();
  Rng rng(13);
  auto split = SplitRowsWithOverlap(200, overlap, &rng);
  size_t expected = static_cast<size_t>(std::llround(overlap * 200));
  EXPECT_EQ(CountShared(split.rows_a, split.rows_b), expected);
}

INSTANTIATE_TEST_SUITE_P(Overlaps, SplitOverlapPropertyTest,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

}  // namespace
}  // namespace valentine
