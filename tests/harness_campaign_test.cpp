#include "harness/campaign.h"

#include <gtest/gtest.h>

#include "datasets/tpcdi.h"
#include "harness/json_export.h"
#include "io/csv.h"

#include <cstdio>
#include <filesystem>

namespace valentine {
namespace {

CampaignOptions SmallCampaign() {
  CampaignOptions opt;
  opt.suite.row_overlaps = {0.5};
  opt.suite.column_overlaps = {0.5};
  opt.suite.schema_noise_variants = false;
  opt.suite.instance_noise_variants = false;
  opt.num_threads = 2;
  return opt;
}

TEST(CampaignTest, RunsAllFamiliesAndAccounts) {
  std::vector<Table> sources = {MakeTpcdiProspect(50, 81)};
  std::vector<MethodFamily> families = {SimilarityFloodingFamily(),
                                        JaccardLevenshteinFamily()};
  CampaignReport report = RunCampaign(sources, families, SmallCampaign());
  EXPECT_EQ(report.num_pairs, 6u);
  EXPECT_EQ(report.num_configurations, 6u);  // 1 SF + 5 JL
  EXPECT_EQ(report.num_experiments, 36u);
  ASSERT_EQ(report.families.size(), 2u);
  for (const auto& fr : report.families) {
    EXPECT_EQ(fr.outcomes.size(), 6u);
    EXPECT_FALSE(fr.by_scenario.empty());
    EXPECT_GT(fr.avg_runtime_ms, 0.0);
  }
}

TEST(CampaignTest, FamilyFilterRestricts) {
  std::vector<Table> sources = {MakeTpcdiProspect(40, 82)};
  std::vector<MethodFamily> families = {SimilarityFloodingFamily(),
                                        JaccardLevenshteinFamily()};
  CampaignOptions opt = SmallCampaign();
  opt.family_filter = {"SimilarityFlooding"};
  CampaignReport report = RunCampaign(sources, families, opt);
  ASSERT_EQ(report.families.size(), 1u);
  EXPECT_EQ(report.families[0].family, "SimilarityFlooding");
  EXPECT_EQ(report.num_configurations, 1u);
}

TEST(CampaignTest, MultipleSourcesConcatenateSuites) {
  std::vector<Table> sources = {MakeTpcdiProspect(40, 83),
                                MakeTpcdiProspect(40, 84)};
  CampaignReport report = RunCampaign(
      sources, {SimilarityFloodingFamily()}, SmallCampaign());
  EXPECT_EQ(report.num_pairs, 12u);
}

TEST(CampaignTest, EmptySuiteSafe) {
  CampaignReport report =
      RunCampaignOnSuite({}, {SimilarityFloodingFamily()}, {});
  EXPECT_EQ(report.num_pairs, 0u);
  ASSERT_EQ(report.families.size(), 1u);
  EXPECT_TRUE(report.families[0].outcomes.empty());
}

TEST(CampaignTest, EmptyFamilyListYieldsEmptyDeterministicReport) {
  std::vector<Table> sources = {MakeTpcdiProspect(30, 85)};
  CampaignReport report = RunCampaign(sources, {}, SmallCampaign());
  EXPECT_GT(report.num_pairs, 0u);  // the suite is still fabricated
  EXPECT_EQ(report.num_configurations, 0u);
  EXPECT_EQ(report.num_experiments, 0u);
  EXPECT_EQ(report.failed_experiments, 0u);
  EXPECT_TRUE(report.families.empty());
  // Two runs serialize identically — nothing time-dependent leaks in.
  CampaignReport again = RunCampaign(sources, {}, SmallCampaign());
  EXPECT_EQ(ToJson(report), ToJson(again));
}

TEST(CampaignTest, FilterMatchingNothingIsSafe) {
  std::vector<Table> sources = {MakeTpcdiProspect(30, 86)};
  CampaignOptions opt = SmallCampaign();
  opt.family_filter = {"NoSuchFamily"};
  CampaignReport report =
      RunCampaign(sources, {SimilarityFloodingFamily()}, opt);
  EXPECT_TRUE(report.families.empty());
  EXPECT_EQ(report.num_configurations, 0u);
  EXPECT_EQ(report.num_experiments, 0u);
}

TEST(CampaignTest, EmptySuiteAndEmptyFamiliesSafe) {
  CampaignReport report = RunCampaignOnSuite({}, {}, {});
  EXPECT_EQ(report.num_pairs, 0u);
  EXPECT_EQ(report.num_experiments, 0u);
  EXPECT_TRUE(report.families.empty());
}

TEST(CsvDirectoryTest, LoadsAllCsvFiles) {
  namespace fs = std::filesystem;
  std::string dir = ::testing::TempDir() + "/valentine_repo_test";
  fs::create_directories(dir);
  Table t1("a");
  Column c1("x", DataType::kInt64);
  c1.Append(Value::Int(1));
  ASSERT_TRUE(t1.AddColumn(std::move(c1)).ok());
  ASSERT_TRUE(WriteCsvFile(t1, dir + "/alpha.csv").ok());
  ASSERT_TRUE(WriteCsvFile(t1, dir + "/beta.csv").ok());
  {
    std::FILE* f = std::fopen((dir + "/ignored.txt").c_str(), "w");
    std::fputs("not a csv", f);
    std::fclose(f);
  }
  auto tables = ReadCsvDirectory(dir);
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->size(), 2u);
  EXPECT_EQ((*tables)[0].name(), "alpha");  // deterministic (sorted)
  EXPECT_EQ((*tables)[1].name(), "beta");
  fs::remove_all(dir);
}

TEST(CsvDirectoryTest, MissingDirectoryIsIOError) {
  auto tables = ReadCsvDirectory("/nonexistent/repo");
  EXPECT_FALSE(tables.ok());
  EXPECT_EQ(tables.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace valentine
