// Tests for the serving JSON layer (serve/json.h): a parser written for
// hostile input, and a writer whose output must be byte-deterministic
// (sorted keys, canonical number rendering) because the serving
// byte-identity contract rides on it.

#include "serve/json.h"

#include <string>

#include <gtest/gtest.h>

namespace valentine {
namespace serve {
namespace {

JsonValue ParseOk(const std::string& text) {
  Result<JsonValue> parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << " for " << text;
  return parsed.ok() ? std::move(parsed).ValueOrDie() : JsonValue();
}

void ExpectParseError(const std::string& text) {
  Result<JsonValue> parsed = ParseJson(text);
  ASSERT_FALSE(parsed.ok()) << "unexpectedly parsed: " << text;
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(ServeJsonParse, Scalars) {
  EXPECT_TRUE(ParseOk("null").is_null());
  EXPECT_TRUE(ParseOk("true").bool_value());
  EXPECT_FALSE(ParseOk("false").bool_value());
  EXPECT_DOUBLE_EQ(ParseOk("42").number_value(), 42.0);
  EXPECT_DOUBLE_EQ(ParseOk("-3.5e2").number_value(), -350.0);
  EXPECT_EQ(ParseOk("\"hi\"").string_value(), "hi");
}

TEST(ServeJsonParse, NestedStructures) {
  JsonValue v = ParseOk("{\"a\":[1,{\"b\":null},\"x\"],\"c\":true}");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array_items().size(), 3u);
  EXPECT_TRUE(a->array_items()[1].Find("b")->is_null());
  EXPECT_TRUE(v.Find("c")->bool_value());
}

TEST(ServeJsonParse, StringEscapes) {
  EXPECT_EQ(ParseOk("\"a\\n\\t\\\"b\\\\\"").string_value(), "a\n\t\"b\\");
  // \u0041 = 'A'; two-byte and three-byte UTF-8 encodings.
  EXPECT_EQ(ParseOk("\"\\u0041\"").string_value(), "A");
  EXPECT_EQ(ParseOk("\"\\u00e9\"").string_value(), "\xc3\xa9");
  EXPECT_EQ(ParseOk("\"\\u20ac\"").string_value(), "\xe2\x82\xac");
}

TEST(ServeJsonParse, RejectsMalformed) {
  ExpectParseError("");
  ExpectParseError("{");
  ExpectParseError("[1,]");
  ExpectParseError("{\"a\":}");
  ExpectParseError("{\"a\" 1}");
  ExpectParseError("nul");
  ExpectParseError("01");
  ExpectParseError("\"unterminated");
  ExpectParseError("\"raw\ncontrol\"");
  ExpectParseError("1 2");           // trailing garbage
  ExpectParseError("{} extra");
  ExpectParseError("\"\\u12\"");     // truncated escape
  ExpectParseError("\"\\ud800\"");   // lone surrogate
}

TEST(ServeJsonParse, DepthBoundIsEnforced) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  ExpectParseError(deep);  // default max_depth = 64

  Result<JsonValue> shallow = ParseJson("[[[[1]]]]", /*max_depth=*/4);
  EXPECT_TRUE(shallow.ok());
  EXPECT_FALSE(ParseJson("[[[[[1]]]]]", /*max_depth=*/4).ok());
}

TEST(ServeJsonParse, ErrorsCarryByteOffset) {
  // The bad literal starts at byte 6; the message must say so, so a
  // 400 envelope pinpoints the defect in the client's payload.
  Result<JsonValue> parsed = ParseJson("{\"a\": nope}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("byte 6"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ServeJsonParse, DuplicateKeysLastWins) {
  JsonValue v = ParseOk("{\"a\":1,\"a\":2}");
  EXPECT_DOUBLE_EQ(v.Find("a")->number_value(), 2.0);
}

TEST(ServeJsonWrite, SortedKeysAndCompactForm) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", JsonValue::Number(1));
  obj.Set("alpha", JsonValue::Bool(true));
  obj.Set("mid", JsonValue::String("x"));
  EXPECT_EQ(WriteJson(obj), "{\"alpha\":true,\"mid\":\"x\",\"zebra\":1}");
}

TEST(ServeJsonWrite, NumberCanonicalization) {
  EXPECT_EQ(WriteJson(JsonValue::Number(42.0)), "42");
  EXPECT_EQ(WriteJson(JsonValue::Number(-7.0)), "-7");
  EXPECT_EQ(WriteJson(JsonValue::Number(0.5)), "0.5");
  // Round-trip stability: parse(write(x)) == x bytes.
  for (double d : {0.1, 1.0 / 3.0, 1e-9, 123456789.123}) {
    std::string once = WriteJson(JsonValue::Number(d));
    std::string twice = WriteJson(ParseOk(once));
    EXPECT_EQ(once, twice) << d;
  }
}

TEST(ServeJsonWrite, EscapesControlAndQuotes) {
  EXPECT_EQ(WriteJson(JsonValue::String("a\"b\\c\nd")),
            "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(WriteJson(JsonValue::String(std::string("\x01", 1))),
            "\"\\u0001\"");
}

TEST(ServeJsonRoundTrip, StructuredDocumentIsStable) {
  const std::string doc =
      "{\"k\":3,\"results\":[{\"score\":0.5,\"table\":\"t\"}]}";
  EXPECT_EQ(WriteJson(ParseOk(doc)), doc);
}

}  // namespace
}  // namespace serve
}  // namespace valentine
