// Tests for the TF-IDF column matcher substrate and the Soundex
// phonetic matcher.

#include <gtest/gtest.h>

#include "matchers/coma.h"
#include "text/string_similarity.h"
#include "text/tfidf.h"

namespace valentine {
namespace {

TEST(SoundexTest, ClassicCodes) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");  // h is transparent
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, EdgeCases) {
  EXPECT_EQ(Soundex(""), "0000");
  EXPECT_EQ(Soundex("123"), "0000");
  EXPECT_EQ(Soundex("A"), "A000");
  EXPECT_EQ(Soundex("robert"), Soundex("ROBERT"));
}

TEST(SoundexSimilarityTest, Scores) {
  EXPECT_DOUBLE_EQ(SoundexSimilarity("Robert", "Rupert"), 1.0);
  EXPECT_DOUBLE_EQ(SoundexSimilarity("Smith", "Waters"), 0.0);
  // Shared first letter + first digit earns partial credit.
  double partial = SoundexSimilarity("Robert", "Roberts");
  EXPECT_GE(partial, 0.5);
}

TEST(TfIdfModelTest, IdenticalDocumentsCosineOne) {
  TfIdfModel model;
  size_t a = model.AddDocument({"red", "green", "blue"});
  size_t b = model.AddDocument({"red", "green", "blue"});
  model.Finalize();
  EXPECT_NEAR(TfIdfModel::Cosine(model.VectorOf(a), model.VectorOf(b)), 1.0,
              1e-9);
}

TEST(TfIdfModelTest, DisjointDocumentsCosineZero) {
  TfIdfModel model;
  size_t a = model.AddDocument({"red", "green"});
  size_t b = model.AddDocument({"sql", "index"});
  model.Finalize();
  EXPECT_DOUBLE_EQ(TfIdfModel::Cosine(model.VectorOf(a), model.VectorOf(b)),
                   0.0);
}

TEST(TfIdfModelTest, CommonTermsDiscounted) {
  // "the" appears in every document; "zebra" only in two. The shared
  // rare term must contribute more than the shared ubiquitous term.
  TfIdfModel model;
  size_t a = model.AddDocument({"the", "zebra"});
  size_t b = model.AddDocument({"the", "zebra"});
  size_t c = model.AddDocument({"the", "apple"});
  size_t d = model.AddDocument({"the", "pear"});
  model.Finalize();
  double rare_pair = TfIdfModel::Cosine(model.VectorOf(a), model.VectorOf(b));
  double common_pair =
      TfIdfModel::Cosine(model.VectorOf(c), model.VectorOf(d));
  EXPECT_GT(rare_pair, common_pair);
}

TEST(TfIdfModelTest, EmptyDocumentSafe) {
  TfIdfModel model;
  size_t a = model.AddDocument({});
  size_t b = model.AddDocument({"x"});
  model.Finalize();
  EXPECT_DOUBLE_EQ(TfIdfModel::Cosine(model.VectorOf(a), model.VectorOf(b)),
                   0.0);
}

Column MakeColumn(const std::string& name,
                  std::vector<std::string> values) {
  Column c(name, DataType::kString);
  for (auto& v : values) c.Append(Value::String(std::move(v)));
  return c;
}

TEST(TfIdfColumnTest, MatchingColumnsScoreHigher) {
  Table src("s");
  ASSERT_TRUE(src.AddColumn(MakeColumn("desc", {"fix login bug",
                                                "deploy payments"})).ok());
  ASSERT_TRUE(src.AddColumn(MakeColumn("team", {"alpha squad",
                                                "beta squad"})).ok());
  Table tgt("t");
  ASSERT_TRUE(tgt.AddColumn(MakeColumn("summary", {"fix login crash",
                                                   "deploy payments"})).ok());
  ASSERT_TRUE(tgt.AddColumn(MakeColumn("squad", {"alpha squad",
                                                 "gamma squad"})).ok());
  auto sim = TfIdfColumnSimilarity(src, tgt);
  EXPECT_GT(sim[0][0], sim[0][1]);  // desc ~ summary
  EXPECT_GT(sim[1][1], sim[1][0]);  // team ~ squad
}

TEST(TfIdfColumnTest, NoisyValuesStillOverlapOnTokens) {
  // Whole-value equality fails, token overlap survives.
  Table src("s");
  ASSERT_TRUE(src.AddColumn(
      MakeColumn("a", {"john smith boston", "mary jones denver"})).ok());
  Table tgt("t");
  ASSERT_TRUE(tgt.AddColumn(
      MakeColumn("b", {"smith john (boston)", "jones mary - denver"})).ok());
  auto sim = TfIdfColumnSimilarity(src, tgt);
  EXPECT_GT(sim[0][0], 0.9);
}

TEST(ComaOptionalComponentsTest, FlagsAddComponents) {
  // Soundex keeps the initial letter, so pick phonetic twins that share
  // it ("robert"/"rupert", "name"/"naim").
  Column a("robert_name", DataType::kString);
  a.Append(Value::String("x"));
  Column b("rupert_naim", DataType::kString);
  b.Append(Value::String("x"));
  ComaOptions opt;
  opt.use_soundex = true;
  ComaMatcher with_soundex(opt);
  auto scores = with_soundex.SchemaComponentScores("s", a, "t", b);
  bool has_soundex = false;
  for (const auto& s : scores) {
    if (std::string(s.matcher) == "name_soundex") {
      has_soundex = true;
      EXPECT_GT(s.score, 0.9);  // phonetically identical
    }
  }
  EXPECT_TRUE(has_soundex);

  ComaMatcher without{};
  EXPECT_EQ(without.SchemaComponentScores("s", a, "t", b).size(),
            scores.size() - 1);
}

TEST(ComaOptionalComponentsTest, TfIdfHelpsNoisyInstances) {
  Table src("s");
  ASSERT_TRUE(src.AddColumn(
      MakeColumn("c1", {"john smith boston ma", "mary jones denver co",
                        "ann brown austin tx"})).ok());
  Table tgt("t");
  ASSERT_TRUE(tgt.AddColumn(
      MakeColumn("z9", {"smith, john - boston ma", "jones, mary - denver co",
                        "brown, ann - austin tx"})).ok());
  ComaOptions plain;
  plain.strategy = ComaStrategy::kInstances;
  ComaOptions tfidf = plain;
  tfidf.use_tfidf_tokens = true;
  double s_plain = ComaMatcher(plain).Match(src, tgt)[0].score;
  double s_tfidf = ComaMatcher(tfidf).Match(src, tgt)[0].score;
  EXPECT_GT(s_tfidf, s_plain);
}

}  // namespace
}  // namespace valentine
