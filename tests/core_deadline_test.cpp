#include "core/deadline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>
#include <vector>

namespace valentine {
namespace {

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.never_expires());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_ms(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(Deadline::Never().never_expires());
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMs(0.0).expired());
  EXPECT_TRUE(Deadline::AfterMs(-5.0).expired());
  EXPECT_EQ(Deadline::AfterMs(-5.0).remaining_ms(), 0.0);
}

// Regression: a huge negative budget used to feed `now() + budget`
// directly, overflowing the steady_clock time_point — UB that could
// wrap into the far future and silently disable the deadline. Every
// non-positive (or non-numeric) budget must now take the
// AlreadyExpired path and fail before any clock arithmetic.
TEST(DeadlineTest, PathologicalBudgetsAreAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMs(-1e300).expired());
  EXPECT_TRUE(Deadline::AfterMs(std::numeric_limits<double>::lowest())
                  .expired());
  EXPECT_TRUE(Deadline::AfterMs(std::numeric_limits<double>::quiet_NaN())
                  .expired());
  EXPECT_TRUE(Deadline::After(std::chrono::nanoseconds::min()).expired());
  EXPECT_TRUE(Deadline::After(-std::chrono::hours(1)).expired());
  // Sub-nanosecond positive budgets round down to zero: same path.
  EXPECT_TRUE(Deadline::AfterMs(1e-9).expired());
  // And the huge-positive end clamps instead of overflowing the cast.
  Deadline far = Deadline::AfterMs(std::numeric_limits<double>::max());
  EXPECT_FALSE(far.never_expires());
  EXPECT_FALSE(far.expired());
}

TEST(DeadlineTest, AlreadyExpiredIsExpiredFromConstruction) {
  Deadline d = Deadline::AlreadyExpired();
  EXPECT_FALSE(d.never_expires());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0.0);
}

TEST(DeadlineTest, GenerousBudgetNotExpired) {
  Deadline d = Deadline::AfterMs(60000.0);
  EXPECT_FALSE(d.never_expires());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);
  EXPECT_LE(d.remaining_ms(), 60000.0);
}

TEST(DeadlineTest, ExpiresAfterBudgetElapses) {
  Deadline d = Deadline::AfterMs(1.0);
  // Busy-wait on the steady clock (no sleeps in tests either — keeps
  // them honest on loaded CI machines).
  while (!d.expired()) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0.0);
}

TEST(CancellationTokenTest, StartsClearAndSticks) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(MatchContextTest, DefaultCheckIsOk) {
  MatchContext ctx;
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_TRUE(ctx.Check("anywhere").ok());
}

TEST(MatchContextTest, ExpiredDeadlineYieldsDeadlineExceeded) {
  MatchContext ctx;
  ctx.deadline = Deadline::AfterMs(0.0);
  Status s = ctx.Check("fixpoint");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.message().find("fixpoint"), std::string::npos);
}

TEST(MatchContextTest, CancelledBeforeStartYieldsCancelled) {
  CancellationToken token;
  token.Cancel();
  MatchContext ctx;
  ctx.cancel = &token;
  Status s = ctx.Check("startup");
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find("startup"), std::string::npos);
}

TEST(MatchContextTest, CancellationOutranksDeadline) {
  // Both fired: the cancellation (an operator decision) is reported, so
  // quarantine taxonomies attribute the abort to the right cause.
  CancellationToken token;
  token.Cancel();
  MatchContext ctx;
  ctx.cancel = &token;
  ctx.deadline = Deadline::AfterMs(0.0);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(MatchContextTest, ErrorMessagesAreWallClockFree) {
  // Messages feed journal entries and canonical reports; any timestamp
  // or remaining-budget digit would break byte-identical resume.
  MatchContext ctx;
  ctx.deadline = Deadline::AfterMs(-1.0);
  Status first = ctx.Check("spot");
  Status second = ctx.Check("spot");
  EXPECT_EQ(first, second);
}

// Concurrent cancellation: one canceller thread races many observers
// polling Check(). Run under the tsan preset (this file is on the tsan
// label list) to prove the atomic handoff is clean.
TEST(MatchContextConcurrencyTest, ConcurrentCancelIsObservedByAllWorkers) {
  CancellationToken token;
  MatchContext ctx;
  ctx.cancel = &token;

  constexpr size_t kWorkers = 8;
  std::vector<std::thread> workers;
  std::vector<StatusCode> final_codes(kWorkers, StatusCode::kOk);
  workers.reserve(kWorkers);
  for (size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      while (true) {
        Status s = ctx.Check("worker loop");
        if (!s.ok()) {
          final_codes[w] = s.code();
          return;
        }
        std::this_thread::yield();
      }
    });
  }
  std::thread canceller([&] { token.Cancel(); });
  canceller.join();
  for (auto& t : workers) t.join();
  for (StatusCode code : final_codes) {
    EXPECT_EQ(code, StatusCode::kCancelled);
  }
}

}  // namespace
}  // namespace valentine
