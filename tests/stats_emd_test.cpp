#include "stats/emd.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/rng.h"

namespace valentine {
namespace {

TEST(EmdTest, IdenticalDistributionsZero) {
  std::vector<MassPoint> a = {{0.0, 0.5}, {1.0, 0.5}};
  EXPECT_NEAR(EmdPointMasses(a, a), 0.0, 1e-12);
}

TEST(EmdTest, SimpleShift) {
  // All mass at 0 vs all mass at 1: EMD = 1.
  std::vector<MassPoint> a = {{0.0, 1.0}};
  std::vector<MassPoint> b = {{1.0, 1.0}};
  EXPECT_NEAR(EmdPointMasses(a, b), 1.0, 1e-12);
}

TEST(EmdTest, HalfMassMoved) {
  // {0:0.5, 1:0.5} vs {0:1.0}: move 0.5 mass across distance 1.
  std::vector<MassPoint> a = {{0.0, 0.5}, {1.0, 0.5}};
  std::vector<MassPoint> b = {{0.0, 1.0}};
  EXPECT_NEAR(EmdPointMasses(a, b), 0.5, 1e-12);
}

TEST(EmdTest, NormalizesMass) {
  // Unnormalized masses produce the same result.
  std::vector<MassPoint> a = {{0.0, 5.0}};
  std::vector<MassPoint> b = {{1.0, 20.0}};
  EXPECT_NEAR(EmdPointMasses(a, b), 1.0, 1e-12);
}

TEST(EmdTest, Symmetric) {
  std::vector<MassPoint> a = {{0.0, 0.3}, {2.0, 0.7}};
  std::vector<MassPoint> b = {{1.0, 1.0}};
  EXPECT_NEAR(EmdPointMasses(a, b), EmdPointMasses(b, a), 1e-12);
}

TEST(EmdTest, TriangleLikeCase) {
  // {0:1} vs {0:0.5, 2:0.5}: move 0.5 over distance 2 -> 1.0.
  std::vector<MassPoint> a = {{0.0, 1.0}};
  std::vector<MassPoint> b = {{0.0, 0.5}, {2.0, 0.5}};
  EXPECT_NEAR(EmdPointMasses(a, b), 1.0, 1e-12);
}

TEST(EmdTest, EmptyCases) {
  EXPECT_DOUBLE_EQ(EmdPointMasses({}, {}), 0.0);
  std::vector<MassPoint> a = {{0.0, 1.0}};
  EXPECT_EQ(EmdPointMasses(a, {}), std::numeric_limits<double>::max());
}

TEST(EmdHistogramTest, IdenticalHistogramsZero) {
  std::vector<double> data;
  for (int i = 0; i < 500; ++i) data.push_back(i % 37);
  auto h = QuantileHistogram::Build(data, 16);
  EXPECT_NEAR(EmdBetweenHistograms(h, h), 0.0, 1e-12);
}

TEST(EmdHistogramTest, ShiftedDistributionsPositive) {
  std::vector<double> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(i);
    b.push_back(i + 400);
  }
  auto ha = QuantileHistogram::Build(a, 16);
  auto hb = QuantileHistogram::Build(b, 16);
  double emd = EmdBetweenHistograms(ha, hb);
  EXPECT_GT(emd, 0.1);
  EXPECT_LE(emd, 1.0);  // domain normalized to [0, 1]
}

TEST(EmdHistogramTest, ScaleInvarianceOfNormalizedDomain) {
  // The same relative shapes at different absolute scales give the same
  // normalized EMD.
  std::vector<double> a1, b1, a2, b2;
  for (int i = 0; i < 100; ++i) {
    a1.push_back(i);
    b1.push_back(i + 50);
    a2.push_back(i * 1000.0);
    b2.push_back((i + 50) * 1000.0);
  }
  double emd_small = EmdBetweenHistograms(QuantileHistogram::Build(a1, 8),
                                          QuantileHistogram::Build(b1, 8));
  double emd_large = EmdBetweenHistograms(QuantileHistogram::Build(a2, 8),
                                          QuantileHistogram::Build(b2, 8));
  EXPECT_NEAR(emd_small, emd_large, 1e-9);
}

TEST(EmdHistogramTest, EmptyVsNonEmpty) {
  auto empty = QuantileHistogram::Build({}, 8);
  auto full = QuantileHistogram::Build({1.0, 2.0}, 8);
  EXPECT_DOUBLE_EQ(EmdBetweenHistograms(empty, empty), 0.0);
  EXPECT_EQ(EmdBetweenHistograms(empty, full),
            std::numeric_limits<double>::max());
}

// Property sweep: EMD is a metric-like quantity — non-negative,
// symmetric, zero on identity — across several generated distributions.
class EmdPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EmdPropertyTest, MetricProperties) {
  int seed = GetParam();
  Rng rng(seed);
  std::vector<double> a, b;
  for (int i = 0; i < 300; ++i) {
    a.push_back(rng.Gaussian(seed * 10.0, 5.0 + seed));
    b.push_back(rng.UniformDouble(0.0, 100.0));
  }
  auto ha = QuantileHistogram::Build(a, 16);
  auto hb = QuantileHistogram::Build(b, 16);
  double ab = EmdBetweenHistograms(ha, hb);
  double ba = EmdBetweenHistograms(hb, ha);
  EXPECT_GE(ab, 0.0);
  EXPECT_NEAR(ab, ba, 1e-9);
  EXPECT_NEAR(EmdBetweenHistograms(ha, ha), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmdPropertyTest, ::testing::Range(1, 8));

}  // namespace
}  // namespace valentine
