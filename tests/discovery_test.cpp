// Tests for the DiscoveryEngine: table-level joinability/unionability
// search over a small synthetic repository (the §II-B use case).

#include "discovery/discovery.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "datasets/chembl.h"
#include "datasets/opendata.h"
#include "datasets/tpcdi.h"
#include "fabrication/fabricator.h"
#include "matchers/jaccard_levenshtein.h"

namespace valentine {
namespace {

/// A repository with one planted join partner and unrelated tables.
struct Lake {
  DiscoveryEngine engine;
  Table query;

  Lake() {
    Table prospect = MakeTpcdiProspect(200, 2026);
    FabricationOptions fab;
    fab.scenario = Scenario::kJoinable;
    fab.column_overlap = 0.4;
    fab.seed = 4;
    DatasetPair split = FabricateDatasetPair(prospect, fab).ValueOrDie();
    query = split.source;
    query.set_name("query");
    Table partner = split.target;
    partner.set_name("planted_partner");
    EXPECT_TRUE(engine.AddTable(std::move(partner)).ok());
    EXPECT_TRUE(engine.AddTable(MakeOpenDataTable(200, 4711)).ok());
    EXPECT_TRUE(engine.AddTable(MakeChemblAssays(200, 99)).ok());
  }
};

TEST(DiscoveryEngineTest, AddTableValidation) {
  DiscoveryEngine engine;
  EXPECT_FALSE(engine.AddTable(Table("empty")).ok());
  Table t("t");
  Column c("c", DataType::kString);
  c.Append(Value::String("v"));
  ASSERT_TRUE(t.AddColumn(std::move(c)).ok());
  EXPECT_TRUE(engine.AddTable(t).ok());
  EXPECT_FALSE(engine.AddTable(t).ok());  // duplicate name
  EXPECT_EQ(engine.num_tables(), 1u);
}

TEST(DiscoveryEngineTest, FindJoinableRanksPlantedPartnerFirst) {
  Lake lake;
  auto results = lake.engine.FindJoinable(lake.query, 3);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].table_name, "planted_partner");
  EXPECT_GT(results[0].score, 0.5);
  EXPECT_FALSE(results[0].evidence.empty());
}

TEST(DiscoveryEngineTest, FindJoinablePrunesUnrelatedTables) {
  Lake lake;
  auto results = lake.engine.FindJoinable(lake.query, 10);
  // The LSH containment probe should not nominate the chemistry table
  // for a customer-data query... but if it does, it must rank below the
  // planted partner. Assert ordering rather than absence.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i].score, results[0].score);
  }
}

TEST(DiscoveryEngineTest, FindJoinableRespectsK) {
  Lake lake;
  EXPECT_LE(lake.engine.FindJoinable(lake.query, 1).size(), 1u);
}

TEST(DiscoveryEngineTest, FindUnionableRanksSameSchemaFirst) {
  // A unionable shard of the query's original table must outrank
  // unrelated tables.
  Table prospect = MakeTpcdiProspect(200, 2026);
  FabricationOptions fab;
  fab.scenario = Scenario::kUnionable;
  fab.row_overlap = 0.3;
  fab.seed = 5;
  DatasetPair split = FabricateDatasetPair(prospect, fab).ValueOrDie();

  DiscoveryEngine engine;
  Table sibling = split.target;
  sibling.set_name("prospect_sibling");
  ASSERT_TRUE(engine.AddTable(std::move(sibling)).ok());
  ASSERT_TRUE(engine.AddTable(MakeOpenDataTable(150, 4711)).ok());
  ASSERT_TRUE(engine.AddTable(MakeChemblAssays(150, 99)).ok());

  Table query = split.source;
  query.set_name("query");
  auto results = engine.FindUnionable(query, 3);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].table_name, "prospect_sibling");
  EXPECT_GT(results[0].score, results[1].score);
}

TEST(DiscoveryEngineTest, UnionScorePenalizesArityMismatch) {
  // Two repository tables with identical matching columns, one padded
  // with many extras: the same-arity table must score higher.
  auto make = [](const std::string& name, int extra_cols) {
    Table t(name);
    for (const char* col : {"city", "income"}) {
      Column c(col, DataType::kString);
      for (int i = 0; i < 10; ++i) {
        c.Append(Value::String(std::string(col) + std::to_string(i)));
      }
      (void)t.AddColumn(std::move(c));
    }
    for (int e = 0; e < extra_cols; ++e) {
      Column c("extra_" + std::to_string(e), DataType::kInt64);
      for (int i = 0; i < 10; ++i) c.Append(Value::Int(e * 100 + i));
      (void)t.AddColumn(std::move(c));
    }
    return t;
  };
  DiscoveryEngine engine;
  ASSERT_TRUE(engine.AddTable(make("same_arity", 0)).ok());
  ASSERT_TRUE(engine.AddTable(make("wide", 10)).ok());
  auto results = engine.FindUnionable(make("query", 0), 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].table_name, "same_arity");
}

TEST(DiscoveryEngineTest, CustomMatcherInjected) {
  DiscoveryOptions opt;
  opt.matcher = std::make_unique<JaccardLevenshteinMatcher>();
  DiscoveryEngine engine(std::move(opt));
  Table t("t");
  Column c("c", DataType::kString);
  c.Append(Value::String("shared"));
  ASSERT_TRUE(t.AddColumn(std::move(c)).ok());
  ASSERT_TRUE(engine.AddTable(t).ok());
  Table query = t;
  query.set_name("q");
  auto results = engine.FindUnionable(query, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].score, 1.0);  // identical single column
}

TEST(DiscoveryEngineTest, RejectsReservedSeparatorInNames) {
  DiscoveryEngine engine;
  // Table name carrying the LSH key separator (U+001F) would let one
  // registration forge another table's posting keys.
  Table bad_table(std::string("evil\x1f") + "twin");
  Column c1("c", DataType::kString);
  c1.Append(Value::String("v"));
  ASSERT_TRUE(bad_table.AddColumn(std::move(c1)).ok());
  EXPECT_EQ(engine.AddTable(bad_table).code(),
            StatusCode::kInvalidArgument);

  Table bad_column("ok_table");
  Column c2(std::string("col\x1f") + "umn", DataType::kString);
  c2.Append(Value::String("v"));
  ASSERT_TRUE(bad_column.AddColumn(std::move(c2)).ok());
  EXPECT_EQ(engine.AddTable(bad_column).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.num_tables(), 0u);
}

TEST(DiscoveryEngineTest, RejectsDuplicateColumnNames) {
  DiscoveryEngine engine;
  Table t("dup_cols");
  Column a("same", DataType::kString);
  a.Append(Value::String("x"));
  Column b("same", DataType::kString);
  b.Append(Value::String("y"));
  ASSERT_TRUE(t.AddColumn(std::move(a)).ok());
  ASSERT_TRUE(t.AddColumn(std::move(b)).ok());
  // Two columns with one name would collide on the same LSH key; the
  // engine must reject the table atomically (no partial registration).
  EXPECT_EQ(engine.AddTable(t).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.num_tables(), 0u);
}

TEST(DiscoveryEngineTest, RemoveTableErasesItFromResults) {
  Lake lake;
  ASSERT_TRUE(lake.engine.RemoveTable("planted_partner").ok());
  EXPECT_EQ(lake.engine.num_tables(), 2u);
  for (const auto& r : lake.engine.FindJoinable(lake.query, 10)) {
    EXPECT_NE(r.table_name, "planted_partner");
  }
  for (const auto& r : lake.engine.FindUnionable(lake.query, 10)) {
    EXPECT_NE(r.table_name, "planted_partner");
  }
  EXPECT_EQ(lake.engine.RemoveTable("planted_partner").code(),
            StatusCode::kNotFound);

  // Re-adding after removal restores it to the top rank.
  Table prospect = MakeTpcdiProspect(200, 2026);
  FabricationOptions fab;
  fab.scenario = Scenario::kJoinable;
  fab.column_overlap = 0.4;
  fab.seed = 4;
  DatasetPair split = FabricateDatasetPair(prospect, fab).ValueOrDie();
  Table partner = split.target;
  partner.set_name("planted_partner");
  ASSERT_TRUE(lake.engine.AddTable(std::move(partner)).ok());
  auto results = lake.engine.FindJoinable(lake.query, 3);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].table_name, "planted_partner");
}

TEST(DiscoveryEngineTest, LshPathMatchesExhaustiveTopK) {
  // The LSH candidate front-end is a recall optimization, not a scoring
  // change: on the Lake repository both paths must produce identical
  // ranked lists for both query types.
  auto run = [](CandidatePath path) {
    DiscoveryOptions opt;
    opt.joinable_path = path;
    opt.unionable_path = path;
    DiscoveryEngine engine(std::move(opt));
    Table prospect = MakeTpcdiProspect(200, 2026);
    FabricationOptions fab;
    fab.scenario = Scenario::kJoinable;
    fab.column_overlap = 0.4;
    fab.seed = 4;
    DatasetPair split = FabricateDatasetPair(prospect, fab).ValueOrDie();
    Table partner = split.target;
    partner.set_name("planted_partner");
    EXPECT_TRUE(engine.AddTable(std::move(partner)).ok());
    EXPECT_TRUE(engine.AddTable(MakeOpenDataTable(200, 4711)).ok());
    EXPECT_TRUE(engine.AddTable(MakeChemblAssays(200, 99)).ok());
    Table query = split.source;
    query.set_name("query");
    std::string out;
    for (const auto& r : engine.FindJoinable(query, 3)) {
      out += "J:" + r.table_name + "=" + std::to_string(r.score) + ";";
    }
    for (const auto& r : engine.FindUnionable(query, 3)) {
      out += "U:" + r.table_name + "=" + std::to_string(r.score) + ";";
    }
    return out;
  };
  std::string lsh = run(CandidatePath::kLsh);
  std::string exhaustive = run(CandidatePath::kExhaustive);
  EXPECT_FALSE(lsh.empty());
  // Top-ranked results must agree exactly; LSH may prune tail tables
  // the exhaustive path scores near zero, but everything LSH surfaces
  // must appear in the exhaustive output with the same score.
  std::istringstream lsh_items(lsh);
  std::string item;
  while (std::getline(lsh_items, item, ';')) {
    EXPECT_NE(exhaustive.find(item + ";"), std::string::npos)
        << "LSH produced " << item << " absent from exhaustive output "
        << exhaustive;
  }
  EXPECT_EQ(lsh.substr(0, lsh.find(';')),
            exhaustive.substr(0, exhaustive.find(';')));
}

TEST(DiscoveryEngineTest, EmptyRepository) {
  DiscoveryEngine engine;
  Table query("q");
  Column c("c", DataType::kString);
  c.Append(Value::String("v"));
  ASSERT_TRUE(query.AddColumn(std::move(c)).ok());
  EXPECT_TRUE(engine.FindJoinable(query, 5).empty());
  EXPECT_TRUE(engine.FindUnionable(query, 5).empty());
}

}  // namespace
}  // namespace valentine
