#include "text/string_similarity.h"

#include <algorithm>
#include <gtest/gtest.h>

namespace valentine {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("sunday", "saturday"),
            LevenshteinDistance("saturday", "sunday"));
}

TEST(LevenshteinSimilarityTest, Bounds) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  double s = LevenshteinSimilarity("abcd", "abce");
  EXPECT_DOUBLE_EQ(s, 0.75);
}

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.7667, 1e-3);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jaro = JaroSimilarity("prefixed", "prefixes");
  double jw = JaroWinklerSimilarity("prefixed", "prefixes");
  EXPECT_GT(jw, jaro);
  EXPECT_LE(jw, 1.0);
}

TEST(JaroWinklerTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
}

TEST(CharNGramsTest, PaddedTrigrams) {
  auto grams = CharNGrams("ab", 3);
  // "##ab##" -> {"##a", "#ab", "ab#", "b##"}
  ASSERT_EQ(grams.size(), 4u);
  EXPECT_EQ(grams[0], "##a");
  EXPECT_EQ(grams[3], "b##");
}

TEST(CharNGramsTest, Unigrams) {
  auto grams = CharNGrams("abc", 1);
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[1], "b");
}

TEST(CharNGramsTest, ZeroNYieldsNoGrams) {
  // Regression: n == 0 used to compute std::string(n - 1, '#') with an
  // unsigned underflow. It must simply produce no grams.
  EXPECT_TRUE(CharNGrams("abc", 0).empty());
  EXPECT_TRUE(CharNGrams("", 0).empty());
}

TEST(CharNGramsTest, EmptyString) {
  // "" padded to "####" for n == 3 -> {"###", "###"}.
  auto grams = CharNGrams("", 3);
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(grams[0], "###");
  EXPECT_EQ(grams[1], "###");
  // Unigrams of the empty string: nothing to emit.
  EXPECT_TRUE(CharNGrams("", 1).empty());
}

TEST(CharNGramsTest, AllPadCharacters) {
  // Input consisting of the pad character itself still round-trips:
  // "##" padded to "######" -> 4 trigrams, all "###".
  auto grams = CharNGrams("##", 3);
  ASSERT_EQ(grams.size(), 4u);
  for (const auto& g : grams) EXPECT_EQ(g, "###");
}

TEST(TrigramTest, Bounds) {
  EXPECT_DOUBLE_EQ(TrigramSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(TrigramSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(TrigramSimilarity("abc", "xyz"), 0.0);
  double s = TrigramSimilarity("night", "nacht");
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(JaccardTest, SetOverlap) {
  std::unordered_set<std::string> a = {"x", "y", "z"};
  std::unordered_set<std::string> b = {"y", "z", "w"};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, {}), 0.0);
}

TEST(ContainmentTest, Asymmetric) {
  std::unordered_set<std::string> a = {"x", "y"};
  std::unordered_set<std::string> b = {"x", "y", "z", "w"};
  EXPECT_DOUBLE_EQ(Containment(a, b), 1.0);
  EXPECT_DOUBLE_EQ(Containment(b, a), 0.5);
  EXPECT_DOUBLE_EQ(Containment({}, b), 0.0);
}

TEST(FuzzyJaccardTest, ExactMatchesOnly) {
  std::vector<std::string> a = {"apple", "pear", "plum"};
  std::vector<std::string> b = {"apple", "pear", "kiwi"};
  // threshold 0: only exact matches, jaccard = 2/4.
  EXPECT_DOUBLE_EQ(FuzzyJaccard(a, b, 0.0), 0.5);
}

TEST(FuzzyJaccardTest, FuzzyMatchesCount) {
  std::vector<std::string> a = {"apple"};
  std::vector<std::string> b = {"aple"};  // distance 1, max len 5 -> 0.2
  EXPECT_DOUBLE_EQ(FuzzyJaccard(a, b, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(FuzzyJaccard(a, b, 0.25), 1.0);
}

TEST(FuzzyJaccardTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(FuzzyJaccard({}, {}, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(FuzzyJaccard({"a"}, {}, 0.5), 0.0);
}

TEST(FuzzyJaccardTest, DuplicatesHandledAsMultiset) {
  std::vector<std::string> a = {"x", "x"};
  std::vector<std::string> b = {"x"};
  // matched = 1, union = 2 + 1 - 1 = 2.
  EXPECT_DOUBLE_EQ(FuzzyJaccard(a, b, 0.0), 0.5);
}

TEST(FuzzyJaccardTest, LengthPrefilterDoesNotChangeSemantics) {
  // "ab" vs "abcdef": length diff 4 / max 6 = 0.67 > 0.3 -> prunable,
  // and indeed real distance 4/6 = 0.67 > 0.3.
  EXPECT_DOUBLE_EQ(FuzzyJaccard({"ab"}, {"abcdef"}, 0.3), 0.0);
  // Within threshold it still matches.
  EXPECT_DOUBLE_EQ(FuzzyJaccard({"abcde"}, {"abcdef"}, 0.3), 1.0);
}

TEST(FuzzyJaccardTest, PermutedDuplicateInputsScoreIdentically) {
  // Regression for the order-dependence bug: the leftover list for `b`
  // was rebuilt by iterating an unordered_map, so inputs containing
  // duplicates could score differently depending on hash order. The
  // score must be a pure function of the multisets, i.e. identical
  // under any permutation of either input.
  //
  // Crafted so greedy pairing is contention-heavy: "abcd" fuzzy-matches
  // both "abcx" and "abcy", duplicates included.
  std::vector<std::string> a = {"abcd", "abcd", "qqqq", "abcx"};
  std::vector<std::string> b = {"abcx", "abcy", "abcx", "zzzz"};
  const double threshold = 0.25;  // distance 1 over length 4 matches

  std::vector<std::string> pa = a;
  std::sort(pa.begin(), pa.end());
  const double reference = FuzzyJaccard(a, b, threshold);
  do {
    std::vector<std::string> pb = b;
    std::sort(pb.begin(), pb.end());
    do {
      EXPECT_DOUBLE_EQ(FuzzyJaccard(pa, pb, threshold), reference)
          << "a permuted as {" << pa[0] << "," << pa[1] << "," << pa[2]
          << "," << pa[3] << "}, b permuted as {" << pb[0] << "," << pb[1]
          << "," << pb[2] << "," << pb[3] << "}";
    } while (std::next_permutation(pb.begin(), pb.end()));
  } while (std::next_permutation(pa.begin(), pa.end()));
}

TEST(FuzzyJaccardTest, KernelsAgree) {
  // The banded kernel must reproduce the naive kernel's score exactly,
  // including at thresholds where float rounding of max_distance *
  // max_len is adversarial (0.3 * 10 < 3.0 in binary floating point).
  const std::vector<std::vector<std::string>> corpora = {
      {},
      {"apple", "pear", "plum", "aple", "peer"},
      {"customer_id", "customerid", "cust_id", "custid"},
      {"aaaaaaaaaa", "aaaaaaabbb", "bbbbbbbbbb"},
      {"x", "xy", "xyz", "xyzw", ""},
      {"same", "same", "same"},
  };
  const double thresholds[] = {0.0, 0.2, 0.25, 0.3, 0.5, 0.8, 1.0};
  for (const auto& a : corpora) {
    for (const auto& b : corpora) {
      for (double t : thresholds) {
        EXPECT_DOUBLE_EQ(
            FuzzyJaccard(a, b, t, LevenshteinKernel::kBanded),
            FuzzyJaccard(a, b, t, LevenshteinKernel::kNaive))
            << "threshold " << t;
      }
    }
  }
}

TEST(LevenshteinWithinTest, ExactWhenWithinBound) {
  // Against the reference full-matrix distance: for every pair in the
  // corpus and every cutoff, LevenshteinWithin returns the exact
  // distance when d <= max_dist and something larger otherwise.
  const std::vector<std::string> corpus = {
      "",      "a",       "ab",         "ba",        "kitten",
      "sitting", "saturday", "sunday",   "aaaa",      "aa",
      "column_name", "columnname", "ADDRESS", "address", "abcdefgh"};
  for (const auto& a : corpus) {
    for (const auto& b : corpus) {
      const size_t d = LevenshteinDistance(a, b);
      const size_t limit = std::max(a.size(), b.size()) + 2;
      for (size_t k = 0; k <= limit; ++k) {
        const size_t got = LevenshteinWithin(a, b, k);
        if (d <= k) {
          EXPECT_EQ(got, d) << '"' << a << "\" vs \"" << b
                            << "\" max_dist " << k;
        } else {
          EXPECT_GT(got, k) << '"' << a << "\" vs \"" << b
                            << "\" max_dist " << k;
        }
      }
    }
  }
}

TEST(LevenshteinWithinTest, ZeroBudgetIsEqualityTest) {
  EXPECT_EQ(LevenshteinWithin("same", "same", 0), 0u);
  EXPECT_GT(LevenshteinWithin("same", "sane", 0), 0u);
  EXPECT_EQ(LevenshteinWithin("", "", 0), 0u);
}

TEST(LongestCommonSubstringTest, Basic) {
  EXPECT_EQ(LongestCommonSubstring("abcdef", "zcdefz"), 4u);
  EXPECT_EQ(LongestCommonSubstring("abc", "xyz"), 0u);
  EXPECT_EQ(LongestCommonSubstring("", "abc"), 0u);
  EXPECT_EQ(LongestCommonSubstring("same", "same"), 4u);
}

TEST(BestMatchAverageTest, SymmetricAndBounded) {
  std::vector<std::string> a = {"customer", "name"};
  std::vector<std::string> b = {"name", "customer"};
  double s = BestMatchAverage(a, b, &JaroWinklerSimilarity);
  EXPECT_DOUBLE_EQ(s, 1.0);
  EXPECT_DOUBLE_EQ(BestMatchAverage({}, {}, &JaroWinklerSimilarity), 1.0);
  EXPECT_DOUBLE_EQ(BestMatchAverage(a, {}, &JaroWinklerSimilarity), 0.0);
}

// Property sweep: similarity functions stay within [0, 1] and are
// symmetric over a corpus of tricky strings.
class SimilarityPropertyTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(SimilarityPropertyTest, BoundedAndSymmetric) {
  auto [sa, sb] = GetParam();
  std::string a(sa), b(sb);
  for (auto* fn : {&LevenshteinSimilarity, &JaroSimilarity,
                   &JaroWinklerSimilarity, &TrigramSimilarity}) {
    double ab = fn(a, b);
    double ba = fn(b, a);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_NEAR(ab, ba, 1e-12) << a << " vs " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TrickyStrings, SimilarityPropertyTest,
    ::testing::Values(std::make_pair("", ""), std::make_pair("a", ""),
                      std::make_pair("a", "a"), std::make_pair("ab", "ba"),
                      std::make_pair("aaaa", "aa"),
                      std::make_pair("column_name", "columnname"),
                      std::make_pair("x", "yyyyyyyyyyyyyyyy"),
                      std::make_pair("ADDRESS", "address"),
                      std::make_pair("123", "321")));

}  // namespace
}  // namespace valentine
