#include "text/string_similarity.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("sunday", "saturday"),
            LevenshteinDistance("saturday", "sunday"));
}

TEST(LevenshteinSimilarityTest, Bounds) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  double s = LevenshteinSimilarity("abcd", "abce");
  EXPECT_DOUBLE_EQ(s, 0.75);
}

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.7667, 1e-3);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jaro = JaroSimilarity("prefixed", "prefixes");
  double jw = JaroWinklerSimilarity("prefixed", "prefixes");
  EXPECT_GT(jw, jaro);
  EXPECT_LE(jw, 1.0);
}

TEST(JaroWinklerTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
}

TEST(CharNGramsTest, PaddedTrigrams) {
  auto grams = CharNGrams("ab", 3);
  // "##ab##" -> {"##a", "#ab", "ab#", "b##"}
  ASSERT_EQ(grams.size(), 4u);
  EXPECT_EQ(grams[0], "##a");
  EXPECT_EQ(grams[3], "b##");
}

TEST(CharNGramsTest, Unigrams) {
  auto grams = CharNGrams("abc", 1);
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[1], "b");
}

TEST(TrigramTest, Bounds) {
  EXPECT_DOUBLE_EQ(TrigramSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(TrigramSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(TrigramSimilarity("abc", "xyz"), 0.0);
  double s = TrigramSimilarity("night", "nacht");
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(JaccardTest, SetOverlap) {
  std::unordered_set<std::string> a = {"x", "y", "z"};
  std::unordered_set<std::string> b = {"y", "z", "w"};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, {}), 0.0);
}

TEST(ContainmentTest, Asymmetric) {
  std::unordered_set<std::string> a = {"x", "y"};
  std::unordered_set<std::string> b = {"x", "y", "z", "w"};
  EXPECT_DOUBLE_EQ(Containment(a, b), 1.0);
  EXPECT_DOUBLE_EQ(Containment(b, a), 0.5);
  EXPECT_DOUBLE_EQ(Containment({}, b), 0.0);
}

TEST(FuzzyJaccardTest, ExactMatchesOnly) {
  std::vector<std::string> a = {"apple", "pear", "plum"};
  std::vector<std::string> b = {"apple", "pear", "kiwi"};
  // threshold 0: only exact matches, jaccard = 2/4.
  EXPECT_DOUBLE_EQ(FuzzyJaccard(a, b, 0.0), 0.5);
}

TEST(FuzzyJaccardTest, FuzzyMatchesCount) {
  std::vector<std::string> a = {"apple"};
  std::vector<std::string> b = {"aple"};  // distance 1, max len 5 -> 0.2
  EXPECT_DOUBLE_EQ(FuzzyJaccard(a, b, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(FuzzyJaccard(a, b, 0.25), 1.0);
}

TEST(FuzzyJaccardTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(FuzzyJaccard({}, {}, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(FuzzyJaccard({"a"}, {}, 0.5), 0.0);
}

TEST(FuzzyJaccardTest, DuplicatesHandledAsMultiset) {
  std::vector<std::string> a = {"x", "x"};
  std::vector<std::string> b = {"x"};
  // matched = 1, union = 2 + 1 - 1 = 2.
  EXPECT_DOUBLE_EQ(FuzzyJaccard(a, b, 0.0), 0.5);
}

TEST(FuzzyJaccardTest, LengthPrefilterDoesNotChangeSemantics) {
  // "ab" vs "abcdef": length diff 4 / max 6 = 0.67 > 0.3 -> prunable,
  // and indeed real distance 4/6 = 0.67 > 0.3.
  EXPECT_DOUBLE_EQ(FuzzyJaccard({"ab"}, {"abcdef"}, 0.3), 0.0);
  // Within threshold it still matches.
  EXPECT_DOUBLE_EQ(FuzzyJaccard({"abcde"}, {"abcdef"}, 0.3), 1.0);
}

TEST(LongestCommonSubstringTest, Basic) {
  EXPECT_EQ(LongestCommonSubstring("abcdef", "zcdefz"), 4u);
  EXPECT_EQ(LongestCommonSubstring("abc", "xyz"), 0u);
  EXPECT_EQ(LongestCommonSubstring("", "abc"), 0u);
  EXPECT_EQ(LongestCommonSubstring("same", "same"), 4u);
}

TEST(BestMatchAverageTest, SymmetricAndBounded) {
  std::vector<std::string> a = {"customer", "name"};
  std::vector<std::string> b = {"name", "customer"};
  double s = BestMatchAverage(a, b, &JaroWinklerSimilarity);
  EXPECT_DOUBLE_EQ(s, 1.0);
  EXPECT_DOUBLE_EQ(BestMatchAverage({}, {}, &JaroWinklerSimilarity), 1.0);
  EXPECT_DOUBLE_EQ(BestMatchAverage(a, {}, &JaroWinklerSimilarity), 0.0);
}

// Property sweep: similarity functions stay within [0, 1] and are
// symmetric over a corpus of tricky strings.
class SimilarityPropertyTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(SimilarityPropertyTest, BoundedAndSymmetric) {
  auto [sa, sb] = GetParam();
  std::string a(sa), b(sb);
  for (auto* fn : {&LevenshteinSimilarity, &JaroSimilarity,
                   &JaroWinklerSimilarity, &TrigramSimilarity}) {
    double ab = fn(a, b);
    double ba = fn(b, a);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_NEAR(ab, ba, 1e-12) << a << " vs " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TrickyStrings, SimilarityPropertyTest,
    ::testing::Values(std::make_pair("", ""), std::make_pair("a", ""),
                      std::make_pair("a", "a"), std::make_pair("ab", "ba"),
                      std::make_pair("aaaa", "aa"),
                      std::make_pair("column_name", "columnname"),
                      std::make_pair("x", "yyyyyyyyyyyyyyyy"),
                      std::make_pair("ADDRESS", "address"),
                      std::make_pair("123", "321")));

}  // namespace
}  // namespace valentine
