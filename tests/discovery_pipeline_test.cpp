// Tests for the staged Retrieve → Enrich → Rerank discovery pipeline
// (DESIGN.md §14): per-stage and end-to-end byte-identity against an
// inline reimplementation of the pre-split monolithic engine, stage
// span/metric emission, the fallback accounting, the explain channel,
// and the pluggable Reranker seam.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "datasets/chembl.h"
#include "datasets/opendata.h"
#include "datasets/tpcdi.h"
#include "discovery/candidate_index.h"
#include "discovery/discovery.h"
#include "discovery/enrich.h"
#include "discovery/repository.h"
#include "discovery/rerank.h"
#include "fabrication/fabricator.h"
#include "matchers/coma.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace valentine {
namespace {

std::string Num(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

/// Full-fidelity serialization of a result list: any divergence in
/// ranking, score, or evidence shows up as a byte difference.
std::string Serialize(const std::vector<DiscoveryResult>& results) {
  std::string out;
  for (const DiscoveryResult& r : results) {
    out += r.table_name + "=" + Num(r.score) + "[";
    for (const Match& m : r.evidence) {
      out += m.source.ToString() + "~" + m.target.ToString() + ":" +
             Num(m.score) + ";";
    }
    out += "]\n";
  }
  return out;
}

/// The pre-split DiscoveryEngine's scoring + aggregation, reimplemented
/// inline as the golden reference: score every repository table with
/// the monolithic matcher, aggregate per mode, sort by (score desc,
/// name asc), truncate to k. The staged pipeline must reproduce these
/// bytes exactly.
std::vector<DiscoveryResult> MonolithReference(
    const ColumnMatcher& matcher, const std::vector<Table>& tables,
    const Table& query, DiscoveryMode mode, size_t k,
    size_t union_evidence_columns = 3) {
  std::vector<DiscoveryResult> results;
  for (const Table& t : tables) {
    MatchResult ranked = matcher.Match(query, t);
    DiscoveryResult r;
    r.table_name = t.name();
    if (mode == DiscoveryMode::kJoinable) {
      if (!ranked.empty()) {
        r.score = ranked[0].score;
        r.evidence = ranked.TopK(3);
      }
    } else {
      std::map<std::string, Match> best_per_column;
      for (const Match& m : ranked.matches()) {
        auto it = best_per_column.find(m.source.column);
        if (it == best_per_column.end() || m.score > it->second.score) {
          best_per_column[m.source.column] = m;
        }
      }
      std::vector<Match> bests;
      for (auto& [col, m] : best_per_column) bests.push_back(m);
      std::sort(bests.begin(), bests.end(), [](const Match& a,
                                               const Match& b) {
        return a.score > b.score;
      });
      size_t evidence_n = std::min<size_t>(union_evidence_columns,
                                           bests.size());
      if (evidence_n > 0) {
        double total = 0.0;
        for (size_t i = 0; i < evidence_n; ++i) {
          total += bests[i].score;
          r.evidence.push_back(bests[i]);
        }
        double arity = static_cast<double>(
                           std::min(query.num_columns(), t.num_columns())) /
                       static_cast<double>(
                           std::max(query.num_columns(), t.num_columns()));
        r.score = (total / static_cast<double>(evidence_n)) * arity;
      }
    }
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const DiscoveryResult& a, const DiscoveryResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.table_name < b.table_name;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

/// A scenario fixture: one fabricated partner planted among unrelated
/// tables, plus the split query.
struct ScenarioLake {
  std::vector<Table> tables;
  Table query;
};

ScenarioLake MakeScenarioLake(Scenario scenario) {
  Table prospect = MakeTpcdiProspect(120, 2026);
  FabricationOptions fab;
  fab.scenario = scenario;
  fab.seed = 7;
  DatasetPair split = FabricateDatasetPair(prospect, fab).ValueOrDie();
  ScenarioLake lake;
  lake.query = split.source;
  lake.query.set_name("query");
  Table partner = split.target;
  partner.set_name("planted_partner");
  lake.tables.push_back(std::move(partner));
  lake.tables.push_back(MakeOpenDataTable(120, 4711));
  lake.tables.push_back(MakeChemblAssays(120, 99));
  return lake;
}

const ComaMatcher& ReferenceMatcher() {
  static const ComaMatcher* matcher = [] {
    ComaOptions opt;
    opt.strategy = ComaStrategy::kInstances;
    return new ComaMatcher(opt);
  }();
  return *matcher;
}

// ---------------------------------------------------------------------------
// End-to-end byte-identity: staged pipeline == monolith golden, all
// four fabrication scenarios, both modes.

TEST(DiscoveryPipelineTest, StagedExhaustiveMatchesMonolithAllScenarios) {
  for (Scenario scenario :
       {Scenario::kUnionable, Scenario::kViewUnionable, Scenario::kJoinable,
        Scenario::kSemanticallyJoinable}) {
    ScenarioLake lake = MakeScenarioLake(scenario);
    DiscoveryOptions opt;
    opt.joinable_path = CandidatePath::kExhaustive;
    opt.unionable_path = CandidatePath::kExhaustive;
    DiscoveryEngine engine(std::move(opt));
    for (const Table& t : lake.tables) {
      ASSERT_TRUE(engine.AddTable(t).ok());
    }
    for (DiscoveryMode mode :
         {DiscoveryMode::kJoinable, DiscoveryMode::kUnionable}) {
      std::vector<DiscoveryResult> golden = MonolithReference(
          ReferenceMatcher(), lake.tables, lake.query, mode, 5);
      std::vector<DiscoveryResult> staged =
          mode == DiscoveryMode::kJoinable
              ? engine.FindJoinable(lake.query, 5)
              : engine.FindUnionable(lake.query, 5);
      EXPECT_EQ(Serialize(staged), Serialize(golden))
          << "scenario=" << ScenarioName(scenario)
          << " mode=" << DiscoveryModeName(mode);
    }
  }
}

TEST(DiscoveryPipelineTest, StagedLshSubsetOfMonolithAllScenarios) {
  // The LSH front-end prunes candidates but never alters scores: every
  // result it produces must appear in the monolith golden with
  // identical bytes, and the top result must agree exactly.
  for (Scenario scenario :
       {Scenario::kUnionable, Scenario::kViewUnionable, Scenario::kJoinable,
        Scenario::kSemanticallyJoinable}) {
    ScenarioLake lake = MakeScenarioLake(scenario);
    DiscoveryEngine engine;  // default: LSH both modes
    for (const Table& t : lake.tables) {
      ASSERT_TRUE(engine.AddTable(t).ok());
    }
    for (DiscoveryMode mode :
         {DiscoveryMode::kJoinable, DiscoveryMode::kUnionable}) {
      std::string golden = Serialize(MonolithReference(
          ReferenceMatcher(), lake.tables, lake.query, mode, 5));
      std::vector<DiscoveryResult> staged =
          mode == DiscoveryMode::kJoinable
              ? engine.FindJoinable(lake.query, 5)
              : engine.FindUnionable(lake.query, 5);
      ASSERT_FALSE(staged.empty())
          << "scenario=" << ScenarioName(scenario)
          << " mode=" << DiscoveryModeName(mode);
      std::string staged_bytes = Serialize(staged);
      std::istringstream lines(staged_bytes);
      std::string line;
      while (std::getline(lines, line)) {
        EXPECT_NE(golden.find(line + "\n"), std::string::npos)
            << "scenario=" << ScenarioName(scenario)
            << " mode=" << DiscoveryModeName(mode) << ": staged line '"
            << line << "' absent from golden:\n"
            << golden;
      }
      EXPECT_EQ(staged_bytes.substr(0, staged_bytes.find('\n')),
                golden.substr(0, golden.find('\n')))
          << "scenario=" << ScenarioName(scenario)
          << " mode=" << DiscoveryModeName(mode);
    }
  }
}

// ---------------------------------------------------------------------------
// Per-stage identity: each stage, driven directly, agrees with the
// engine's composition of them.

TEST(DiscoveryPipelineTest, StagesComposedDirectlyMatchEngine) {
  ScenarioLake lake = MakeScenarioLake(Scenario::kJoinable);

  // Drive the four layers by hand...
  RepositoryOptions repo_opt;
  repo_opt.signature_size = LshOptions().bands * LshOptions().rows_per_band;
  TableRepository repository(repo_opt);
  LshCandidateIndex::Options lsh_opt;
  LshCandidateIndex index(lsh_opt);
  for (const Table& t : lake.tables) {
    auto entry = repository.AddTable(t);
    ASSERT_TRUE(entry.ok());
    ASSERT_TRUE(index.Add(**entry).ok());
  }
  RetrievedCandidates retrieved =
      index.Retrieve(lake.query, DiscoveryMode::kJoinable, repository);
  CandidateSet candidates = Enricher().Enrich(retrieved, repository);
  ExactReranker::Options exact_opt;
  ExactReranker reranker(&ReferenceMatcher(), exact_opt);
  MatchContext ctx;
  RerankContext rctx;
  rctx.base = &ctx;
  rctx.trace_id = "test";
  Result<std::vector<DiscoveryResult>> reranked =
      reranker.Rerank(lake.query, DiscoveryMode::kJoinable, candidates, rctx);
  ASSERT_TRUE(reranked.ok());
  std::vector<DiscoveryResult> manual = std::move(reranked).ValueOrDie();
  std::sort(manual.begin(), manual.end(),
            [](const DiscoveryResult& a, const DiscoveryResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.table_name < b.table_name;
            });
  if (manual.size() > 5) manual.resize(5);

  // ...and compare against the engine running the same stages.
  DiscoveryEngine engine;
  for (const Table& t : lake.tables) {
    ASSERT_TRUE(engine.AddTable(t).ok());
  }
  EXPECT_EQ(Serialize(manual), Serialize(engine.FindJoinable(lake.query, 5)));

  // Stage invariants: enrichment preserves repository registration
  // order and loses no retrieved repository table.
  size_t last = 0;
  bool first = true;
  for (const EnrichedCandidate& c : candidates.candidates) {
    ASSERT_NE(c.entry, nullptr);
    EXPECT_EQ(retrieved.tables.count(c.entry->table.name()), 1u);
    if (!first) {
      EXPECT_GT(c.repository_index, last);
    }
    last = c.repository_index;
    first = false;
  }
  EXPECT_EQ(candidates.candidates.size(), retrieved.tables.size());
}

// ---------------------------------------------------------------------------
// Stage spans + per-stage metrics.

TEST(DiscoveryPipelineTest, EmitsStageSpansAndMetrics) {
  ScenarioLake lake = MakeScenarioLake(Scenario::kJoinable);
  Tracer tracer;
  MetricsRegistry metrics;
  DiscoveryOptions opt;
  opt.tracer = &tracer;
  opt.metrics = &metrics;
  DiscoveryEngine engine(std::move(opt));
  for (const Table& t : lake.tables) {
    ASSERT_TRUE(engine.AddTable(t).ok());
  }
  auto results = engine.FindJoinable(lake.query, 5);
  ASSERT_FALSE(results.empty());

  // Exactly one query span with the three stage spans nested under it.
  uint64_t query_span = 0;
  for (const SpanRecord& s : tracer.Snapshot()) {
    if (s.kind == "query" && s.name == "query") query_span = s.span_id;
  }
  ASSERT_NE(query_span, 0u);
  std::set<std::string> stages;
  for (const SpanRecord& s : tracer.Snapshot()) {
    if (s.kind != "stage") continue;
    EXPECT_EQ(s.parent_id, query_span) << s.name;
    stages.insert(s.name);
  }
  EXPECT_EQ(stages,
            (std::set<std::string>{"discovery.retrieve", "discovery.enrich",
                                   "discovery.rerank"}));

  // Per-stage counters joined on {mode, stage}; rerank count doubles as
  // the pre-existing candidates_scored_total.
  uint64_t retrieve =
      metrics
          .CounterFor("valentine_discovery_stage_candidates_total",
                      {{"mode", "joinable"}, {"stage", "retrieve"}})
          ->value();
  uint64_t enrich =
      metrics
          .CounterFor("valentine_discovery_stage_candidates_total",
                      {{"mode", "joinable"}, {"stage", "enrich"}})
          ->value();
  uint64_t rerank =
      metrics
          .CounterFor("valentine_discovery_stage_candidates_total",
                      {{"mode", "joinable"}, {"stage", "rerank"}})
          ->value();
  EXPECT_GT(retrieve, 0u);
  EXPECT_EQ(retrieve, enrich);
  EXPECT_EQ(enrich, rerank);
  EXPECT_EQ(rerank,
            metrics
                .CounterFor("valentine_discovery_candidates_scored_total",
                            {{"mode", "joinable"}})
                ->value());
  EXPECT_EQ(metrics
                .CounterFor("valentine_discovery_survivors_total",
                            {{"mode", "joinable"}})
                ->value(),
            results.size());
  // No degraded retrieval happened.
  EXPECT_EQ(metrics
                .CounterFor("valentine_discovery_fallback_total",
                            {{"mode", "joinable"},
                             {"reason", "empty-query-columns"}})
                ->value(),
            0u);
}

// ---------------------------------------------------------------------------
// Fallback accounting: a value-blind query degrades to exhaustive
// nomination and is COUNTED, not silently dropped.

Table MakeAllNullQuery() {
  Table q("blind_query");
  Column c("c", DataType::kString);
  for (int i = 0; i < 5; ++i) c.Append(Value::Null());
  (void)q.AddColumn(std::move(c));
  return q;
}

TEST(DiscoveryPipelineTest, ValueBlindJoinableQueryFallsBackAndCounts) {
  ScenarioLake lake = MakeScenarioLake(Scenario::kJoinable);
  MetricsRegistry metrics;
  DiscoveryOptions opt;
  opt.metrics = &metrics;
  DiscoveryEngine engine(std::move(opt));
  for (const Table& t : lake.tables) {
    ASSERT_TRUE(engine.AddTable(t).ok());
  }
  // Every query column sketches empty: the LSH index cannot see the
  // query. Pre-pipeline this silently returned zero results; now the
  // whole repository is nominated and the event is counted.
  DiscoveryExplain explain;
  Result<std::vector<DiscoveryResult>> found =
      engine.FindJoinable(MakeAllNullQuery(), 10, MatchContext(), &explain);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(explain.fallback);
  EXPECT_EQ(explain.fallback_reason, "empty-query-columns");
  EXPECT_EQ(explain.retrieved, lake.tables.size());
  EXPECT_EQ(explain.reranked, lake.tables.size());
  EXPECT_EQ(metrics
                .CounterFor("valentine_discovery_fallback_total",
                            {{"mode", "joinable"},
                             {"reason", "empty-query-columns"}})
                ->value(),
            1u);

  // A value-bearing query does not count as fallback.
  (void)engine.FindJoinable(lake.query, 5);
  EXPECT_EQ(metrics
                .CounterFor("valentine_discovery_fallback_total",
                            {{"mode", "joinable"},
                             {"reason", "empty-query-columns"}})
                ->value(),
            1u);
}

TEST(DiscoveryPipelineTest, UnionableFallbackOnlyWhenNameChannelOff) {
  ScenarioLake lake = MakeScenarioLake(Scenario::kUnionable);

  // With name-token postings on (the default), a value-blind unionable
  // query still retrieves through the name channel: no fallback.
  {
    MetricsRegistry metrics;
    DiscoveryOptions opt;
    opt.metrics = &metrics;
    DiscoveryEngine engine(std::move(opt));
    for (const Table& t : lake.tables) {
      ASSERT_TRUE(engine.AddTable(t).ok());
    }
    DiscoveryExplain explain;
    ASSERT_TRUE(engine
                    .FindUnionable(MakeAllNullQuery(), 10, MatchContext(),
                                   &explain)
                    .ok());
    EXPECT_FALSE(explain.fallback);
    EXPECT_EQ(metrics
                  .CounterFor("valentine_discovery_fallback_total",
                              {{"mode", "unionable"},
                               {"reason", "empty-query-columns"}})
                  ->value(),
              0u);
  }

  // With the name channel off the index is fully blind: fallback.
  {
    MetricsRegistry metrics;
    DiscoveryOptions opt;
    opt.metrics = &metrics;
    opt.union_name_candidates = false;
    DiscoveryEngine engine(std::move(opt));
    for (const Table& t : lake.tables) {
      ASSERT_TRUE(engine.AddTable(t).ok());
    }
    DiscoveryExplain explain;
    ASSERT_TRUE(engine
                    .FindUnionable(MakeAllNullQuery(), 10, MatchContext(),
                                   &explain)
                    .ok());
    EXPECT_TRUE(explain.fallback);
    EXPECT_EQ(explain.retrieved, lake.tables.size());
    EXPECT_EQ(metrics
                  .CounterFor("valentine_discovery_fallback_total",
                              {{"mode", "unionable"},
                               {"reason", "empty-query-columns"}})
                  ->value(),
              1u);
  }
}

// ---------------------------------------------------------------------------
// Explain channel.

TEST(DiscoveryPipelineTest, ExplainReportsServingIndexAndCounts) {
  ScenarioLake lake = MakeScenarioLake(Scenario::kJoinable);
  DiscoveryOptions opt;
  opt.unionable_path = CandidatePath::kExhaustive;
  DiscoveryEngine engine(std::move(opt));
  for (const Table& t : lake.tables) {
    ASSERT_TRUE(engine.AddTable(t).ok());
  }

  DiscoveryExplain joinable;
  Result<std::vector<DiscoveryResult>> j =
      engine.FindJoinable(lake.query, 2, MatchContext(), &joinable);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(joinable.index, "lsh");
  EXPECT_EQ(joinable.repository_tables, lake.tables.size());
  EXPECT_EQ(joinable.enriched, joinable.reranked);
  EXPECT_LE(joinable.survivors, 2u);
  EXPECT_EQ(joinable.survivors, j.ValueOrDie().size());

  DiscoveryExplain unionable;
  ASSERT_TRUE(
      engine.FindUnionable(lake.query, 2, MatchContext(), &unionable).ok());
  EXPECT_EQ(unionable.index, "exhaustive");
  EXPECT_EQ(unionable.retrieved, lake.tables.size());

  // The explain out-param never changes result bytes.
  EXPECT_EQ(Serialize(j.ValueOrDie()),
            Serialize(engine.FindJoinable(lake.query, 2)));
}

// ---------------------------------------------------------------------------
// Reranker seam: a custom scorer drops in without touching retrieval.

class NameLengthReranker : public Reranker {
 public:
  std::string Name() const override { return "name-length"; }
  Result<std::vector<DiscoveryResult>> Rerank(
      const Table& query, DiscoveryMode mode, const CandidateSet& candidates,
      const RerankContext& rctx) const override {
    (void)query;
    (void)mode;
    (void)rctx;
    std::vector<DiscoveryResult> out;
    for (const EnrichedCandidate& c : candidates.candidates) {
      DiscoveryResult r;
      r.table_name = c.entry->table.name();
      r.score = static_cast<double>(r.table_name.size());
      out.push_back(std::move(r));
    }
    ++calls_;
    return out;
  }
  mutable int calls_ = 0;
};

TEST(DiscoveryPipelineTest, CustomRerankerPlugsIntoTheSeam) {
  ScenarioLake lake = MakeScenarioLake(Scenario::kJoinable);
  auto reranker = std::make_unique<NameLengthReranker>();
  NameLengthReranker* raw = reranker.get();
  DiscoveryOptions opt;
  opt.joinable_path = CandidatePath::kExhaustive;
  opt.reranker = std::move(reranker);
  DiscoveryEngine engine(std::move(opt));
  for (const Table& t : lake.tables) {
    ASSERT_TRUE(engine.AddTable(t).ok());
  }
  auto results = engine.FindJoinable(lake.query, 10);
  EXPECT_EQ(raw->calls_, 1);
  ASSERT_EQ(results.size(), lake.tables.size());
  // Ranked by the custom score: longest table name first.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].score, results[i].score);
  }
  EXPECT_EQ(results[0].table_name, "planted_partner");  // longest name
}

}  // namespace
}  // namespace valentine
