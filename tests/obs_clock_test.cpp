#include "obs/clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace valentine {
namespace {

TEST(FakeClockTest, NonAdvancingByDefault) {
  FakeClock clock;
  EXPECT_EQ(clock.NowNanos(), 0);
  EXPECT_EQ(clock.NowNanos(), 0);
  EXPECT_EQ(clock.NowNanos(), 0);
}

TEST(FakeClockTest, StartsAtGivenOrigin) {
  FakeClock clock(1'000'000);
  EXPECT_EQ(clock.NowNanos(), 1'000'000);
  EXPECT_EQ(clock.NowNanos(), 1'000'000);
}

TEST(FakeClockTest, AdvanceMovesTimeExactly) {
  FakeClock clock;
  clock.AdvanceNanos(500);
  EXPECT_EQ(clock.NowNanos(), 500);
  clock.AdvanceMs(2.5);
  EXPECT_EQ(clock.NowNanos(), 500 + 2'500'000);
}

// The per-read step returns the *old* value then advances — N reads
// yield 0, step, 2*step, ...
TEST(FakeClockTest, PerReadStepReturnsValueBeforeAdvancing) {
  FakeClock clock(0, 10);
  EXPECT_EQ(clock.NowNanos(), 0);
  EXPECT_EQ(clock.NowNanos(), 10);
  EXPECT_EQ(clock.NowNanos(), 20);
  clock.AdvanceNanos(100);
  EXPECT_EQ(clock.NowNanos(), 130);
}

TEST(FakeClockTest, ElapsedMsConvertsNanoDeltas) {
  EXPECT_EQ(ElapsedMs(0, 1'000'000), 1.0);
  EXPECT_EQ(ElapsedMs(500'000, 500'000), 0.0);
  EXPECT_EQ(ElapsedMs(0, 250'000), 0.25);
}

TEST(FakeClockTest, ConcurrentReadsAndAdvancesStayConsistent) {
  FakeClock clock(0, 1);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&clock] {
      for (int i = 0; i < 1000; ++i) {
        (void)clock.NowNanos();
        clock.AdvanceNanos(2);
      }
    });
  }
  for (auto& w : workers) w.join();
  // 4 threads * 1000 * (1 per read + 2 per advance) = 12000 total.
  EXPECT_EQ(clock.NowNanos(), 12000);
}

TEST(ClockOrSteadyTest, FallsBackToProcessSteadyClock) {
  const Clock& steady = ClockOrSteady(nullptr);
  EXPECT_EQ(&steady, SteadyClockTimingSource());
  // The real clock is monotonic non-decreasing.
  int64_t a = steady.NowNanos();
  int64_t b = steady.NowNanos();
  EXPECT_LE(a, b);
}

TEST(ClockOrSteadyTest, UsesInjectedClockWhenPresent) {
  FakeClock fake(42);
  const Clock& clock = ClockOrSteady(&fake);
  EXPECT_EQ(&clock, &fake);
  EXPECT_EQ(clock.NowNanos(), 42);
}

}  // namespace
}  // namespace valentine
