// CSV round-trip property tests: randomly generated tables (including
// adversarial cell contents) must survive write -> read unchanged.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "io/csv.h"

namespace valentine {
namespace {

/// Generates a random table mixing clean and adversarial content.
Table RandomTable(uint64_t seed) {
  Rng rng(seed);
  const size_t cols = 1 + rng.Index(6);
  const size_t rows = 1 + rng.Index(40);
  static const std::vector<std::string> kNasty = {
      "plain",           "with,comma",   "with\"quote",
      "line\nbreak",     "\"quoted\"",   "trailing space ",
      " leading",        "semi;colon",   "tab\tchar",
      "comma,and\"both", "", /* empty -> null on reread */
  };
  Table t("random");
  for (size_t c = 0; c < cols; ++c) {
    Column col("col_" + std::to_string(c), DataType::kString);
    for (size_t r = 0; r < rows; ++r) {
      switch (rng.Index(4)) {
        case 0:
          col.Append(Value::Int(rng.UniformInt(-1000000, 1000000)));
          break;
        case 1:
          col.Append(Value::Float(
              std::round(rng.UniformDouble(-100, 100) * 256.0) / 256.0));
          break;
        case 2:
          col.Append(Value::Null());
          break;
        default:
          col.Append(Value::String(rng.Pick(kNasty)));
      }
    }
    EXPECT_TRUE(t.AddColumn(std::move(col)).ok());
  }
  return t;
}

class CsvRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripTest, ValuesSurviveRoundTrip) {
  Table original = RandomTable(GetParam());
  auto reread = ReadCsvString(WriteCsvString(original), "random");
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ASSERT_EQ(reread->num_columns(), original.num_columns());
  ASSERT_EQ(reread->num_rows(), original.num_rows());
  for (size_t c = 0; c < original.num_columns(); ++c) {
    EXPECT_EQ(reread->column(c).name(), original.column(c).name());
    for (size_t r = 0; r < original.num_rows(); ++r) {
      const Value& before = original.column(c)[r];
      const Value& after = (*reread).column(c)[r];
      // Empty strings become nulls on reread (CSV cannot distinguish);
      // everything else must round-trip to the same rendered value.
      if (before.kind() == DataType::kString &&
          before.string_value().empty()) {
        EXPECT_TRUE(after.is_null()) << "col " << c << " row " << r;
      } else {
        EXPECT_EQ(after.AsString(), before.AsString())
            << "col " << c << " row " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(CsvRoundTripTest, DoubleRoundTripIsStable) {
  // write(read(write(t))) == write(read(t)) — the canonical form is a
  // fixed point.
  Table original = RandomTable(99);
  std::string once = WriteCsvString(original);
  auto t1 = ReadCsvString(once, "t");
  ASSERT_TRUE(t1.ok());
  std::string twice = WriteCsvString(*t1);
  auto t2 = ReadCsvString(twice, "t");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(WriteCsvString(*t2), twice);
}

}  // namespace
}  // namespace valentine
