#include "core/status.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllErrorCodesDistinct) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, CodeNameRoundTripsEveryCode) {
  const StatusCode all[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kOutOfRange,
      StatusCode::kIOError,
      StatusCode::kParseError,
      StatusCode::kInternal,
      StatusCode::kDeadlineExceeded,
      StatusCode::kCancelled,
      StatusCode::kResourceExhausted,
  };
  for (StatusCode code : all) {
    const char* name = StatusCodeName(code);
    ASSERT_NE(name, nullptr);
    auto parsed = StatusCodeFromName(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, code) << name;
  }
  EXPECT_FALSE(StatusCodeFromName("NoSuchCode").has_value());
  EXPECT_FALSE(StatusCodeFromName("").has_value());
}

TEST(StatusTest, ToStringUsesMachineReadableName) {
  EXPECT_EQ(Status::DeadlineExceeded("budget gone").ToString(),
            "DeadlineExceeded: budget gone");
  EXPECT_EQ(Status::Cancelled("stop").ToString(), "Cancelled: stop");
  EXPECT_EQ(Status::ResourceExhausted("oom").ToString(),
            "ResourceExhausted: oom");
}

TEST(StatusTest, WithCodeFactory) {
  Status s = Status::WithCode(StatusCode::kIOError, "disk");
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk");
  // kOk drops the message and yields a plain OK status.
  Status ok = Status::WithCode(StatusCode::kOk, "ignored");
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(ok.message().empty());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, ArrowAccess) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

namespace {
Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}
Status Chained(int x) {
  VALENTINE_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}
}  // namespace

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace valentine
