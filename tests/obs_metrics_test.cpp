#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "json_mini.h"
#include "obs/export.h"

namespace valentine {
namespace {

TEST(CounterTest, IncrementAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(5);
  EXPECT_EQ(c.value(), 6u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(HistogramTest, ObservationsLandInTheRightBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (le is inclusive)
  h.Observe(5.0);    // <= 10
  h.Observe(50.0);   // <= 100
  h.Observe(500.0);  // +Inf
  std::vector<uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 50.0 + 500.0);
}

TEST(HistogramTest, MergeAddsObservations) {
  Histogram a({1.0, 10.0});
  Histogram b({1.0, 10.0});
  a.Observe(0.5);
  b.Observe(5.0);
  b.Observe(20.0);
  a.MergeFrom(b);
  std::vector<uint64_t> buckets = a.bucket_counts();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 25.5);
}

TEST(MetricsRegistryTest, SeriesHandlesAreStableAndShared) {
  MetricsRegistry registry;
  Counter* c1 = registry.CounterFor("requests", {{"family", "JL"}});
  Counter* c2 = registry.CounterFor("requests", {{"family", "JL"}});
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1, c2);  // same series, same handle
  // Label insertion order must not matter: labels sort on registration.
  Counter* c3 =
      registry.CounterFor("multi", {{"b", "2"}, {"a", "1"}});
  Counter* c4 =
      registry.CounterFor("multi", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(c3, c4);
  c1->Increment(3);
  EXPECT_EQ(registry.CounterValue("requests", {{"family", "JL"}}), 3u);
  EXPECT_EQ(registry.CounterValue("requests", {{"family", "other"}}), 0u);
  EXPECT_EQ(registry.CounterValue("absent"), 0u);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.CounterFor("x"), nullptr);
  EXPECT_EQ(registry.GaugeFor("x"), nullptr);
  EXPECT_EQ(registry.HistogramFor("x"), nullptr);
  ASSERT_NE(registry.GaugeFor("y"), nullptr);
  EXPECT_EQ(registry.CounterFor("y"), nullptr);
}

TEST(MetricsRegistryTest, CounterSamplesAreSorted) {
  MetricsRegistry registry;
  registry.CounterFor("zeta")->Increment(1);
  registry.CounterFor("alpha", {{"k", "2"}})->Increment(2);
  registry.CounterFor("alpha", {{"k", "1"}})->Increment(3);
  registry.GaugeFor("gauge")->Set(9);  // not a counter: excluded

  std::vector<MetricsRegistry::CounterSample> samples =
      registry.CounterSamples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[0].labels[0].second, "1");
  EXPECT_EQ(samples[0].value, 3u);
  EXPECT_EQ(samples[1].name, "alpha");
  EXPECT_EQ(samples[1].labels[0].second, "2");
  EXPECT_EQ(samples[2].name, "zeta");
}

TEST(MetricsRegistryTest, MergeAddsCountersOverwritesGauges) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.CounterFor("c")->Increment(2);
  b.CounterFor("c")->Increment(5);
  b.CounterFor("only_b", {{"l", "v"}})->Increment(1);
  a.GaugeFor("g")->Set(1.0);
  b.GaugeFor("g")->Set(7.5);
  a.HistogramFor("h", {}, {1.0, 10.0})->Observe(0.5);
  b.HistogramFor("h", {}, {1.0, 10.0})->Observe(5.0);
  b.SetHelp("c", "a counter");

  a.MergeFrom(b);
  EXPECT_EQ(a.CounterValue("c"), 7u);
  EXPECT_EQ(a.CounterValue("only_b", {{"l", "v"}}), 1u);
  EXPECT_EQ(a.GaugeFor("g")->value(), 7.5);
  EXPECT_EQ(a.HistogramFor("h", {}, {1.0, 10.0})->count(), 2u);
  EXPECT_NE(a.RenderPrometheusText().find("# HELP c a counter"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.

TEST(PrometheusTextTest, GoldenRendering) {
  MetricsRegistry registry;
  registry.SetHelp("valentine_requests_total", "Requests processed.");
  registry.CounterFor("valentine_requests_total", {{"family", "JL"}})
      ->Increment(4);
  registry.CounterFor("valentine_requests_total", {{"family", "COMA"}})
      ->Increment(2);
  registry.GaugeFor("valentine_temperature")->Set(0.5);
  registry.HistogramFor("valentine_latency_ms", {}, {1.0, 10.0})->Observe(0.5);
  registry.HistogramFor("valentine_latency_ms", {}, {1.0, 10.0})->Observe(20.0);

  EXPECT_EQ(registry.RenderPrometheusText(),
            "# TYPE valentine_latency_ms histogram\n"
            "valentine_latency_ms_bucket{le=\"1\"} 1\n"
            "valentine_latency_ms_bucket{le=\"10\"} 1\n"
            "valentine_latency_ms_bucket{le=\"+Inf\"} 2\n"
            "valentine_latency_ms_sum 20.5\n"
            "valentine_latency_ms_count 2\n"
            "# HELP valentine_requests_total Requests processed.\n"
            "# TYPE valentine_requests_total counter\n"
            "valentine_requests_total{family=\"COMA\"} 2\n"
            "valentine_requests_total{family=\"JL\"} 4\n"
            "# TYPE valentine_temperature gauge\n"
            "valentine_temperature 0.5\n");
}

TEST(PrometheusTextTest, OutputIndependentOfRegistrationOrder) {
  MetricsRegistry forward;
  forward.CounterFor("a", {{"x", "1"}})->Increment(1);
  forward.CounterFor("b")->Increment(2);
  forward.CounterFor("a", {{"x", "2"}})->Increment(3);

  MetricsRegistry reverse;
  reverse.CounterFor("a", {{"x", "2"}})->Increment(3);
  reverse.CounterFor("b")->Increment(2);
  reverse.CounterFor("a", {{"x", "1"}})->Increment(1);

  EXPECT_EQ(forward.RenderPrometheusText(), reverse.RenderPrometheusText());
}

TEST(PrometheusTextTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.CounterFor("c", {{"k", "quote\" slash\\ nl\n"}})->Increment(1);
  std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("c{k=\"quote\\\" slash\\\\ nl\\n\"} 1"),
            std::string::npos)
      << text;
}

TEST(PrometheusTextTest, HostileValuesGolden) {
  // Every user-controlled string in one exposition: help text with
  // backslash + embedded newline, label values with quote, backslash,
  // and newline. The golden output stays a well-formed two-line-per-
  // series exposition — nothing splits a line.
  MetricsRegistry registry;
  registry.SetHelp("c", "path C:\\tmp\nsecond line");
  registry.CounterFor("c", {{"k", "a\"b\\c\nd"}})->Increment(1);
  EXPECT_EQ(registry.RenderPrometheusText(),
            "# HELP c path C:\\\\tmp\\nsecond line\n"
            "# TYPE c counter\n"
            "c{k=\"a\\\"b\\\\c\\nd\"} 1\n");
}

TEST(PrometheusTextTest, HelpTextKeepsQuotesRaw) {
  // The exposition format escapes only backslash and newline on HELP
  // lines; double quotes pass through untouched (unlike label values).
  MetricsRegistry registry;
  registry.SetHelp("g", "the \"effective\" rate");
  registry.GaugeFor("g")->Set(1.0);
  std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("# HELP g the \"effective\" rate\n"),
            std::string::npos)
      << text;
}

TEST(PrometheusTextTest, DoublesRenderShortestRoundTrip) {
  // Bucket bounds and gauges render the way they were written: 0.1 is
  // le="0.1" (not the %.17g spelling 0.10000000000000001), integral
  // values stay plain ("10", never "1e+01").
  MetricsRegistry registry;
  registry.HistogramFor("lat", {}, {0.1, 10.0})->Observe(0.05);
  registry.GaugeFor("g")->Set(0.1);
  std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("lat_bucket{le=\"0.1\"} 1"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_bucket{le=\"10\"} 1"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_sum 0.05\n"), std::string::npos) << text;
  EXPECT_NE(text.find("g 0.1\n"), std::string::npos) << text;
}

TEST(PrometheusTextTest, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* h = registry.HistogramFor("lat", {{"family", "JL"}}, {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(0.7);
  h->Observe(5.0);
  std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("lat_bucket{family=\"JL\",le=\"1\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_bucket{family=\"JL\",le=\"10\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{family=\"JL\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lat_count{family=\"JL\"} 3"), std::string::npos);
}

TEST(MetricsJsonTest, CountersRoundTripThroughTheMiniParser) {
  MetricsRegistry registry;
  registry.CounterFor("valentine_experiments_total", {{"family", "JL"}})
      ->Increment(12);
  registry.CounterFor("plain")->Increment(1);
  std::string json = ToMetricsJson(registry);
  json_mini::ValuePtr doc = json_mini::Parse(json);
  ASSERT_NE(doc, nullptr) << json;
  ASSERT_TRUE(doc->is_object());
}

// On the tsan label list: concurrent updates against shared handles and
// lazy series creation must be race-free.
TEST(MetricsRegistryConcurrencyTest, ParallelIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      for (int i = 0; i < kIters; ++i) {
        registry.CounterFor("shared")->Increment();
        registry.HistogramFor("hist", {}, {1.0, 10.0})
            ->Observe(i % 20 == 0 ? 5.0 : 0.5);
        registry.GaugeFor("gauge")->Set(static_cast<double>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(registry.CounterValue("shared"),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.HistogramFor("hist", {}, {1.0, 10.0})->count(),
            static_cast<uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace valentine
