// Byte-identity contract of the two-stage matcher pipeline (matcher.h):
// for every family and every grid configuration, Prepare(src) +
// Prepare(tgt) + Score must produce the same serialized MatchResult as
// the monolithic Match — and Score must degrade gracefully (identical
// bytes, by re-preparing inline) when handed foreign or stale artifacts.
// Also covers the ArtifactCache: build-once semantics, value keying,
// failure propagation, stats counters, and concurrent GetOrPrepare
// (tsan-labeled).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datasets/tpcdi.h"
#include "fabrication/fabricator.h"
#include "harness/json_export.h"
#include "harness/param_grid.h"
#include "matchers/artifact_cache.h"
#include "matchers/ensemble.h"
#include "matchers/jaccard_levenshtein.h"
#include "matchers/matcher.h"
#include "matchers/similarity_flooding.h"

namespace valentine {
namespace {

Ontology TestOntology() {
  Ontology o;
  size_t root = o.AddClass("root", {"entity"});
  o.AddSubclass(root, "person", {"person", "customer", "prospect"});
  o.AddSubclass(root, "address", {"address", "city", "country"});
  return o;
}

/// One fabricated pair shared by every test: realistic column overlap
/// plus schema noise, so instance- and schema-based families both have
/// signal to disagree on if the pipeline were subtly wrong.
const DatasetPair& SharedPair() {
  static const DatasetPair kPair = [] {
    Table original = MakeTpcdiProspect(40, 123);
    FabricationOptions fab;
    fab.scenario = Scenario::kViewUnionable;
    fab.column_overlap = 0.5;
    fab.noisy_schema = true;
    fab.seed = 7;
    return FabricateDatasetPair(original, fab).ValueOrDie();
  }();
  return kPair;
}

MethodFamily Truncate(MethodFamily family, size_t n) {
  if (family.grid.size() > n) family.grid.resize(n);
  return family;
}

std::vector<MethodFamily> AllTestFamilies() {
  static const Ontology kOntology = TestOntology();
  std::vector<MethodFamily> families;
  families.push_back(Truncate(CupidFamily(), 3));
  families.push_back(SimilarityFloodingFamily());
  families.push_back(ComaFamily());
  families.push_back(Truncate(DistributionFamily1(), 3));
  families.push_back(Truncate(SemPropFamily(&kOntology), 3));
  families.push_back(EmbdiFamily());
  families.push_back(Truncate(JaccardLevenshteinFamily(), 3));
  MethodFamily ensemble{"Ensemble", {}};
  ensemble.grid.push_back({"default", MakeDefaultEnsemble()});
  families.push_back(std::move(ensemble));
  return families;
}

class PrepareScoreFamilyTest : public ::testing::TestWithParam<size_t> {};

// Prepare + Score == Match, bit for bit, for every configuration.
TEST_P(PrepareScoreFamilyTest, PipelineMatchesMonolithicBytes) {
  const MethodFamily family = AllTestFamilies()[GetParam()];
  const DatasetPair& pair = SharedPair();
  for (const ConfiguredMatcher& cm : family.grid) {
    const ColumnMatcher& m = *cm.matcher;
    const std::string expected = ToJson(m.Match(pair.source, pair.target));

    MatchContext context;
    Result<PreparedTablePtr> ps = m.Prepare(pair.source, nullptr, context);
    Result<PreparedTablePtr> pt = m.Prepare(pair.target, nullptr, context);
    ASSERT_TRUE(ps.ok()) << family.name << " " << cm.description;
    ASSERT_TRUE(pt.ok()) << family.name << " " << cm.description;
    Result<MatchResult> scored = m.Score(**ps, **pt, context);
    ASSERT_TRUE(scored.ok()) << family.name << " " << cm.description;
    EXPECT_EQ(ToJson(*scored), expected)
        << family.name << " " << cm.description
        << " diverged on the prepared fast path";

    // Artifacts are reusable: scoring again must not consume state.
    Result<MatchResult> again = m.Score(**ps, **pt, context);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(ToJson(*again), expected)
        << family.name << " " << cm.description
        << " diverged on artifact reuse";
  }
}

// A foreign artifact (wrong dynamic type / wrong prepare key) must cost
// time, never bytes: Score re-prepares inline and matches Match.
TEST_P(PrepareScoreFamilyTest, ForeignArtifactFallsBackToIdenticalBytes) {
  const MethodFamily family = AllTestFamilies()[GetParam()];
  const DatasetPair& pair = SharedPair();
  const ColumnMatcher& m = *family.grid[0].matcher;
  const std::string expected = ToJson(m.Match(pair.source, pair.target));

  // Base-class artifacts: right tables, wrong dynamic type.
  auto foreign_src = std::make_shared<const PreparedTable>(
      &pair.source, "Foreign", "not-a-real-key");
  auto foreign_tgt = std::make_shared<const PreparedTable>(
      &pair.target, "Foreign", "not-a-real-key");
  MatchContext context;
  Result<MatchResult> scored = m.Score(*foreign_src, *foreign_tgt, context);
  ASSERT_TRUE(scored.ok()) << family.name;
  EXPECT_EQ(ToJson(*scored), expected)
      << family.name << " changed bytes on a foreign artifact";

  // Mixed: one genuine artifact, one foreign — still a clean fallback.
  Result<PreparedTablePtr> genuine = m.Prepare(pair.source, nullptr, context);
  ASSERT_TRUE(genuine.ok());
  Result<MatchResult> mixed = m.Score(**genuine, *foreign_tgt, context);
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(ToJson(*mixed), expected)
      << family.name << " changed bytes on a mixed artifact pair";
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, PrepareScoreFamilyTest,
    ::testing::Range<size_t>(0, 8),
    [](const ::testing::TestParamInfo<size_t>& info) {
      std::string name = AllTestFamilies()[info.param].name;
      // Family names can carry non-identifier characters ("Dist#1").
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// --- ArtifactCache unit coverage. ---

TEST(ArtifactCacheTest, BuildOnceThenServe) {
  Table table = MakeTpcdiProspect(25, 5);
  JaccardLevenshteinMatcher matcher;
  ArtifactCache cache;
  MatchContext context;

  PreparedTablePtr first =
      cache.GetOrPrepare(matcher, table, nullptr, context);
  ASSERT_NE(first, nullptr);
  PreparedTablePtr second =
      cache.GetOrPrepare(matcher, table, nullptr, context);
  EXPECT_EQ(first.get(), second.get()) << "second lookup rebuilt";
  EXPECT_EQ(cache.size(), 1u);

  auto stats = cache.StatsSnapshot();
  ASSERT_EQ(stats.count(matcher.Name()), 1u);
  EXPECT_EQ(stats[matcher.Name()].hits, 1u);
  EXPECT_EQ(stats[matcher.Name()].misses, 1u);
  EXPECT_EQ(stats[matcher.Name()].builds, 1u);
}

TEST(ArtifactCacheTest, ValueKeyingServesTableCopies) {
  // Same content at a different address must hit (value keys, not the
  // pointer keys ProfileCache uses).
  Table original = MakeTpcdiProspect(25, 5);
  Table copy = original;
  JaccardLevenshteinMatcher matcher;
  ArtifactCache cache;
  MatchContext context;

  PreparedTablePtr a = cache.GetOrPrepare(matcher, original, nullptr, context);
  PreparedTablePtr b = cache.GetOrPrepare(matcher, copy, nullptr, context);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u);

  // Same content, different name: distinct entry.
  Table renamed = original;
  renamed.set_name("renamed");
  PreparedTablePtr c = cache.GetOrPrepare(matcher, renamed, nullptr, context);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(c.get(), a.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ArtifactCacheTest, PrepareKeyAndFamilySeparateEntries) {
  Table table = MakeTpcdiProspect(25, 5);
  JaccardLevenshteinOptions small;
  small.max_distinct_values = 10;
  JaccardLevenshteinOptions large;
  large.max_distinct_values = 500;
  JaccardLevenshteinMatcher jl_small(small);
  JaccardLevenshteinMatcher jl_large(large);
  ArtifactCache cache;
  MatchContext context;

  PreparedTablePtr a = cache.GetOrPrepare(jl_small, table, nullptr, context);
  PreparedTablePtr b = cache.GetOrPrepare(jl_large, table, nullptr, context);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get()) << "different prepare keys shared an entry";
  EXPECT_EQ(cache.size(), 2u);

  // Same table, another family: a third entry under its own stats row.
  SimilarityFloodingMatcher sf;
  PreparedTablePtr c = cache.GetOrPrepare(sf, table, nullptr, context);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(cache.size(), 3u);
  auto stats = cache.StatsSnapshot();
  EXPECT_EQ(stats.count("JaccardLevenshtein"), 1u);
  EXPECT_EQ(stats.count("SimilarityFlooding"), 1u);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.StatsSnapshot().empty());
}

/// Matcher whose Prepare always fails: exercises the nullptr contract.
class FailingPrepareMatcher : public ColumnMatcher {
 public:
  std::string Name() const override { return "FailingPrepare"; }
  MatcherCategory Category() const override {
    return MatcherCategory::kSchemaBased;
  }
  std::vector<MatchType> Capabilities() const override { return {}; }
  [[nodiscard]] Result<PreparedTablePtr> Prepare(
      const Table&, const TableProfile*, const MatchContext&) const override {
    return Status::Internal("prepare always fails");
  }
  [[nodiscard]] Result<MatchResult> MatchWithContext(
      const Table&, const Table&, const MatchContext&) const override {
    return MatchResult();
  }
};

TEST(ArtifactCacheTest, FailedPrepareReturnsNullAndIsNotCached) {
  Table table = MakeTpcdiProspect(25, 5);
  FailingPrepareMatcher matcher;
  ArtifactCache cache;
  MatchContext context;

  EXPECT_EQ(cache.GetOrPrepare(matcher, table, nullptr, context), nullptr);
  EXPECT_EQ(cache.GetOrPrepare(matcher, table, nullptr, context), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  auto stats = cache.StatsSnapshot();
  EXPECT_EQ(stats["FailingPrepare"].misses, 2u);
  EXPECT_EQ(stats["FailingPrepare"].builds, 2u);
  EXPECT_EQ(stats["FailingPrepare"].hits, 0u);
}

// Concurrent GetOrPrepare over shared keys: every caller lands on one
// artifact per key and scoring from it matches the sequential bytes.
// Runs under TSan via the tsan ctest label.
TEST(ArtifactCacheTest, ConcurrentGetOrPrepareIsSafeAndDeterministic) {
  const DatasetPair& pair = SharedPair();
  JaccardLevenshteinMatcher matcher;
  const std::string expected = ToJson(matcher.Match(pair.source, pair.target));

  ArtifactCache cache;
  constexpr size_t kThreads = 8;
  std::vector<std::string> jsons(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      MatchContext context;
      PreparedTablePtr ps =
          cache.GetOrPrepare(matcher, pair.source, nullptr, context);
      PreparedTablePtr pt =
          cache.GetOrPrepare(matcher, pair.target, nullptr, context);
      if (ps == nullptr || pt == nullptr) return;  // leaves jsons[t] empty
      Result<MatchResult> scored = matcher.Score(*ps, *pt, context);
      if (scored.ok()) jsons[t] = ToJson(*scored);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cache.size(), 2u);
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(jsons[t], expected) << "thread " << t;
  }
}

}  // namespace
}  // namespace valentine
