// ColumnProfile's contract (column_profile.h): every cached artifact is
// bit-compatible with what a matcher's inline extraction would compute,
// so serving a profile can never change a score. These tests pin that
// equivalence artifact by artifact, plus the serving predicates the
// matchers gate on and the cache's build-once identity semantics.

#include "stats/column_profile.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "text/string_similarity.h"
#include "text/tokenizer.h"

namespace valentine {
namespace {

Column MakeMixedColumn(const std::string& name, size_t rows) {
  Column c(name, DataType::kString);
  for (size_t i = 0; i < rows; ++i) {
    if (i % 7 == 3) {
      c.Append(Value::Null());
    } else if (i % 3 == 0) {
      c.Append(Value::Int(static_cast<int64_t>(i % 11)));
    } else {
      c.Append(Value::String("val_" + std::to_string(i % 13)));
    }
  }
  return c;
}

Table MakeTestTable() {
  Table t("profiled");
  EXPECT_TRUE(t.AddColumn(MakeMixedColumn("customer_id", 40)).ok());
  EXPECT_TRUE(t.AddColumn(MakeMixedColumn("postalCode", 40)).ok());
  return t;
}

TEST(ColumnProfileTest, ArtifactsMatchInlineExtraction) {
  Column col = MakeMixedColumn("customer_id", 40);
  ProfileSpec spec;  // defaults: distinct_cap 0, set_cap 1000, ...
  ColumnProfile p = ColumnProfile::Build(col, spec);

  // Distinct list: exactly Column::DistinctStrings(), first-seen order.
  std::vector<std::string> inline_distinct = col.DistinctStrings();
  EXPECT_EQ(p.distinct(), inline_distinct);
  EXPECT_EQ(p.full_distinct_count(), inline_distinct.size());

  // Set: first set_cap distinct values (all of them here).
  EXPECT_EQ(p.distinct_set(),
            std::unordered_set<std::string>(inline_distinct.begin(),
                                            inline_distinct.end()));

  // Histogram: built over the same points with the same resolution.
  QuantileHistogram inline_hist =
      QuantileHistogram::Build(ValuesToPoints(inline_distinct), spec.num_bins);
  EXPECT_EQ(p.histogram().centers(), inline_hist.centers());
  EXPECT_EQ(p.histogram().masses(), inline_hist.masses());

  // MinHash: the same permutations over the same set.
  MinHashSignature inline_sig =
      MinHashSignature::Build(p.distinct_set(), spec.minhash_hashes);
  EXPECT_EQ(p.minhash().mins(), inline_sig.mins());

  // Descriptive stats and name tokens.
  TextProfile tp = ComputeTextProfile(col);
  EXPECT_EQ(p.text_profile().count, tp.count);
  EXPECT_DOUBLE_EQ(p.text_profile().mean_length, tp.mean_length);
  EXPECT_DOUBLE_EQ(p.text_profile().digit_fraction, tp.digit_fraction);
  NumericStats ns = ComputeNumericStats(col.NumericValues());
  EXPECT_EQ(p.numeric_stats().count, ns.count);
  EXPECT_DOUBLE_EQ(p.numeric_stats().mean, ns.mean);
  EXPECT_DOUBLE_EQ(p.numeric_stats().median, ns.median);
  EXPECT_DOUBLE_EQ(p.numeric_fraction(), col.NumericFraction());
  EXPECT_EQ(p.name_tokens(), TokenizeIdentifier(col.name()));
}

TEST(ColumnProfileTest, CappedArtifactsUsePrefixes) {
  Column col = MakeMixedColumn("c", 40);
  std::vector<std::string> all = col.DistinctStrings();
  ASSERT_GT(all.size(), 6u);

  ProfileSpec spec;
  spec.set_cap = 5;
  spec.histogram_cap = 6;
  ColumnProfile p = ColumnProfile::Build(col, spec);

  // The set is the first-5 prefix — the same values a matcher capping at
  // 5 would produce with DistinctStrings() + resize(5).
  std::vector<std::string> prefix5(all.begin(), all.begin() + 5);
  EXPECT_EQ(p.distinct_set(),
            std::unordered_set<std::string>(prefix5.begin(), prefix5.end()));

  std::vector<std::string> prefix6(all.begin(), all.begin() + 6);
  QuantileHistogram capped =
      QuantileHistogram::Build(ValuesToPoints(prefix6), spec.num_bins);
  EXPECT_EQ(p.histogram().centers(), capped.centers());
  EXPECT_EQ(p.histogram().masses(), capped.masses());
}

TEST(ColumnProfileTest, DistinctCapTruncatesStorageNotCount) {
  Column col = MakeMixedColumn("c", 40);
  std::vector<std::string> all = col.DistinctStrings();
  ProfileSpec spec;
  spec.distinct_cap = 4;
  ColumnProfile p = ColumnProfile::Build(col, spec);
  ASSERT_EQ(p.distinct().size(), 4u);
  EXPECT_EQ(p.full_distinct_count(), all.size());
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(p.distinct()[i], all[i]);
}

TEST(ColumnProfileTest, ServingPredicates) {
  Column col = MakeMixedColumn("c", 40);
  const size_t full = col.DistinctStrings().size();
  ASSERT_GT(full, 6u);

  ProfileSpec keep_all;  // distinct_cap 0
  ColumnProfile p = ColumnProfile::Build(col, keep_all);
  // A complete list serves any prefix cap, including "unlimited".
  EXPECT_TRUE(p.CanServeDistinctPrefix(0));
  EXPECT_TRUE(p.CanServeDistinctPrefix(3));
  EXPECT_TRUE(p.CanServeDistinctPrefix(full + 100));
  EXPECT_EQ(p.DistinctPrefixLength(0), full);
  EXPECT_EQ(p.DistinctPrefixLength(3), 3u);
  EXPECT_EQ(p.DistinctPrefixLength(full + 100), full);

  // Caps are equivalent when they select the same effective prefix:
  // any cap >= full collapses to "all", including 0.
  EXPECT_TRUE(p.CapsEquivalent(0, full + 5));
  EXPECT_TRUE(p.CapsEquivalent(full, 0));
  EXPECT_TRUE(p.CapsEquivalent(3, 3));
  EXPECT_FALSE(p.CapsEquivalent(3, 4));
  EXPECT_FALSE(p.CapsEquivalent(3, 0));

  ProfileSpec truncated;
  truncated.distinct_cap = 4;
  ColumnProfile q = ColumnProfile::Build(col, truncated);
  // A truncated list can only serve caps within what it stored.
  EXPECT_TRUE(q.CanServeDistinctPrefix(4));
  EXPECT_TRUE(q.CanServeDistinctPrefix(2));
  EXPECT_FALSE(q.CanServeDistinctPrefix(5));
  EXPECT_FALSE(q.CanServeDistinctPrefix(0));
}

TEST(ColumnProfileTest, ValueNGramsAreOptIn) {
  Column col = MakeMixedColumn("c", 40);
  ProfileSpec off;
  EXPECT_TRUE(ColumnProfile::Build(col, off).value_ngrams().empty());

  ProfileSpec on;
  on.build_value_ngrams = true;
  ColumnProfile p = ColumnProfile::Build(col, on);
  std::unordered_set<std::string> expected;
  for (const auto& v : col.DistinctStrings()) {
    for (const auto& g : CharNGrams(v, on.ngram_n)) expected.insert(g);
  }
  EXPECT_EQ(p.value_ngrams(), expected);
}

TEST(TableProfileTest, ProfilesEveryColumnAndChecksShape) {
  Table t = MakeTestTable();
  TableProfile tp = TableProfile::Build(t);
  ASSERT_EQ(tp.num_columns(), t.num_columns());
  EXPECT_TRUE(tp.Matches(t));
  EXPECT_EQ(tp.column(0).name_tokens(),
            TokenizeIdentifier(t.column(0).name()));
  EXPECT_EQ(tp.column(1).name_tokens(),
            TokenizeIdentifier(t.column(1).name()));

  Table other("other");
  EXPECT_TRUE(other.AddColumn(MakeMixedColumn("only", 5)).ok());
  EXPECT_FALSE(tp.Matches(other));
}

TEST(ProfileCacheTest, GetOrBuildReturnsSameInstance) {
  Table a = MakeTestTable();
  Table b = MakeTestTable();
  ProfileCache cache;
  auto pa1 = cache.GetOrBuild(a);
  auto pa2 = cache.GetOrBuild(a);
  auto pb = cache.GetOrBuild(b);
  EXPECT_EQ(pa1.get(), pa2.get());  // cached, not rebuilt
  EXPECT_NE(pa1.get(), pb.get());   // keyed by table identity
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(pa1->Matches(a));
}

TEST(ProfileCacheTest, SpecIsAppliedToBuilds) {
  Table t = MakeTestTable();
  ProfileSpec spec;
  spec.minhash_hashes = 16;
  ProfileCache cache(spec);
  auto tp = cache.GetOrBuild(t);
  EXPECT_EQ(tp->spec().minhash_hashes, 16u);
  EXPECT_EQ(tp->column(0).minhash().size(), 16u);
}

}  // namespace
}  // namespace valentine
