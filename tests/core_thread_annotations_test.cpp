// Compile-test for core/thread_annotations.h: a class exercising every
// macro in the header, written so that it is *annotation-correct* — it
// must compile warning-free both where the macros are no-ops (GCC,
// MSVC) and where they drive the real capability analysis (the
// clang-thread-safety preset, -Wthread-safety -Werror=thread-safety).
// The runtime assertions are secondary; the build succeeding on both
// toolchains is the test. The mirror-image negative fixture
// (tests/thread_safety_violation_fixture.cpp) proves the Clang build
// would have *rejected* the discipline violations.
#include "core/thread_annotations.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/mutex.h"

namespace valentine {
namespace {

class AnnotatedBox {
 public:
  AnnotatedBox() : boxed_(std::make_unique<int>(0)) {}

  // The common public-method shape: acquires internally, so callers
  // must not already hold the mutex.
  void Set(int v) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    value_ = v;
  }

  int Get() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return value_;
  }

  // Private-helper shape: caller holds the lock already.
  void SetLocked(int v) REQUIRES(mu_) { value_ = v; }
  int GetLocked() const REQUIRES_SHARED(mu_) { return value_; }

  // Manual bracketing, for callers that need the lock across several
  // calls; ACQUIRE/RELEASE keep the analysis aware of the hand-off.
  void Acquire() ACQUIRE(mu_) { mu_.Lock(); }
  void Release() RELEASE(mu_) { mu_.Unlock(); }
  bool TryAcquire() TRY_ACQUIRE(true, mu_) { return mu_.TryLock(); }

  // The guarded pointee: the unique_ptr itself is unguarded, the int it
  // owns is not.
  void SetBoxed(int v) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    *boxed_ = v;
  }

  Mutex* mutex() RETURN_CAPABILITY(mu_) { return &mu_; }

  // Escape hatch, with the mandatory justification: single-threaded
  // test-only accessor that deliberately skips the lock.
  int UnsafeGet() const NO_THREAD_SAFETY_ANALYSIS { return value_; }

 private:
  mutable Mutex mu_{LockRank::kUnranked, "AnnotatedBox"};
  int value_ GUARDED_BY(mu_) = 0;
  std::unique_ptr<int> boxed_ PT_GUARDED_BY(mu_);
};

TEST(ThreadAnnotationsTest, AnnotatedClassBehaves) {
  AnnotatedBox box;
  box.Set(7);
  EXPECT_EQ(box.Get(), 7);
  box.SetBoxed(9);
  EXPECT_EQ(box.UnsafeGet(), 7);
}

TEST(ThreadAnnotationsTest, ManualBracketingSatisfiesTheAnalysis) {
  AnnotatedBox box;
  box.Acquire();
  box.SetLocked(3);
  EXPECT_EQ(box.GetLocked(), 3);
  box.Release();
  EXPECT_EQ(box.Get(), 3);
}

TEST(ThreadAnnotationsTest, TryAcquireGuardsTheSuccessPath) {
  AnnotatedBox box;
  if (box.TryAcquire()) {
    box.SetLocked(5);
    box.Release();
  }
  EXPECT_EQ(box.Get(), 5);
}

TEST(ThreadAnnotationsTest, ReturnedCapabilityIsLockable) {
  AnnotatedBox box;
  {
    MutexLock lock(box.mutex());
  }
  EXPECT_EQ(box.Get(), 0);
}

TEST(ThreadAnnotationsTest, MacrosExpandCleanlyOnThisToolchain) {
  // If this TU compiled, every macro above expanded to something this
  // compiler accepts — the actual assertion of this test. Record which
  // mode we are in so test logs show what was exercised.
#if defined(__clang__)
  RecordProperty("thread_safety_analysis", "clang-capability-attributes");
#else
  RecordProperty("thread_safety_analysis", "no-op-expansion");
#endif
  SUCCEED();
}

}  // namespace
}  // namespace valentine
