#include "harness/feedback.h"

#include <gtest/gtest.h>

#include "datasets/tpcdi.h"
#include "matchers/coma.h"
#include "metrics/metrics.h"

namespace valentine {
namespace {

MatchResult MakeRanking() {
  MatchResult r;
  r.Add({"s", "a"}, {"t", "x"}, 0.9);
  r.Add({"s", "b"}, {"t", "y"}, 0.8);
  r.Add({"s", "a"}, {"t", "y"}, 0.7);
  r.Add({"s", "c"}, {"t", "z"}, 0.6);
  r.Sort();
  return r;
}

TEST(FeedbackSessionTest, ConfirmPinsToTop) {
  FeedbackSession session;
  session.Confirm("c", "z");
  MatchResult out = session.Apply(MakeRanking());
  EXPECT_EQ(out[0].source.column, "c");
  EXPECT_DOUBLE_EQ(out[0].score, 1.0);
}

TEST(FeedbackSessionTest, RejectRemoves) {
  FeedbackSession session;
  session.Reject("a", "x");
  MatchResult out = session.Apply(MakeRanking());
  for (const Match& m : out.matches()) {
    EXPECT_FALSE(m.source.column == "a" && m.target.column == "x");
  }
  EXPECT_EQ(out.size(), 3u);
}

TEST(FeedbackSessionTest, ExclusiveConfirmationConsumesEndpoints) {
  FeedbackSession session;
  session.Confirm("a", "x");
  MatchResult out = session.Apply(MakeRanking(), /*exclusive=*/true);
  // (a, y) competes with the confirmed (a, x) and must disappear.
  for (const Match& m : out.matches()) {
    if (m.source.column == "a") {
      EXPECT_EQ(m.target.column, "x");
    }
  }
  EXPECT_EQ(out.size(), 3u);  // (a,x) + (b,y) + (c,z)
}

TEST(FeedbackSessionTest, NonExclusiveKeepsCompetitors) {
  FeedbackSession session;
  session.Confirm("a", "x");
  MatchResult out = session.Apply(MakeRanking(), /*exclusive=*/false);
  EXPECT_EQ(out.size(), 4u);
}

TEST(FeedbackSessionTest, ConfirmOverridesEarlierReject) {
  FeedbackSession session;
  session.Reject("a", "x");
  session.Confirm("a", "x");
  EXPECT_TRUE(session.IsConfirmed("a", "x"));
  EXPECT_FALSE(session.IsRejected("a", "x"));
  EXPECT_EQ(session.num_rejected(), 0u);
}

TEST(FeedbackSessionTest, ConfirmedPairAbsentFromRankingStillAppears) {
  FeedbackSession session;
  session.Confirm("ghost", "phantom");
  MatchResult out = session.Apply(MakeRanking());
  EXPECT_EQ(out[0].source.column, "ghost");
}

TEST(SimulateReviewTest, LabelsTopUnlabeledPairs) {
  std::vector<GroundTruthEntry> gt = {{"a", "x"}, {"b", "y"}};
  FeedbackSession session;
  size_t labeled = SimulateReviewRound(MakeRanking(), gt, 2, &session);
  EXPECT_EQ(labeled, 2u);
  EXPECT_TRUE(session.IsConfirmed("a", "x"));
  EXPECT_TRUE(session.IsConfirmed("b", "y"));
  // A second round skips already-labeled pairs.
  labeled = SimulateReviewRound(MakeRanking(), gt, 2, &session);
  EXPECT_EQ(labeled, 2u);
  EXPECT_TRUE(session.IsRejected("a", "y"));
  EXPECT_TRUE(session.IsRejected("c", "z"));
}

TEST(SimulateReviewTest, FeedbackMonotonicallyImprovesRecall) {
  // End-to-end oracle loop on a fabricated noisy pair: each review
  // round must not decrease Recall@|GT| (the §IX human-in-the-loop
  // workflow).
  Table original = MakeTpcdiProspect(80, 61);
  FabricationOptions fab;
  fab.scenario = Scenario::kUnionable;
  fab.noisy_schema = true;
  fab.seed = 19;
  DatasetPair pair = FabricateDatasetPair(original, fab).ValueOrDie();

  ComaOptions copt;
  copt.selection = ComaSelection::kAll;
  ComaMatcher matcher(copt);
  MatchResult base = matcher.Match(pair.source, pair.target);

  FeedbackSession session;
  double prev = RecallAtGroundTruth(base, pair.ground_truth);
  for (int round = 0; round < 5; ++round) {
    MatchResult current = session.Apply(base);
    SimulateReviewRound(current, pair.ground_truth, 5, &session);
    double recall =
        RecallAtGroundTruth(session.Apply(base), pair.ground_truth);
    EXPECT_GE(recall, prev - 1e-9) << "round " << round;
    prev = recall;
  }
  EXPECT_GT(prev, RecallAtGroundTruth(base, pair.ground_truth));
}

}  // namespace
}  // namespace valentine
