#include "obs/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "json_mini.h"
#include "obs/clock.h"
#include "obs/export.h"

namespace valentine {
namespace {

TEST(DeriveSpanIdTest, DeterministicAndNeverZero) {
  EXPECT_EQ(DeriveSpanId("t", 0), DeriveSpanId("t", 0));
  EXPECT_EQ(DeriveSpanId("campaign", 17), DeriveSpanId("campaign", 17));
  EXPECT_NE(DeriveSpanId("t", 0), DeriveSpanId("t", 1));
  EXPECT_NE(DeriveSpanId("t", 0), DeriveSpanId("u", 0));
  for (uint64_t seq = 0; seq < 64; ++seq) {
    EXPECT_NE(DeriveSpanId("", seq), 0u) << seq;
    EXPECT_NE(DeriveSpanId("campaign", seq), 0u) << seq;
  }
}

// The separator byte keeps (trace_id, seq) unambiguous: a trace id that
// ends in a digit-like byte must not collide with a neighboring seq.
TEST(DeriveSpanIdTest, TraceIdBytesAndSeqAreNotConcatenated) {
  EXPECT_NE(DeriveSpanId("ab", 1), DeriveSpanId("a", 1));
  EXPECT_NE(DeriveSpanId(std::string("a\x01", 2), 0), DeriveSpanId("a", 1));
}

TEST(TracerTest, SpanIdsFollowPerTraceSequence) {
  FakeClock clock;
  Tracer tracer(&clock);
  uint64_t a0 = tracer.StartSpan("a", "k", "first");
  uint64_t b0 = tracer.StartSpan("b", "k", "other-trace");
  uint64_t a1 = tracer.StartSpan("a", "k", "second", a0);
  EXPECT_EQ(a0, DeriveSpanId("a", 0));
  EXPECT_EQ(a1, DeriveSpanId("a", 1));
  EXPECT_EQ(b0, DeriveSpanId("b", 0));  // per-trace counters independent
  tracer.EndSpan(a1);
  tracer.EndSpan(b0);
  tracer.EndSpan(a0);

  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Snapshot is sorted by (trace_id, seq) regardless of end order.
  EXPECT_EQ(spans[0].span_id, a0);
  EXPECT_EQ(spans[1].span_id, a1);
  EXPECT_EQ(spans[2].span_id, b0);
  EXPECT_EQ(spans[1].parent_id, a0);
  EXPECT_EQ(spans[0].parent_id, 0u);
}

TEST(TracerTest, AttributesStickOnlyWhileOpen) {
  FakeClock clock;
  Tracer tracer(&clock);
  uint64_t id = tracer.StartSpan("t", "k", "n");
  tracer.AddSpanAttribute(id, "alive", "yes");
  tracer.EndSpan(id);
  tracer.AddSpanAttribute(id, "dead", "ignored");
  tracer.AddSpanAttribute(0, "zero", "ignored");

  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attributes.size(), 1u);
  EXPECT_EQ(spans[0].attributes[0].first, "alive");
  EXPECT_EQ(spans[0].attributes[0].second, "yes");
}

TEST(TracerTest, TimestampsComeFromInjectedClock) {
  FakeClock clock(1000);
  Tracer tracer(&clock);
  uint64_t id = tracer.StartSpan("t", "k", "n");
  clock.AdvanceNanos(5000);
  tracer.EndSpan(id);
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].start_ns, 1000);
  EXPECT_EQ(spans[0].end_ns, 6000);
}

TEST(TracerTest, RecordEventIsAClosedZeroDurationSpan) {
  FakeClock clock(7);
  Tracer tracer(&clock);
  uint64_t parent = tracer.StartSpan("t", "experiment", "e");
  uint64_t event =
      tracer.RecordEvent("t", "backoff", "backoff", parent,
                         {{"delay_ms", "12.5"}});
  EXPECT_NE(event, 0u);
  tracer.EndSpan(parent);
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& ev = spans[1];
  EXPECT_EQ(ev.span_id, event);
  EXPECT_EQ(ev.parent_id, parent);
  EXPECT_EQ(ev.kind, "backoff");
  EXPECT_EQ(ev.start_ns, ev.end_ns);
  ASSERT_EQ(ev.attributes.size(), 1u);
  EXPECT_EQ(ev.attributes[0].second, "12.5");
}

TEST(SpanScopeTest, InertWhenTracerIsNull) {
  SpanScope scope(nullptr, "t", "k", "n");
  EXPECT_EQ(scope.id(), 0u);
  scope.Attr("ignored", "x");
  scope.End();  // must not crash
  SpanScope defaulted;
  EXPECT_EQ(defaulted.id(), 0u);
}

TEST(SpanScopeTest, EndsOnDestructionAndEndIsIdempotent) {
  FakeClock clock;
  Tracer tracer(&clock);
  {
    SpanScope scope(&tracer, "t", "k", "raii");
    EXPECT_NE(scope.id(), 0u);
    scope.Attr("key", "value");
  }
  EXPECT_EQ(tracer.size(), 1u);
  SpanScope manual(&tracer, "t", "k", "manual");
  uint64_t id = manual.id();
  manual.End();
  EXPECT_EQ(manual.id(), 0u);
  manual.End();  // second End is a no-op
  tracer.AddSpanAttribute(id, "late", "dropped");
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(spans[1].attributes.empty());
}

TEST(SpanScopeTest, MoveTransfersOwnership) {
  FakeClock clock;
  Tracer tracer(&clock);
  SpanScope a(&tracer, "t", "k", "moved-from");
  uint64_t id = a.id();
  SpanScope b = std::move(a);
  EXPECT_EQ(a.id(), 0u);
  EXPECT_EQ(b.id(), id);
  SpanScope c(&tracer, "t", "k", "assigned-over");
  c = std::move(b);  // ends c's original span first
  EXPECT_EQ(c.id(), id);
  c.End();
  EXPECT_EQ(tracer.size(), 2u);
}

// ---------------------------------------------------------------------------
// Export formats.

std::vector<SpanRecord> SampleSpans() {
  FakeClock clock(0, 1000);  // 1µs per read: distinct, deterministic stamps
  Tracer tracer(&clock);
  uint64_t root = tracer.StartSpan("campaign", "campaign", "campaign");
  uint64_t fam = tracer.StartSpan("campaign", "family", "JL", root);
  uint64_t exp = tracer.StartSpan("JL\x1fpair\x1fq=2", "experiment",
                                  "JL\x1fpair\x1fq=2", fam);
  tracer.AddSpanAttribute(exp, "code", "Ok");
  tracer.RecordEvent("JL\x1fpair\x1fq=2", "backoff", "backoff", exp,
                     {{"delay_ms", "3.5"}});
  tracer.EndSpan(exp);
  tracer.EndSpan(fam);
  tracer.EndSpan(root);
  return tracer.Snapshot();
}

TEST(ChromeTraceExportTest, EmitsValidSchemaWithVirtualTids) {
  std::vector<SpanRecord> spans = SampleSpans();
  std::string json = ToChromeTraceJson(spans);

  json_mini::ValuePtr doc = json_mini::Parse(json);
  ASSERT_NE(doc, nullptr) << json;
  ASSERT_TRUE(doc->is_object());
  json_mini::ValuePtr events = doc->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), spans.size());

  std::set<double> tids;
  for (const json_mini::ValuePtr& ev : events->array) {
    ASSERT_TRUE(ev->is_object());
    // Complete events: name/cat/ph/ts/dur/pid/tid all present.
    ASSERT_NE(ev->Get("name"), nullptr);
    ASSERT_NE(ev->Get("cat"), nullptr);
    ASSERT_NE(ev->Get("ph"), nullptr);
    EXPECT_EQ(ev->Get("ph")->string, "X");
    ASSERT_NE(ev->Get("ts"), nullptr);
    EXPECT_TRUE(ev->Get("ts")->is_number());
    ASSERT_NE(ev->Get("dur"), nullptr);
    ASSERT_NE(ev->Get("pid"), nullptr);
    EXPECT_EQ(ev->Get("pid")->number, 1.0);
    ASSERT_NE(ev->Get("tid"), nullptr);
    tids.insert(ev->Get("tid")->number);
    // Correlation ids ride in args.
    json_mini::ValuePtr args = ev->Get("args");
    ASSERT_NE(args, nullptr);
    ASSERT_TRUE(args->is_object());
    EXPECT_NE(args->Get("trace_id"), nullptr);
    EXPECT_NE(args->Get("span_id"), nullptr);
  }
  // Two distinct trace ids -> two deterministic virtual tids, 1-based.
  EXPECT_EQ(tids.size(), 2u);
  EXPECT_EQ(*tids.begin(), 1.0);
  EXPECT_EQ(*tids.rbegin(), 2.0);
}

TEST(ChromeTraceExportTest, EscapesControlBytesInStrings) {
  std::vector<SpanRecord> spans = SampleSpans();
  std::string json = ToChromeTraceJson(spans);
  // The journal-key separator 0x1f must never reach the output raw.
  EXPECT_EQ(json.find('\x1f'), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);
}

TEST(TraceJsonlExportTest, OneValidObjectPerSpanInSortedOrder) {
  std::vector<SpanRecord> spans = SampleSpans();
  std::string jsonl = ToTraceJsonl(spans);

  std::vector<std::string> lines;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "missing trailing newline";
    lines.push_back(jsonl.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), spans.size());

  std::string prev_key;
  for (size_t i = 0; i < lines.size(); ++i) {
    json_mini::ValuePtr obj = json_mini::Parse(lines[i]);
    ASSERT_NE(obj, nullptr) << lines[i];
    ASSERT_TRUE(obj->is_object());
    for (const char* field : {"trace_id", "span_id", "parent_id", "kind",
                              "name", "seq", "start_ns", "end_ns",
                              "attributes"}) {
      EXPECT_NE(obj->Get(field), nullptr) << field << " on line " << i;
    }
    EXPECT_EQ(obj->Get("trace_id")->string, spans[i].trace_id);
    EXPECT_EQ(obj->Get("kind")->string, spans[i].kind);
    std::string key = obj->Get("trace_id")->string;
    EXPECT_GE(key, prev_key) << "lines not sorted by trace_id";
    prev_key = key;
  }
}

TEST(TraceExportTest, ByteIdenticalAcrossRebuilds) {
  std::string chrome1 = ToChromeTraceJson(SampleSpans());
  std::string chrome2 = ToChromeTraceJson(SampleSpans());
  EXPECT_EQ(chrome1, chrome2);
  EXPECT_EQ(ToTraceJsonl(SampleSpans()), ToTraceJsonl(SampleSpans()));
}

}  // namespace
}  // namespace valentine
