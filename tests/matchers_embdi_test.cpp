#include "matchers/embdi.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "metrics/metrics.h"

namespace valentine {
namespace {

EmbdiOptions FastOptions() {
  EmbdiOptions o;
  o.max_rows = 60;
  o.walks_per_node = 2;
  o.sentence_length = 15;
  o.dimensions = 24;
  o.epochs = 3;
  o.seed = 77;
  return o;
}

Table MakeOverlappingTable(const std::string& name,
                           const std::vector<std::string>& col_names,
                           uint64_t seed) {
  // Columns draw from per-concept pools so value nodes bridge tables.
  Rng rng(seed);
  Table t(name);
  for (size_t c = 0; c < col_names.size(); ++c) {
    Column col(col_names[c], DataType::kString);
    for (int r = 0; r < 60; ++r) {
      col.Append(Value::String("pool" + std::to_string(c) + "_" +
                               std::to_string(rng.Index(12))));
    }
    EXPECT_TRUE(t.AddColumn(std::move(col)).ok());
  }
  return t;
}

TEST(EmbdiTest, ProducesFullRanking) {
  Table src = MakeOverlappingTable("s", {"a", "b"}, 1);
  Table tgt = MakeOverlappingTable("t", {"x", "y"}, 2);
  MatchResult r = EmbdiMatcher(FastOptions()).Match(src, tgt);
  EXPECT_EQ(r.size(), 4u);
}

TEST(EmbdiTest, SharedValuesPullColumnsTogether) {
  // src.a and tgt.x share pool0, src.b and tgt.y share pool1: the
  // correct pairing should get a higher total score than the crossing.
  Table src = MakeOverlappingTable("s", {"a", "b"}, 3);
  Table tgt = MakeOverlappingTable("t", {"x", "y"}, 4);
  MatchResult r = EmbdiMatcher(FastOptions()).Match(src, tgt);
  double correct = 0.0;
  double crossed = 0.0;
  for (const Match& m : r.matches()) {
    bool is_correct = (m.source.column == "a" && m.target.column == "x") ||
                      (m.source.column == "b" && m.target.column == "y");
    (is_correct ? correct : crossed) += m.score;
  }
  EXPECT_GT(correct, crossed);
}

TEST(EmbdiTest, DeterministicUnderSeed) {
  Table src = MakeOverlappingTable("s", {"a", "b"}, 5);
  Table tgt = MakeOverlappingTable("t", {"x", "y"}, 6);
  EmbdiMatcher m1(FastOptions());
  EmbdiMatcher m2(FastOptions());
  MatchResult r1 = m1.Match(src, tgt);
  MatchResult r2 = m2.Match(src, tgt);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1[i].score, r2[i].score);
  }
}

TEST(EmbdiTest, SeedChangesEmbeddings) {
  // The paper attributes EmbDI's inconsistency to training randomness;
  // different seeds must be able to produce different scores.
  Table src = MakeOverlappingTable("s", {"a", "b"}, 7);
  Table tgt = MakeOverlappingTable("t", {"x", "y"}, 8);
  EmbdiOptions o1 = FastOptions();
  EmbdiOptions o2 = FastOptions();
  o2.seed = o1.seed + 1;
  MatchResult r1 = EmbdiMatcher(o1).Match(src, tgt);
  MatchResult r2 = EmbdiMatcher(o2).Match(src, tgt);
  bool any_diff = false;
  for (size_t i = 0; i < r1.size(); ++i) {
    if (r1[i].score != r2[i].score) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(EmbdiTest, HandlesNullCells) {
  Table src("s");
  Column a("a", DataType::kString);
  for (int i = 0; i < 20; ++i) {
    a.Append(i % 3 == 0 ? Value::Null() : Value::String("v" +
                                                        std::to_string(i % 5)));
  }
  ASSERT_TRUE(src.AddColumn(std::move(a)).ok());
  Table tgt = src;
  tgt.set_name("t");
  MatchResult r = EmbdiMatcher(FastOptions()).Match(src, tgt);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_GT(r[0].score, 0.0);
}

TEST(EmbdiTest, RowCapRespected) {
  EmbdiOptions o = FastOptions();
  o.max_rows = 5;  // tiny graph still works
  Table src = MakeOverlappingTable("s", {"a"}, 9);
  Table tgt = MakeOverlappingTable("t", {"x"}, 10);
  MatchResult r = EmbdiMatcher(o).Match(src, tgt);
  EXPECT_EQ(r.size(), 1u);
}

TEST(EmbdiTest, MetadataDeclared) {
  EmbdiMatcher m;
  EXPECT_EQ(m.Name(), "EmbDI");
  EXPECT_EQ(m.Category(), MatcherCategory::kHybrid);
  ASSERT_EQ(m.Capabilities().size(), 1u);
  EXPECT_EQ(m.Capabilities()[0], MatchType::kEmbeddings);
}

}  // namespace
}  // namespace valentine
