#include "matchers/cupid.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

Table MakeTable(const std::string& name,
                std::vector<std::pair<std::string, DataType>> cols) {
  Table t(name);
  for (auto& [col_name, type] : cols) {
    Column c(col_name, type);
    c.Append(Value::String("v"));
    EXPECT_TRUE(t.AddColumn(std::move(c)).ok());
  }
  return t;
}

TEST(CupidTest, IdenticalNamesScoreHighest) {
  Table src = MakeTable("a", {{"income", DataType::kInt64},
                              {"city", DataType::kString}});
  Table tgt = MakeTable("b", {{"income", DataType::kInt64},
                              {"city", DataType::kString}});
  CupidMatcher m;
  MatchResult r = m.Match(src, tgt);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_TRUE((r[0].source.column == "income" &&
               r[0].target.column == "income") ||
              (r[0].source.column == "city" && r[0].target.column == "city"));
  EXPECT_GT(r[0].score, 0.9);
}

TEST(CupidTest, SynonymsOutrankUnrelated) {
  Table src = MakeTable("a", {{"income", DataType::kInt64},
                              {"country", DataType::kString}});
  Table tgt = MakeTable("b", {{"salary", DataType::kInt64},
                              {"genre", DataType::kString}});
  CupidMatcher m;
  MatchResult r = m.Match(src, tgt);
  EXPECT_EQ(r[0].source.column, "income");
  EXPECT_EQ(r[0].target.column, "salary");
}

TEST(CupidTest, AbbreviationExpansionWorks) {
  double sim = CupidMatcher().LinguisticSimilarity("dob", "birthdate");
  EXPECT_GT(sim, 0.9);
}

TEST(CupidTest, LinguisticSimilarityCached) {
  CupidMatcher m;
  double s1 = m.LinguisticSimilarity("customer_name", "client_name");
  double s2 = m.LinguisticSimilarity("customer_name", "client_name");
  EXPECT_DOUBLE_EQ(s1, s2);
  EXPECT_GT(s1, 0.8);  // customer/client synonyms, name/name equal
}

TEST(CupidTest, LinguisticSimilarityAsymmetricKeyCacheSafe) {
  CupidMatcher m;
  double ab = m.LinguisticSimilarity("alpha_beta", "beta");
  double ba = m.LinguisticSimilarity("beta", "alpha_beta");
  EXPECT_DOUBLE_EQ(ab, ba);  // the measure itself is symmetric
}

TEST(CupidTest, TypeCompatibility) {
  EXPECT_DOUBLE_EQ(CupidMatcher::TypeCompatibility(DataType::kInt64,
                                                   DataType::kInt64),
                   1.0);
  EXPECT_DOUBLE_EQ(CupidMatcher::TypeCompatibility(DataType::kInt64,
                                                   DataType::kFloat64),
                   0.8);
  EXPECT_DOUBLE_EQ(CupidMatcher::TypeCompatibility(DataType::kInt64,
                                                   DataType::kString),
                   0.4);
}

TEST(CupidTest, StructuralWeightChangesScores) {
  Table src = MakeTable("a", {{"count", DataType::kInt64}});
  Table tgt = MakeTable("b", {{"total", DataType::kInt64}});
  CupidOptions low;
  low.leaf_w_struct = 0.0;
  CupidOptions high;
  high.leaf_w_struct = 0.6;
  double score_low = CupidMatcher(low).Match(src, tgt)[0].score;
  double score_high = CupidMatcher(high).Match(src, tgt)[0].score;
  // With identical types, more structural weight raises the score of a
  // linguistically weak pair.
  EXPECT_GT(score_high, score_low);
}

TEST(CupidTest, EmptyNamesHandled) {
  EXPECT_DOUBLE_EQ(CupidMatcher().LinguisticSimilarity("", "x"), 0.0);
  EXPECT_DOUBLE_EQ(CupidMatcher().LinguisticSimilarity("", ""), 0.0);
}

TEST(CupidTest, RanksAllPairs) {
  Table src = MakeTable("a", {{"x", DataType::kInt64},
                              {"y", DataType::kString},
                              {"z", DataType::kFloat64}});
  Table tgt = MakeTable("b", {{"p", DataType::kInt64},
                              {"q", DataType::kString}});
  MatchResult r = CupidMatcher().Match(src, tgt);
  EXPECT_EQ(r.size(), 6u);
}

TEST(CupidTest, MetadataDeclared) {
  CupidMatcher m;
  EXPECT_EQ(m.Name(), "Cupid");
  EXPECT_EQ(m.Category(), MatcherCategory::kSchemaBased);
}

// Parameter sweep: scores stay in [0, 1] over the Table II grid.
class CupidGridTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(CupidGridTest, ScoresBounded) {
  auto [leaf_w, w, th] = GetParam();
  CupidOptions opt;
  opt.leaf_w_struct = leaf_w;
  opt.w_struct = w;
  opt.th_accept = th;
  Table src = MakeTable("a", {{"income", DataType::kInt64},
                              {"cty", DataType::kString}});
  Table tgt = MakeTable("b", {{"salary", DataType::kFloat64},
                              {"city", DataType::kString}});
  MatchResult r = CupidMatcher(opt).Match(src, tgt);
  for (const Match& m : r.matches()) {
    EXPECT_GE(m.score, 0.0);
    EXPECT_LE(m.score, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableIIGrid, CupidGridTest,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.4, 0.6),
                       ::testing::Values(0.0, 0.2, 0.4, 0.6),
                       ::testing::Values(0.3, 0.5, 0.8)));

}  // namespace
}  // namespace valentine
