// Negative compile-fixture for the Clang thread-safety analysis.
//
// This file deliberately reproduces the bug class the annotations exist
// to catch — the PR 1 COMA/SemProp shape: a cache/export object whose
// members are written under the mutex on the hot path but *read without
// it* on a stats/export path that "only reads, so it looked safe".
// Under `clang++ -Wthread-safety -Werror=thread-safety` every access
// marked BAD below is a hard error; the ctest registration
// (thread_safety_negative_fixture, WILL_FAIL) asserts the compile
// fails, so the safety net itself is regression-tested.
//
// NOT named *_test.cpp on purpose: it must never be globbed into the
// real test binaries — it would be a data race if it linked.
#include <cstddef>
#include <map>
#include <string>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace valentine {

class LeakyExportCache {
 public:
  void Record(const std::string& name, double score) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    scores_[name] = score;
    ++writes_;
  }

  // BAD: reads guarded members with no lock held — the exact "export
  // path reads concurrently with matcher writes" race.
  size_t ExportSize() const { return scores_.size(); }

  // BAD: takes the lock, releases it via the guard, then keeps using
  // the guarded member outside the critical section.
  double First() const {
    double first = 0.0;
    {
      MutexLock lock(&mu_);
      if (!scores_.empty()) first = scores_.begin()->second;
    }
    return first + static_cast<double>(writes_);
  }

  // BAD: claims EXCLUDES(mu_) then re-enters through a helper that
  // REQUIRES it, without acquiring — caller-side analysis error.
  void Reset() EXCLUDES(mu_) { ClearLocked(); }

 private:
  void ClearLocked() REQUIRES(mu_) {
    scores_.clear();
    writes_ = 0;
  }

  mutable Mutex mu_{LockRank::kProfileCache, "LeakyExportCache"};
  std::map<std::string, double> scores_ GUARDED_BY(mu_);
  size_t writes_ GUARDED_BY(mu_) = 0;
};

// Keep the class odr-used so no "unused" warning families fire on
// toolchains where the thread-safety errors do not (GCC).
void TouchLeakyExportCache() {
  LeakyExportCache cache;
  cache.Record("a", 1.0);
  (void)cache.ExportSize();
  (void)cache.First();
  cache.Reset();
}

}  // namespace valentine
