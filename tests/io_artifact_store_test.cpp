// Tests for the persistent discovery artifact store: canonical
// byte-stable serialization, versioned on-disk round-trips, corrupt-file
// rejection, cold-restart ranking identity, and concurrent load-vs-query
// safety (the tsan-labelled half).

#include "io/artifact_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "datasets/tpcdi.h"
#include "discovery/discovery.h"
#include "matchers/artifact_cache.h"

namespace valentine {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/valentine_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Table SmallTable(const std::string& name, int salt) {
  Table t(name);
  Column id("record_id", DataType::kString);
  Column city("city_name", DataType::kString);
  for (int i = 0; i < 40; ++i) {
    id.Append(Value::String("id_" + std::to_string(salt * 1000 + i)));
    city.Append(Value::String("city_" + std::to_string(salt * 7 + i % 9)));
  }
  EXPECT_TRUE(t.AddColumn(std::move(id)).ok());
  EXPECT_TRUE(t.AddColumn(std::move(city)).ok());
  return t;
}

TEST(ArtifactCodecTest, RoundTripIsByteIdentical) {
  Table t = MakeTpcdiProspect(120, 77);
  TableDiscoveryArtifact artifact =
      BuildDiscoveryArtifact(t, /*signature_size=*/128,
                             /*with_profiles=*/true);
  std::string bytes = SerializeDiscoveryArtifact(artifact);

  Result<TableDiscoveryArtifact> parsed = ParseDiscoveryArtifact(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();

  // The canonical-serialization contract: serialize(parse(bytes)) is
  // byte-identical to the original, including every profile artifact.
  EXPECT_EQ(SerializeDiscoveryArtifact(*parsed), bytes);
  EXPECT_EQ(parsed->fingerprint, TableContentFingerprint(t));
  EXPECT_EQ(parsed->table_name, t.name());
  ASSERT_EQ(parsed->columns.size(), t.num_columns());
  EXPECT_EQ(parsed->columns[0].name, t.column(0).name());
  EXPECT_TRUE(parsed->has_profiles);
  ASSERT_EQ(parsed->profiles.size(), t.num_columns());
}

TEST(ArtifactCodecTest, SerializationIsDeterministicAcrossBuilds) {
  Table t = SmallTable("det", 3);
  std::string a = SerializeDiscoveryArtifact(
      BuildDiscoveryArtifact(t, 128, /*with_profiles=*/true));
  std::string b = SerializeDiscoveryArtifact(
      BuildDiscoveryArtifact(t, 128, /*with_profiles=*/true));
  EXPECT_EQ(a, b);
}

TEST(ArtifactCodecTest, LoadedProfileServesLikeFreshBuild) {
  Table t = MakeTpcdiProspect(100, 5);
  TableDiscoveryArtifact artifact = BuildDiscoveryArtifact(t, 128, true);
  Result<TableDiscoveryArtifact> parsed =
      ParseDiscoveryArtifact(SerializeDiscoveryArtifact(artifact));
  ASSERT_TRUE(parsed.ok());
  std::shared_ptr<const TableProfile> loaded =
      TableProfileFromArtifact(*parsed);
  ASSERT_NE(loaded, nullptr);
  TableProfile fresh = TableProfile::Build(t, ProfileSpec{});
  ASSERT_EQ(loaded->num_columns(), fresh.num_columns());
  for (size_t i = 0; i < fresh.num_columns(); ++i) {
    const ColumnProfile& l = loaded->column(i);
    const ColumnProfile& f = fresh.column(i);
    EXPECT_EQ(l.distinct(), f.distinct());
    EXPECT_EQ(l.full_distinct_count(), f.full_distinct_count());
    EXPECT_EQ(l.distinct_set(), f.distinct_set());
    EXPECT_EQ(l.minhash().mins(), f.minhash().mins());
    EXPECT_EQ(l.minhash().empty_set(), f.minhash().empty_set());
    EXPECT_EQ(l.histogram().centers(), f.histogram().centers());
    EXPECT_EQ(l.histogram().masses(), f.histogram().masses());
    EXPECT_EQ(l.name_tokens(), f.name_tokens());
    EXPECT_DOUBLE_EQ(l.numeric_fraction(), f.numeric_fraction());
  }
}

TEST(ArtifactCodecTest, RejectsCorruptBytes) {
  Table t = SmallTable("corrupt", 1);
  std::string bytes =
      SerializeDiscoveryArtifact(BuildDiscoveryArtifact(t, 128, true));

  // Truncation at any of several depths must yield ParseError.
  for (size_t cut : {size_t{0}, size_t{3}, size_t{7}, size_t{20},
                     bytes.size() / 2, bytes.size() - 1}) {
    Result<TableDiscoveryArtifact> r =
        ParseDiscoveryArtifact(bytes.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kParseError) << "cut=" << cut;
  }
  // Foreign magic.
  std::string foreign = bytes;
  foreign[0] = 'X';
  EXPECT_EQ(ParseDiscoveryArtifact(foreign).status().code(),
            StatusCode::kParseError);
  // Future version.
  std::string future = bytes;
  future[4] = '\x7f';
  EXPECT_EQ(ParseDiscoveryArtifact(future).status().code(),
            StatusCode::kParseError);
  // Trailing garbage.
  EXPECT_EQ(ParseDiscoveryArtifact(bytes + "x").status().code(),
            StatusCode::kParseError);
}

TEST(ArtifactStoreTest, PutGetRemoveRoundTrip) {
  ArtifactStore store(FreshDir("roundtrip"));
  Table t = SmallTable("rt", 2);
  auto artifact = std::make_shared<const TableDiscoveryArtifact>(
      BuildDiscoveryArtifact(t, 128, true));
  const uint64_t fp = artifact->fingerprint;

  EXPECT_FALSE(store.Contains(fp));
  EXPECT_EQ(store.Get(fp).status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(store.Put(artifact).ok());
  EXPECT_TRUE(store.Contains(fp));
  ASSERT_EQ(store.List(), std::vector<uint64_t>{fp});

  // Memory-cache hit returns the very same object.
  auto got = store.Get(fp);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->get(), artifact.get());

  // Cold restart: drop the cache, re-read from disk, compare bytes.
  store.DropMemoryCache();
  EXPECT_EQ(store.memory_cache_size(), 0u);
  auto reloaded = store.Get(fp);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_NE(reloaded->get(), artifact.get());
  EXPECT_EQ(SerializeDiscoveryArtifact(**reloaded),
            SerializeDiscoveryArtifact(*artifact));

  ASSERT_TRUE(store.Remove(fp).ok());
  EXPECT_FALSE(store.Contains(fp));
  EXPECT_TRUE(store.List().empty());
  // Removing an absent artifact is OK (idempotent).
  EXPECT_TRUE(store.Remove(fp).ok());
}

TEST(ArtifactStoreTest, CorruptFileSurfacesAsParseError) {
  std::string dir = FreshDir("corruptfile");
  ArtifactStore store(dir);
  Table t = SmallTable("cf", 9);
  auto artifact = std::make_shared<const TableDiscoveryArtifact>(
      BuildDiscoveryArtifact(t, 128, false));
  ASSERT_TRUE(store.Put(artifact).ok());
  store.DropMemoryCache();

  // Truncate the on-disk file behind the store's back.
  std::vector<uint64_t> fps = store.List();
  ASSERT_EQ(fps.size(), 1u);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fps[0]));
  std::string path = dir + "/" + hex + ".vda";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "VDA1 and then nonsense";
  }
  EXPECT_EQ(store.Get(fps[0]).status().code(), StatusCode::kParseError);
}

TEST(ArtifactStoreTest, ColdRestartReproducesRankingsWithoutRebuilds) {
  std::string dir = FreshDir("coldstart");
  Table query = SmallTable("query_table", 1);

  // First process: build everything, persist write-through.
  std::string first_rankings;
  {
    ArtifactStore store(dir);
    MetricsRegistry metrics;
    DiscoveryOptions opt;
    opt.store = &store;
    opt.metrics = &metrics;
    DiscoveryEngine engine(std::move(opt));
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          engine.AddTable(SmallTable("t" + std::to_string(i), i % 3)).ok());
    }
    EXPECT_EQ(metrics
                  .CounterFor("valentine_discovery_store_total",
                              {{"event", "build"}})
                  ->value(),
              6u);
    for (const DiscoveryResult& r : engine.FindJoinable(query, 10)) {
      first_rankings += r.table_name + "=" + std::to_string(r.score) + ";";
    }
  }

  // Second process (fresh store object, same directory): every AddTable
  // must hit the store, and the rankings must be identical.
  {
    ArtifactStore store(dir);
    MetricsRegistry metrics;
    DiscoveryOptions opt;
    opt.store = &store;
    opt.metrics = &metrics;
    DiscoveryEngine engine(std::move(opt));
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          engine.AddTable(SmallTable("t" + std::to_string(i), i % 3)).ok());
    }
    EXPECT_EQ(metrics
                  .CounterFor("valentine_discovery_store_total",
                              {{"event", "hit"}})
                  ->value(),
              6u);
    EXPECT_EQ(metrics
                  .CounterFor("valentine_discovery_store_total",
                              {{"event", "build"}})
                  ->value(),
              0u);
    std::string second_rankings;
    for (const DiscoveryResult& r : engine.FindJoinable(query, 10)) {
      second_rankings += r.table_name + "=" + std::to_string(r.score) + ";";
    }
    EXPECT_EQ(second_rankings, first_rankings);
  }
}

TEST(ArtifactStoreTest, StaleArtifactIsRebuiltNotServed) {
  std::string dir = FreshDir("stale");
  Table t = SmallTable("stale_t", 4);

  // Persist an artifact at a DIFFERENT signature width than the engine
  // uses; registration must rebuild instead of mis-banding it.
  {
    ArtifactStore store(dir);
    auto artifact = std::make_shared<const TableDiscoveryArtifact>(
        BuildDiscoveryArtifact(t, /*signature_size=*/32, false));
    ASSERT_TRUE(store.Put(artifact).ok());
  }
  {
    ArtifactStore store(dir);
    MetricsRegistry metrics;
    DiscoveryOptions opt;  // default LSH: 16 x 8 = 128
    opt.store = &store;
    opt.metrics = &metrics;
    DiscoveryEngine engine(std::move(opt));
    ASSERT_TRUE(engine.AddTable(t).ok());
    EXPECT_EQ(metrics
                  .CounterFor("valentine_discovery_store_total",
                              {{"event", "build"}})
                  ->value(),
              1u);
    // The refreshed artifact replaced the stale one on disk.
    auto reloaded = store.Get(TableContentFingerprint(t));
    ASSERT_TRUE(reloaded.ok());
    EXPECT_EQ((*reloaded)->signature_size, 128u);
  }
}

// tsan-labelled: concurrent Get/Put/DropMemoryCache against one store
// directory must be free of data races (the serve registry consults the
// store from mutation threads while queries run).
TEST(ArtifactStoreConcurrencyTest, ConcurrentLoadVersusQuery) {
  std::string dir = FreshDir("concurrent");
  ArtifactStore store(dir);
  constexpr int kTables = 8;
  std::vector<uint64_t> fps;
  for (int i = 0; i < kTables; ++i) {
    auto artifact = std::make_shared<const TableDiscoveryArtifact>(
        BuildDiscoveryArtifact(SmallTable("c" + std::to_string(i), i), 128,
                               false));
    fps.push_back(artifact->fingerprint);
    ASSERT_TRUE(store.Put(artifact).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Readers: hammer Get across all fingerprints.
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&store, &fps, &stop, &failures] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (uint64_t fp : fps) {
          auto got = store.Get(fp);
          if (!got.ok() || *got == nullptr) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  // Writer: re-Put fresh artifacts (same fingerprints) while cache is
  // periodically dropped — the cold-restart path under load.
  threads.emplace_back([&store, &stop, &failures] {
    for (int round = 0; round < 20; ++round) {
      for (int i = 0; i < kTables; ++i) {
        auto artifact = std::make_shared<const TableDiscoveryArtifact>(
            BuildDiscoveryArtifact(SmallTable("c" + std::to_string(i), i),
                                   128, false));
        if (!store.Put(std::move(artifact)).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      store.DropMemoryCache();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace valentine
