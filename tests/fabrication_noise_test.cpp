#include "fabrication/noise.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "text/transforms.h"
#include "text/typo_model.h"

namespace valentine {
namespace {

TEST(TypoModelTest, ZeroRateIsIdentity) {
  Rng rng(1);
  TypoModel model(0.0);
  EXPECT_EQ(model.Perturb("hello world", &rng), "hello world");
}

TEST(TypoModelTest, HighRateChangesMostStrings) {
  Rng rng(2);
  TypoModel model(0.5);
  int changed = 0;
  for (int i = 0; i < 100; ++i) {
    if (model.Perturb("representative", &rng) != "representative") ++changed;
  }
  EXPECT_GT(changed, 90);
}

TEST(TypoModelTest, NeverReturnsEmptyForNonEmpty) {
  Rng rng(3);
  TypoModel model(1.0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(model.Perturb("a", &rng).empty());
  }
}

TEST(TypoModelTest, KeyboardNeighborsSane) {
  EXPECT_NE(TypoModel::KeyboardNeighbors('a').find('s'), std::string::npos);
  EXPECT_NE(TypoModel::KeyboardNeighbors('Q').find('w'), std::string::npos);
  EXPECT_TRUE(TypoModel::KeyboardNeighbors('!').empty());
}

TEST(TypoModelTest, DeterministicUnderSeed) {
  TypoModel model(0.3);
  Rng r1(7);
  Rng r2(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(model.Perturb("customer_address", &r1),
              model.Perturb("customer_address", &r2));
  }
}

TEST(InstanceNoiseTest, StringColumnsGetTypos) {
  Column c("text", DataType::kString);
  for (int i = 0; i < 200; ++i) {
    c.Append(Value::String("representative_value_" + std::to_string(i)));
  }
  Column original = c;
  Rng rng(4);
  InstanceNoiseOptions opt;
  opt.cell_rate = 0.5;
  AddInstanceNoise(&c, opt, &rng);
  size_t changed = 0;
  for (size_t i = 0; i < c.size(); ++i) {
    if (!(c[i] == original[i])) ++changed;
  }
  EXPECT_GT(changed, 50u);
  EXPECT_LT(changed, 180u);
}

TEST(InstanceNoiseTest, NumericColumnsPerturbedByDistribution) {
  Column c("nums", DataType::kInt64);
  Rng gen(5);
  for (int i = 0; i < 500; ++i) {
    c.Append(Value::Int(gen.UniformInt(1000, 2000)));
  }
  NumericStats before = ComputeNumericStats(c.NumericValues());
  Rng rng(6);
  InstanceNoiseOptions opt;
  opt.cell_rate = 1.0;
  opt.numeric_sigma_scale = 0.1;
  AddInstanceNoise(&c, opt, &rng);
  NumericStats after = ComputeNumericStats(c.NumericValues());
  // Distribution-shaped noise: the mean moves little relative to sigma.
  EXPECT_NEAR(after.mean, before.mean, before.stddev * 0.2);
  // Values stay integers.
  for (const Value& v : c.values()) {
    EXPECT_EQ(v.kind(), DataType::kInt64);
  }
}

TEST(InstanceNoiseTest, NullsLeftAlone) {
  Column c("x", DataType::kString);
  c.Append(Value::Null());
  c.Append(Value::String("abc"));
  Rng rng(7);
  InstanceNoiseOptions opt;
  opt.cell_rate = 1.0;
  AddInstanceNoise(&c, opt, &rng);
  EXPECT_TRUE(c[0].is_null());
}

TEST(InstanceNoiseTest, ZeroRateIdentity) {
  Column c("x", DataType::kString);
  c.Append(Value::String("abc"));
  Column original = c;
  Rng rng(8);
  InstanceNoiseOptions opt;
  opt.cell_rate = 0.0;
  AddInstanceNoise(&c, opt, &rng);
  EXPECT_TRUE(c[0] == original[0]);
}

TEST(SchemaNoiseTransformsTest, Rules) {
  EXPECT_EQ(PrefixWithTable("name", "clients"), "clients_name");
  EXPECT_EQ(AbbreviateName("address_line1"), "addlin1");
  EXPECT_EQ(DropVowels("customer_age"), "cstmr_ag");
  // Leading vowels are kept.
  EXPECT_EQ(DropVowels("income"), "incm");
}

TEST(SchemaNoiseTransformsTest, ComposedRules) {
  std::string r3 = ApplySchemaNoiseRule("address_line", "t", 3);
  EXPECT_EQ(r3, "t_addlin");
  std::string r4 = ApplySchemaNoiseRule("address_line", "t", 4);
  EXPECT_EQ(r4, "t_addrss_ln");
}

TEST(SchemaNoiseTest, RenamesEveryColumnUniquely) {
  Table t("orders");
  for (const char* name : {"id", "customer", "total", "customer_id"}) {
    Column c(name, DataType::kString);
    c.Append(Value::String("v"));
    ASSERT_TRUE(t.AddColumn(std::move(c)).ok());
  }
  Rng rng(9);
  auto mapping = AddSchemaNoise(&t, &rng);
  ASSERT_EQ(mapping.size(), 4u);
  std::unordered_set<std::string> new_names;
  for (const auto& [old_name, new_name] : mapping) {
    EXPECT_NE(old_name, new_name);
    EXPECT_TRUE(new_names.insert(new_name).second) << new_name;
  }
  // The table's live names agree with the mapping.
  for (size_t i = 0; i < t.num_columns(); ++i) {
    EXPECT_EQ(t.column(i).name(), mapping[i].second);
  }
}

TEST(SchemaNoiseTest, DeterministicUnderSeed) {
  auto make = [] {
    Table t("x");
    Column c("customer_address", DataType::kString);
    c.Append(Value::String("v"));
    (void)t.AddColumn(std::move(c));
    return t;
  };
  Table t1 = make();
  Table t2 = make();
  Rng r1(10);
  Rng r2(10);
  AddSchemaNoise(&t1, &r1);
  AddSchemaNoise(&t2, &r2);
  EXPECT_EQ(t1.column(0).name(), t2.column(0).name());
}

}  // namespace
}  // namespace valentine
