#include "core/lock_rank.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/mutex.h"

namespace valentine {
namespace {

// The default violation handler aborts; every test in this file runs
// under a recording handler instead, restored on teardown so the
// process-wide default is back in place for unrelated tests.
std::vector<LockRankViolation>* g_recorded = nullptr;

void RecordViolation(const LockRankViolation& violation) {
  g_recorded->push_back(violation);
}

class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_recorded = &recorded_;
    previous_ = SetLockRankViolationHandler(&RecordViolation);
    // Tests drive the tracker directly; start from a clean thread.
    ASSERT_EQ(LockRankTracker::HeldCount(), 0u);
  }

  void TearDown() override {
    SetLockRankViolationHandler(previous_);
    g_recorded = nullptr;
    EXPECT_EQ(LockRankTracker::HeldCount(), 0u)
        << "a test leaked a held-mutex entry";
  }

  std::vector<LockRankViolation> recorded_;
  LockRankViolationHandler previous_ = nullptr;
};

// --- Tracker-level behaviour: exercised in every build type, because
// --- the tracker itself is always compiled.

TEST_F(LockRankTest, InOrderAcquisitionIsClean) {
  int journal = 0, cache = 0, metrics = 0;
  LockRankTracker::CheckAcquire(&journal, LockRank::kJournal, "journal");
  LockRankTracker::Acquired(&journal, LockRank::kJournal, "journal");
  LockRankTracker::CheckAcquire(&cache, LockRank::kArtifactCache, "cache");
  LockRankTracker::Acquired(&cache, LockRank::kArtifactCache, "cache");
  LockRankTracker::CheckAcquire(&metrics, LockRank::kMetrics, "metrics");
  LockRankTracker::Acquired(&metrics, LockRank::kMetrics, "metrics");
  EXPECT_EQ(LockRankTracker::HeldCount(), 3u);
  LockRankTracker::Released(&metrics);
  LockRankTracker::Released(&cache);
  LockRankTracker::Released(&journal);
  EXPECT_TRUE(recorded_.empty());
}

TEST_F(LockRankTest, RankInversionIsReportedAtTheAcquiringCall) {
  int metrics = 0, journal = 0;
  LockRankTracker::Acquired(&metrics, LockRank::kMetrics, "metrics");
  LockRankTracker::CheckAcquire(&journal, LockRank::kJournal, "journal");
  ASSERT_EQ(recorded_.size(), 1u);
  EXPECT_EQ(recorded_[0].kind, LockRankViolation::Kind::kRankInversion);
  EXPECT_EQ(recorded_[0].acquiring, &journal);
  EXPECT_EQ(recorded_[0].acquiring_rank, LockRank::kJournal);
  EXPECT_STREQ(recorded_[0].acquiring_name, "journal");
  EXPECT_EQ(recorded_[0].held, &metrics);
  EXPECT_EQ(recorded_[0].held_rank, LockRank::kMetrics);
  EXPECT_STREQ(recorded_[0].held_name, "metrics");
  LockRankTracker::Released(&metrics);
}

TEST_F(LockRankTest, EqualRankCountsAsInversion) {
  // Two mutexes of the same subsystem must never nest: if thread A does
  // X-then-Y and thread B does Y-then-X, ranks alone cannot break the
  // tie, so "strictly increasing" is the invariant.
  int a = 0, b = 0;
  LockRankTracker::Acquired(&a, LockRank::kProfileCache, "cache-a");
  LockRankTracker::CheckAcquire(&b, LockRank::kProfileCache, "cache-b");
  ASSERT_EQ(recorded_.size(), 1u);
  EXPECT_EQ(recorded_[0].kind, LockRankViolation::Kind::kRankInversion);
  LockRankTracker::Released(&a);
}

TEST_F(LockRankTest, SelfDeadlockIsReportedRegardlessOfRank) {
  int mu = 0;
  LockRankTracker::Acquired(&mu, LockRank::kUnranked, "unranked");
  LockRankTracker::CheckAcquire(&mu, LockRank::kUnranked, "unranked");
  ASSERT_EQ(recorded_.size(), 1u);
  EXPECT_EQ(recorded_[0].kind, LockRankViolation::Kind::kSelfDeadlock);
  EXPECT_EQ(recorded_[0].acquiring, &mu);
  EXPECT_EQ(recorded_[0].held, &mu);
  LockRankTracker::Released(&mu);
}

TEST_F(LockRankTest, SelfDeadlockSuppressesTheRankScan) {
  // One bug, one report: the re-entry is the diagnosis; a trailing
  // "rank inversion against yourself" would be noise.
  int mu = 0;
  LockRankTracker::Acquired(&mu, LockRank::kMetrics, "metrics");
  LockRankTracker::CheckAcquire(&mu, LockRank::kMetrics, "metrics");
  ASSERT_EQ(recorded_.size(), 1u);
  EXPECT_EQ(recorded_[0].kind, LockRankViolation::Kind::kSelfDeadlock);
  LockRankTracker::Released(&mu);
}

TEST_F(LockRankTest, UnrankedAcquisitionSkipsOrderingChecks) {
  int metrics = 0, unranked = 0;
  LockRankTracker::Acquired(&metrics, LockRank::kMetrics, "metrics");
  LockRankTracker::CheckAcquire(&unranked, LockRank::kUnranked, "unranked");
  EXPECT_TRUE(recorded_.empty());
  LockRankTracker::Released(&metrics);
}

TEST_F(LockRankTest, OutOfOrderReleaseIsTolerated) {
  int a = 0, b = 0, stranger = 0;
  LockRankTracker::Acquired(&a, LockRank::kJournal, "a");
  LockRankTracker::Acquired(&b, LockRank::kMetrics, "b");
  LockRankTracker::Released(&a);  // not LIFO
  LockRankTracker::Released(&stranger);  // never acquired: no-op
  EXPECT_EQ(LockRankTracker::HeldCount(), 1u);
  LockRankTracker::Released(&b);
  EXPECT_TRUE(recorded_.empty());
}

TEST_F(LockRankTest, HandlerInstallReturnsPrevious) {
  // SetUp installed RecordViolation over the default (nullptr); a
  // second install must hand RecordViolation back.
  LockRankViolationHandler prev = SetLockRankViolationHandler(nullptr);
  EXPECT_EQ(prev, &RecordViolation);
  SetLockRankViolationHandler(&RecordViolation);
}

TEST_F(LockRankTest, HeldSetsAreThreadLocal) {
  int metrics = 0;
  LockRankTracker::Acquired(&metrics, LockRank::kMetrics, "metrics");
  std::thread other([] {
    // This thread holds nothing, so acquiring a low rank is legal even
    // while the main thread holds kMetrics.
    int journal = 0;
    LockRankTracker::CheckAcquire(&journal, LockRank::kJournal, "journal");
    LockRankTracker::Acquired(&journal, LockRank::kJournal, "journal");
    EXPECT_EQ(LockRankTracker::HeldCount(), 1u);
    LockRankTracker::Released(&journal);
  });
  other.join();
  EXPECT_TRUE(recorded_.empty());
  LockRankTracker::Released(&metrics);
}

TEST(LockRankNameTest, CoversEveryRank) {
  EXPECT_STREQ(LockRankName(LockRank::kUnranked), "kUnranked");
  EXPECT_STREQ(LockRankName(LockRank::kJournal), "kJournal");
  EXPECT_STREQ(LockRankName(LockRank::kFaultInjection), "kFaultInjection");
  EXPECT_STREQ(LockRankName(LockRank::kArtifactCache), "kArtifactCache");
  EXPECT_STREQ(LockRankName(LockRank::kProfileCache), "kProfileCache");
  EXPECT_STREQ(LockRankName(LockRank::kCupidMemo), "kCupidMemo");
  EXPECT_STREQ(LockRankName(LockRank::kMetrics), "kMetrics");
  EXPECT_STREQ(LockRankName(LockRank::kTracer), "kTracer");
}

// --- Mutex-level behaviour: valentine::Mutex only drives the tracker
// --- when VALENTINE_LOCK_RANK_CHECKS_ENABLED, so the expectations
// --- differ by build type — both branches are asserted.

#if VALENTINE_LOCK_RANK_CHECKS_ENABLED

TEST_F(LockRankTest, MutexWrongOrderLockReportsInversion) {
  Mutex tracer(LockRank::kTracer, "tracer");
  Mutex journal(LockRank::kJournal, "journal");
  tracer.Lock();
  journal.Lock();  // kJournal < kTracer while kTracer is held
  ASSERT_EQ(recorded_.size(), 1u);
  EXPECT_EQ(recorded_[0].kind, LockRankViolation::Kind::kRankInversion);
  EXPECT_STREQ(recorded_[0].acquiring_name, "journal");
  EXPECT_STREQ(recorded_[0].held_name, "tracer");
  journal.Unlock();
  tracer.Unlock();
}

TEST_F(LockRankTest, MutexTryLockOnHeldMutexReportsSelfDeadlock) {
  // try_lock on a std::mutex the thread already owns is UB; the tracker
  // reports it *before* touching the underlying mutex, which is the
  // whole point of checking pre-acquisition.
  Mutex mu(LockRank::kMetrics, "metrics");
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());
  ASSERT_EQ(recorded_.size(), 1u);
  EXPECT_EQ(recorded_[0].kind, LockRankViolation::Kind::kSelfDeadlock);
  mu.Unlock();
}

TEST_F(LockRankTest, MutexLockGuardTracksHeldCount) {
  Mutex outer(LockRank::kArtifactCache, "outer");
  Mutex inner(LockRank::kMetrics, "inner");
  {
    MutexLock lock_outer(&outer);
    EXPECT_EQ(LockRankTracker::HeldCount(), 1u);
    {
      MutexLock lock_inner(&inner);
      EXPECT_EQ(LockRankTracker::HeldCount(), 2u);
    }
    EXPECT_EQ(LockRankTracker::HeldCount(), 1u);
  }
  EXPECT_EQ(LockRankTracker::HeldCount(), 0u);
  EXPECT_TRUE(recorded_.empty());
}

#else  // !VALENTINE_LOCK_RANK_CHECKS_ENABLED

TEST_F(LockRankTest, ReleaseBuildMutexSkipsTheTracker) {
  // NDEBUG builds compile the checking calls out of Mutex entirely: the
  // wrong-order acquisition below would be flagged in a debug build,
  // and the tracker sees no traffic at all.
  Mutex tracer(LockRank::kTracer, "tracer");
  Mutex journal(LockRank::kJournal, "journal");
  tracer.Lock();
  EXPECT_EQ(LockRankTracker::HeldCount(), 0u);
  journal.Lock();
  journal.Unlock();
  tracer.Unlock();
  EXPECT_TRUE(recorded_.empty());
}

#endif  // VALENTINE_LOCK_RANK_CHECKS_ENABLED

TEST_F(LockRankTest, ConcurrentInOrderLockingIsClean) {
  // The shape the library actually uses — per-subsystem mutexes
  // acquired leaf-last from many threads at once. Runs under the tsan
  // label: TSan watches the data, the tracker watches the order.
  Mutex cache(LockRank::kProfileCache, "cache");
  Mutex metrics(LockRank::kMetrics, "metrics");
  int guarded = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock_cache(&cache);
        MutexLock lock_metrics(&metrics);
        ++guarded;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(guarded, 4000);
  EXPECT_TRUE(recorded_.empty());
}

}  // namespace
}  // namespace valentine
