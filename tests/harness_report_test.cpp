#include "harness/report.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

TEST(PrintTableTest, AlignsColumnsAndBorders) {
  testing::internal::CaptureStdout();
  PrintTable({"name", "value"}, {{"alpha", "1"}, {"longer_name", "22"}});
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha       | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| longer_name | 22    |"), std::string::npos);
  // Border lines present (top + below-header + bottom).
  size_t separator_lines = out[0] == '+' ? 1 : 0;
  size_t pos = 0;
  while ((pos = out.find("\n+", pos)) != std::string::npos) {
    ++separator_lines;
    pos += 2;
  }
  EXPECT_EQ(separator_lines, 3u);
}

TEST(PrintTableTest, ShortRowsPadded) {
  testing::internal::CaptureStdout();
  PrintTable({"a", "b", "c"}, {{"only"}});
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("| only |"), std::string::npos);
}

TEST(PrintScenarioStatsTest, OneRowPerScenario) {
  std::vector<ScenarioStats> stats;
  ScenarioStats s;
  s.scenario = Scenario::kUnionable;
  s.recall.min = 0.2;
  s.recall.median = 0.5;
  s.recall.max = 0.9;
  s.recall.count = 7;
  stats.push_back(s);
  s.scenario = Scenario::kJoinable;
  stats.push_back(s);

  testing::internal::CaptureStdout();
  PrintScenarioStats("TestMethod", stats);
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("TestMethod"), std::string::npos);
  EXPECT_NE(out.find("Unionable"), std::string::npos);
  EXPECT_NE(out.find("Joinable"), std::string::npos);
  EXPECT_NE(out.find("med=0.50"), std::string::npos);
  EXPECT_NE(out.find("(n=7)"), std::string::npos);
}

TEST(RenderWhiskerTest, MarkersOrdered) {
  Summary s;
  s.min = 0.25;
  s.median = 0.5;
  s.max = 0.75;
  std::string bar = RenderWhisker(s, 41);
  size_t lo = bar.find('|');
  size_t mid = bar.find('o');
  size_t hi = bar.rfind('|');
  EXPECT_LT(lo, mid);
  EXPECT_LT(mid, hi);
  // Dashes connect the whiskers.
  for (size_t i = lo + 1; i < mid; ++i) {
    EXPECT_TRUE(bar[i] == '-' || bar[i] == 'o') << bar;
  }
}

TEST(RenderWhiskerTest, ClampsOutOfRangeValues) {
  Summary s;
  s.min = -0.5;
  s.median = 0.5;
  s.max = 1.5;
  std::string bar = RenderWhisker(s, 21);
  EXPECT_EQ(bar[1], '|');                 // clamped to left edge
  EXPECT_EQ(bar[bar.size() - 2], '|');    // clamped to right edge
}

}  // namespace
}  // namespace valentine
