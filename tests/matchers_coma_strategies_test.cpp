// Tests for COMA's combination machinery: aggregation, direction, and
// selection strategies over the first-line matcher scores.

#include <gtest/gtest.h>

#include "matchers/coma.h"

namespace valentine {
namespace {

Table MakeTable(const std::string& name,
                std::vector<std::pair<std::string,
                                      std::vector<std::string>>> cols) {
  Table t(name);
  for (auto& [col_name, values] : cols) {
    Column c(col_name, DataType::kString);
    for (auto& v : values) c.Append(Value::String(std::move(v)));
    EXPECT_TRUE(t.AddColumn(std::move(c)).ok());
  }
  return t;
}

TEST(ComaAggregationTest, StrategiesOrdered) {
  std::vector<ComaComponentScore> scores = {
      {"a", 0.2, 1.0}, {"b", 0.8, 3.0}, {"c", 0.5, 1.0}};
  double mx = ComaMatcher::Aggregate(scores, ComaAggregation::kMax);
  double mn = ComaMatcher::Aggregate(scores, ComaAggregation::kMin);
  double avg = ComaMatcher::Aggregate(scores, ComaAggregation::kAverage);
  double wavg = ComaMatcher::Aggregate(scores, ComaAggregation::kWeighted);
  EXPECT_DOUBLE_EQ(mx, 0.8);
  EXPECT_DOUBLE_EQ(mn, 0.2);
  EXPECT_DOUBLE_EQ(avg, 0.5);
  EXPECT_NEAR(wavg, (0.2 + 0.8 * 3 + 0.5) / 5.0, 1e-12);
  EXPECT_LE(mn, avg);
  EXPECT_LE(avg, mx);
  // The weighted mean leans toward the heavy component.
  EXPECT_GT(wavg, avg);
}

TEST(ComaAggregationTest, EmptyScores) {
  EXPECT_DOUBLE_EQ(ComaMatcher::Aggregate({}, ComaAggregation::kWeighted),
                   0.0);
}

TEST(ComaComponentScoresTest, BreakdownCoversAllSchemaMatchers) {
  ComaMatcher m;
  Column a("customer_name", DataType::kString);
  Column b("client_name", DataType::kString);
  auto scores = m.SchemaComponentScores("s", a, "t", b);
  ASSERT_EQ(scores.size(), 6u);
  std::set<std::string> names;
  for (const auto& s : scores) {
    names.insert(s.matcher);
    EXPECT_GE(s.score, 0.0);
    EXPECT_LE(s.score, 1.0);
    EXPECT_GT(s.weight, 0.0);
  }
  EXPECT_TRUE(names.count("name_trigram"));
  EXPECT_TRUE(names.count("name_synonym"));
  EXPECT_TRUE(names.count("data_type"));
  EXPECT_TRUE(names.count("name_affix"));
}

ComaOptions BaseOptions() {
  ComaOptions opt;
  opt.selection = ComaSelection::kAll;
  return opt;
}

TEST(ComaSelectionTest, AllKeepsEveryPair) {
  Table src = MakeTable("s", {{"a", {"1"}}, {"b", {"2"}}});
  Table tgt = MakeTable("t", {{"x", {"3"}}, {"y", {"4"}}});
  ComaOptions opt = BaseOptions();
  EXPECT_EQ(ComaMatcher(opt).Match(src, tgt).size(), 4u);
}

TEST(ComaSelectionTest, OneToOneKeepsAtMostMinDim) {
  Table src = MakeTable("s", {{"a", {"1"}}, {"b", {"2"}}, {"c", {"3"}}});
  Table tgt = MakeTable("t", {{"x", {"4"}}, {"y", {"5"}}});
  ComaOptions opt;
  opt.selection = ComaSelection::kOneToOne;
  MatchResult r = ComaMatcher(opt).Match(src, tgt);
  EXPECT_LE(r.size(), 2u);
  // Endpoints unique.
  std::set<std::string> srcs, tgts;
  for (const Match& m : r.matches()) {
    EXPECT_TRUE(srcs.insert(m.source.column).second);
    EXPECT_TRUE(tgts.insert(m.target.column).second);
  }
}

TEST(ComaSelectionTest, MaxNForwardLimitsPerSourceColumn) {
  // Target names have strictly decreasing similarity to "alpha", so the
  // MaxN cut is unambiguous (equal scores are all kept by design).
  Table src = MakeTable("s", {{"alpha", {"1"}}});
  Table tgt = MakeTable("t", {{"alpha", {"2"}}, {"alpra", {"3"}},
                              {"zzzz", {"4"}}});
  ComaOptions opt;
  opt.selection = ComaSelection::kMaxN;
  opt.direction = ComaDirection::kForward;
  opt.max_n = 2;
  MatchResult r = ComaMatcher(opt).Match(src, tgt);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].target.column, "alpha");
  EXPECT_EQ(r[1].target.column, "alpra");
}

TEST(ComaSelectionTest, MaxNBackwardLimitsPerTargetColumn) {
  Table src = MakeTable("s", {{"alpha", {"1"}}, {"alpra", {"2"}},
                              {"zzzz", {"3"}}});
  Table tgt = MakeTable("t", {{"alpha", {"4"}}});
  ComaOptions opt;
  opt.selection = ComaSelection::kMaxN;
  opt.direction = ComaDirection::kBackward;
  opt.max_n = 1;
  MatchResult r = ComaMatcher(opt).Match(src, tgt);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].source.column, "alpha");
}

TEST(ComaSelectionTest, BothIsIntersectionOfDirections) {
  Table src = MakeTable("s", {{"aa", {"1"}}, {"bb", {"2"}}});
  Table tgt = MakeTable("t", {{"aa", {"3"}}, {"cc", {"4"}}});
  ComaOptions both;
  both.selection = ComaSelection::kMaxN;
  both.direction = ComaDirection::kBoth;
  both.max_n = 1;
  ComaOptions fwd = both;
  fwd.direction = ComaDirection::kForward;
  ComaOptions bwd = both;
  bwd.direction = ComaDirection::kBackward;
  size_t n_both = ComaMatcher(both).Match(src, tgt).size();
  size_t n_fwd = ComaMatcher(fwd).Match(src, tgt).size();
  size_t n_bwd = ComaMatcher(bwd).Match(src, tgt).size();
  EXPECT_LE(n_both, std::min(n_fwd, n_bwd));
  EXPECT_GE(n_both, 1u);  // aa <-> aa survives both directions
}

TEST(ComaSelectionTest, MaxDeltaKeepsNearBest) {
  // "aa" matches "aa" perfectly; "ab" is nearly as good for "aa".
  Table src = MakeTable("s", {{"aa", {"1"}}});
  Table tgt = MakeTable("t", {{"aa", {"2"}}, {"ab", {"3"}}, {"zz", {"4"}}});
  ComaOptions tight;
  tight.selection = ComaSelection::kMaxDelta;
  tight.direction = ComaDirection::kForward;
  tight.delta = 0.0;
  ComaOptions loose = tight;
  loose.delta = 0.75;
  size_t n_tight = ComaMatcher(tight).Match(src, tgt).size();
  size_t n_loose = ComaMatcher(loose).Match(src, tgt).size();
  EXPECT_EQ(n_tight, 1u);
  EXPECT_GT(n_loose, n_tight);
}

TEST(ComaSelectionTest, ThresholdAppliesBeforeSelection) {
  Table src = MakeTable("s", {{"alpha", {"1"}}});
  Table tgt = MakeTable("t", {{"omega", {"2"}}});
  ComaOptions opt = BaseOptions();
  opt.threshold = 0.99;
  EXPECT_TRUE(ComaMatcher(opt).Match(src, tgt).empty());
}

TEST(ComaDirectionTest, NmGroundTruthNeedsNonOneToOneSelection) {
  // Three source columns all correspond to one target column (the ING#2
  // situation): OneToOne keeps one, MaxN-backward keeps several.
  Table src = MakeTable("s", {{"owner_team", {"p", "q"}},
                              {"support_team", {"p", "q"}},
                              {"devops_team", {"p", "q"}}});
  Table tgt = MakeTable("t", {{"team_key", {"p", "q"}}});
  ComaOptions one;
  one.strategy = ComaStrategy::kInstances;
  one.selection = ComaSelection::kOneToOne;
  ComaOptions many;
  many.strategy = ComaStrategy::kInstances;
  many.selection = ComaSelection::kMaxN;
  many.direction = ComaDirection::kBackward;
  many.max_n = 3;
  EXPECT_EQ(ComaMatcher(one).Match(src, tgt).size(), 1u);
  EXPECT_EQ(ComaMatcher(many).Match(src, tgt).size(), 3u);
}

// Aggregation strategies all yield bounded, complete score matrices.
class ComaAggregationSweep
    : public ::testing::TestWithParam<ComaAggregation> {};

TEST_P(ComaAggregationSweep, BoundedScores) {
  Table src = MakeTable("s", {{"city", {"a", "b"}}, {"income", {"1", "2"}}});
  Table tgt = MakeTable("t", {{"town", {"a", "c"}}, {"salary", {"1", "3"}}});
  ComaOptions opt;
  opt.aggregation = GetParam();
  opt.selection = ComaSelection::kAll;
  MatchResult r = ComaMatcher(opt).Match(src, tgt);
  EXPECT_EQ(r.size(), 4u);
  for (const Match& m : r.matches()) {
    EXPECT_GE(m.score, 0.0);
    EXPECT_LE(m.score, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Aggregations, ComaAggregationSweep,
                         ::testing::Values(ComaAggregation::kMax,
                                           ComaAggregation::kMin,
                                           ComaAggregation::kAverage,
                                           ComaAggregation::kWeighted));

}  // namespace
}  // namespace valentine
