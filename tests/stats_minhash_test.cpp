#include "stats/minhash.h"

#include <gtest/gtest.h>

#include "text/string_similarity.h"

namespace valentine {
namespace {

std::unordered_set<std::string> MakeSet(int lo, int hi) {
  std::unordered_set<std::string> s;
  for (int i = lo; i < hi; ++i) s.insert("v" + std::to_string(i));
  return s;
}

TEST(MinHashTest, IdenticalSetsEstimateOne) {
  auto set = MakeSet(0, 100);
  auto sig_a = MinHashSignature::Build(set, 64);
  auto sig_b = MinHashSignature::Build(set, 64);
  EXPECT_DOUBLE_EQ(sig_a.EstimateJaccard(sig_b), 1.0);
}

TEST(MinHashTest, DisjointSetsEstimateNearZero) {
  auto sig_a = MinHashSignature::Build(MakeSet(0, 200), 128);
  auto sig_b = MinHashSignature::Build(MakeSet(1000, 1200), 128);
  EXPECT_LT(sig_a.EstimateJaccard(sig_b), 0.05);
}

TEST(MinHashTest, EstimateTracksTrueJaccard) {
  // |A ∩ B| = 100, |A ∪ B| = 300 -> J = 1/3.
  auto a = MakeSet(0, 200);
  auto b = MakeSet(100, 300);
  double truth = JaccardSimilarity(a, b);
  auto sig_a = MinHashSignature::Build(a, 256);
  auto sig_b = MinHashSignature::Build(b, 256);
  EXPECT_NEAR(sig_a.EstimateJaccard(sig_b), truth, 0.08);
}

TEST(MinHashTest, EmptySets) {
  auto empty = MinHashSignature::Build({}, 64);
  auto full = MinHashSignature::Build(MakeSet(0, 10), 64);
  EXPECT_DOUBLE_EQ(empty.EstimateJaccard(empty), 1.0);
  EXPECT_DOUBLE_EQ(empty.EstimateJaccard(full), 0.0);
  EXPECT_TRUE(empty.empty_set());
  EXPECT_FALSE(full.empty_set());
}

TEST(MinHashTest, SignatureSize) {
  auto sig = MinHashSignature::Build(MakeSet(0, 10), 32);
  EXPECT_EQ(sig.size(), 32u);
}

TEST(MinHashTest, MismatchedSizesGiveZero) {
  auto a = MinHashSignature::Build(MakeSet(0, 10), 32);
  auto b = MinHashSignature::Build(MakeSet(0, 10), 64);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b), 0.0);
}

// Property sweep over overlap fractions: the estimate must be monotone
// in expectation and stay within a loose tolerance band.
class MinHashAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(MinHashAccuracyTest, EstimateWithinTolerance) {
  int overlap = GetParam();  // percent of 200 elements shared
  auto a = MakeSet(0, 200);
  auto b = MakeSet(200 - 2 * overlap, 400 - 2 * overlap);
  double truth = JaccardSimilarity(a, b);
  auto sig_a = MinHashSignature::Build(a, 256);
  auto sig_b = MinHashSignature::Build(b, 256);
  EXPECT_NEAR(sig_a.EstimateJaccard(sig_b), truth, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Overlaps, MinHashAccuracyTest,
                         ::testing::Values(0, 10, 25, 50, 75, 90, 100));

}  // namespace
}  // namespace valentine
