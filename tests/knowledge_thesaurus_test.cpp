#include "knowledge/thesaurus.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

TEST(ThesaurusTest, SynonymLookup) {
  Thesaurus t;
  t.AddSynonymSet({"car", "vehicle", "automobile"});
  EXPECT_TRUE(t.AreSynonyms("car", "vehicle"));
  EXPECT_TRUE(t.AreSynonyms("vehicle", "automobile"));
  EXPECT_FALSE(t.AreSynonyms("car", "boat"));
  EXPECT_TRUE(t.AreSynonyms("boat", "boat"));  // identity always true
}

TEST(ThesaurusTest, MergingOverlappingSets) {
  Thesaurus t;
  t.AddSynonymSet({"a", "b"});
  t.AddSynonymSet({"b", "c"});
  EXPECT_TRUE(t.AreSynonyms("a", "c"));
  EXPECT_EQ(t.num_synonym_sets(), 1u);
}

TEST(ThesaurusTest, AbbreviationExpansion) {
  Thesaurus t;
  t.AddAbbreviation("addr", "address");
  EXPECT_EQ(t.Expand("addr"), "address");
  EXPECT_EQ(t.Expand("unknown"), "unknown");
}

TEST(ThesaurusTest, HypernymRelatedness) {
  Thesaurus t;
  t.AddSynonymSet({"address", "location"});
  t.AddHypernym("city", "address");
  t.AddHypernym("zip", "address");
  EXPECT_DOUBLE_EQ(t.Relatedness("city", "address"), 0.8);
  EXPECT_DOUBLE_EQ(t.Relatedness("city", "location"), 0.8);  // via synonym
  EXPECT_DOUBLE_EQ(t.Relatedness("city", "zip"), 0.8);  // shared parent
  EXPECT_DOUBLE_EQ(t.Relatedness("city", "banana"), 0.0);
}

TEST(ThesaurusTest, SynonymRelatednessIsOne) {
  Thesaurus t;
  t.AddSynonymSet({"income", "salary"});
  EXPECT_DOUBLE_EQ(t.Relatedness("income", "salary"), 1.0);
  EXPECT_DOUBLE_EQ(t.Relatedness("income", "income"), 1.0);
}

TEST(ThesaurusTest, SynonymsListIncludesSelf) {
  Thesaurus t;
  t.AddSynonymSet({"x", "y"});
  auto syns = t.Synonyms("x");
  EXPECT_EQ(syns.size(), 2u);
  EXPECT_TRUE(t.Synonyms("nope").empty());
}

TEST(DefaultThesaurusTest, CoversCoreSchemaVocabulary) {
  const Thesaurus& t = Thesaurus::Default();
  EXPECT_TRUE(t.AreSynonyms("client", "customer"));
  EXPECT_TRUE(t.AreSynonyms("income", "salary"));
  EXPECT_TRUE(t.AreSynonyms("phone", "telephone"));
  EXPECT_TRUE(t.AreSynonyms("spouse", "partner"));
  EXPECT_TRUE(t.AreSynonyms("gender", "sex"));
  EXPECT_EQ(t.Expand("dob"), "birthdate");
  EXPECT_EQ(t.Expand("cntr"), "country");
  EXPECT_GT(t.Relatedness("city", "address"), 0.5);
}

TEST(DefaultThesaurusTest, CaseNormalizedStorage) {
  // Default() registers words lowercase; lookups are raw tokens, which
  // the matchers lowercase during tokenization.
  const Thesaurus& t = Thesaurus::Default();
  EXPECT_TRUE(t.AreSynonyms("country", "nation"));
}

}  // namespace
}  // namespace valentine
