#include "knowledge/ontology.h"

#include <gtest/gtest.h>

#include "datasets/chembl.h"

namespace valentine {
namespace {

Ontology MakeTestOntology() {
  Ontology o;
  size_t root = o.AddClass("root", {"root"});
  size_t animal = o.AddSubclass(root, "animal", {"animal", "creature"});
  size_t plant = o.AddSubclass(root, "plant", {"plant"});
  o.AddSubclass(animal, "dog", {"dog", "hound"});
  o.AddSubclass(animal, "cat", {"cat"});
  o.AddSubclass(plant, "tree", {"tree"});
  return o;
}

TEST(OntologyTest, ClassCountAndAccess) {
  Ontology o = MakeTestOntology();
  EXPECT_EQ(o.num_classes(), 6u);
  EXPECT_EQ(o.cls(0).name, "root");
  EXPECT_EQ(o.cls(3).name, "dog");
  EXPECT_EQ(*o.cls(3).parent, 1u);
  EXPECT_FALSE(o.cls(0).parent.has_value());
}

TEST(OntologyTest, HierarchyDistanceSelf) {
  Ontology o = MakeTestOntology();
  EXPECT_EQ(*o.HierarchyDistance(3, 3), 0u);
}

TEST(OntologyTest, HierarchyDistanceSiblings) {
  Ontology o = MakeTestOntology();
  // dog(3) and cat(4) share parent animal(1): distance 2.
  EXPECT_EQ(*o.HierarchyDistance(3, 4), 2u);
}

TEST(OntologyTest, HierarchyDistanceParentChild) {
  Ontology o = MakeTestOntology();
  EXPECT_EQ(*o.HierarchyDistance(1, 3), 1u);
  EXPECT_EQ(*o.HierarchyDistance(3, 1), 1u);
}

TEST(OntologyTest, HierarchyDistanceAcrossBranches) {
  Ontology o = MakeTestOntology();
  // dog(3) -> animal(1) -> root(0) <- plant(2) <- tree(5): distance 4.
  EXPECT_EQ(*o.HierarchyDistance(3, 5), 4u);
}

TEST(OntologyTest, DisconnectedTreesHaveNoDistance) {
  Ontology o;
  o.AddClass("a", {"a"});
  o.AddClass("b", {"b"});
  EXPECT_FALSE(o.HierarchyDistance(0, 1).has_value());
}

TEST(OntologyTest, AllLabelsEnumerated) {
  Ontology o = MakeTestOntology();
  auto labels = o.AllLabels();
  // root(1) + animal(2) + plant(1) + dog(2) + cat(1) + tree(1) = 8.
  EXPECT_EQ(labels.size(), 8u);
}

TEST(EfoLikeOntologyTest, StructureSane) {
  Ontology efo = MakeEfoLikeOntology();
  EXPECT_GT(efo.num_classes(), 10u);
  // Every non-root class reaches the root.
  for (size_t i = 1; i < efo.num_classes(); ++i) {
    EXPECT_TRUE(efo.HierarchyDistance(0, i).has_value()) << i;
  }
  // Labels use the formal EFO-style vocabulary (only partially matching
  // the Assays column names, by design — see MakeEfoLikeOntology docs).
  bool has_organism = false;
  bool has_assay = false;
  for (const auto& [cls, label] : efo.AllLabels()) {
    if (label == "organism") has_organism = true;
    if (label == "assay") has_assay = true;
  }
  EXPECT_TRUE(has_organism);
  EXPECT_TRUE(has_assay);
}

}  // namespace
}  // namespace valentine
