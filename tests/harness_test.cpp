#include <gtest/gtest.h>

#include "datasets/chembl.h"
#include "datasets/tpcdi.h"
#include "harness/experiment.h"
#include "harness/param_grid.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "matchers/jaccard_levenshtein.h"

namespace valentine {
namespace {

TEST(ParamGridTest, TableIICounts) {
  EXPECT_EQ(CupidFamily().grid.size(), 96u);
  EXPECT_EQ(SimilarityFloodingFamily().grid.size(), 1u);
  EXPECT_EQ(ComaFamily().grid.size(), 2u);
  EXPECT_EQ(DistributionFamily1().grid.size(), 9u);
  EXPECT_EQ(DistributionFamily2().grid.size(), 9u);
  Ontology efo = MakeEfoLikeOntology();
  EXPECT_EQ(SemPropFamily(&efo).grid.size(), 12u);
  EXPECT_EQ(EmbdiFamily().grid.size(), 1u);
  EXPECT_EQ(JaccardLevenshteinFamily().grid.size(), 5u);
}

TEST(ParamGridTest, TotalIs135WithOntology) {
  Ontology efo = MakeEfoLikeOntology();
  EXPECT_EQ(TotalConfigurations(AllFamilies(&efo)), 135u);
}

TEST(ParamGridTest, WithoutOntologySemPropExcluded) {
  EXPECT_EQ(TotalConfigurations(AllFamilies(nullptr)), 123u);
}

TEST(ParamGridTest, DescriptionsNonEmptyAndUniqueWithinFamily) {
  for (const auto& family : AllFamilies(nullptr)) {
    std::unordered_set<std::string> seen;
    for (const auto& cm : family.grid) {
      EXPECT_FALSE(cm.description.empty()) << family.name;
      EXPECT_TRUE(seen.insert(cm.description).second)
          << family.name << ": " << cm.description;
      ASSERT_NE(cm.matcher, nullptr);
    }
  }
}

DatasetPair SmallPair() {
  Table original = MakeTpcdiProspect(80, 3);
  FabricationOptions fab;
  fab.scenario = Scenario::kUnionable;
  fab.row_overlap = 0.8;
  fab.seed = 17;
  return FabricateDatasetPair(original, fab).ValueOrDie();
}

TEST(ExperimentTest, ProducesScoredResult) {
  DatasetPair pair = SmallPair();
  JaccardLevenshteinMatcher m;
  ExperimentResult r = RunExperiment(m, "th=0.5", pair);
  EXPECT_EQ(r.method, "JaccardLevenshtein");
  EXPECT_EQ(r.config, "th=0.5");
  EXPECT_EQ(r.pair_id, pair.id);
  EXPECT_EQ(r.ground_truth_size, pair.ground_truth.size());
  EXPECT_GE(r.recall_at_gt, 0.0);
  EXPECT_LE(r.recall_at_gt, 1.0);
  EXPECT_GT(r.runtime_ms, 0.0);
}

TEST(RunnerTest, SuiteCoversAllScenariosAndVariants) {
  Table original = MakeTpcdiProspect(60, 4);
  PairSuiteOptions opt;
  opt.row_overlaps = {0.5};
  opt.column_overlaps = {0.5};
  auto suite = BuildFabricatedSuite(original, opt);
  // unionable 1x2x2 + view-union 1x2x2 + join 1x2x2 + semjoin 1x2x2 = 16.
  EXPECT_EQ(suite.size(), 16u);
  size_t per_scenario[4] = {0, 0, 0, 0};
  for (const auto& p : suite) {
    ++per_scenario[static_cast<int>(p.scenario)];
  }
  for (size_t count : per_scenario) EXPECT_EQ(count, 4u);
}

TEST(RunnerTest, SuiteWithoutNoiseVariantsSmaller) {
  Table original = MakeTpcdiProspect(60, 4);
  PairSuiteOptions opt;
  opt.row_overlaps = {0.5};
  opt.column_overlaps = {0.5};
  opt.schema_noise_variants = false;
  opt.instance_noise_variants = false;
  auto suite = BuildFabricatedSuite(original, opt);
  // One unionable + one view-unionable + two (semantically-)joinable
  // each (vertical-only and horizontal-variant splits).
  EXPECT_EQ(suite.size(), 6u);
}

TEST(RunnerTest, BestOfGridPicksMaxRecall) {
  DatasetPair pair = SmallPair();
  MethodFamily family = JaccardLevenshteinFamily();
  FamilyPairOutcome out = RunFamilyOnPair(family, pair);
  EXPECT_EQ(out.runs, family.grid.size());
  EXPECT_FALSE(out.best_config.empty());
  // best_recall is indeed the max over configs.
  double max_recall = 0.0;
  for (const auto& cm : family.grid) {
    ExperimentResult r = RunExperiment(*cm.matcher, cm.description, pair);
    max_recall = std::max(max_recall, r.recall_at_gt);
  }
  EXPECT_DOUBLE_EQ(out.best_recall, max_recall);
}

TEST(RunnerTest, AggregateByScenarioBuckets) {
  std::vector<FamilyPairOutcome> outcomes;
  FamilyPairOutcome a;
  a.scenario = Scenario::kUnionable;
  a.best_recall = 0.4;
  outcomes.push_back(a);
  a.best_recall = 0.6;
  outcomes.push_back(a);
  a.scenario = Scenario::kJoinable;
  a.best_recall = 1.0;
  outcomes.push_back(a);
  auto stats = AggregateByScenario(outcomes);
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& st : stats) {
    if (st.scenario == Scenario::kUnionable) {
      EXPECT_DOUBLE_EQ(st.recall.median, 0.5);
      EXPECT_EQ(st.recall.count, 2u);
    } else {
      EXPECT_DOUBLE_EQ(st.recall.median, 1.0);
    }
  }
}

TEST(RunnerTest, AverageRuntimeMsPerRun) {
  std::vector<FamilyPairOutcome> outcomes(2);
  outcomes[0].total_ms = 10.0;
  outcomes[0].runs = 2;
  outcomes[1].total_ms = 20.0;
  outcomes[1].runs = 3;
  EXPECT_DOUBLE_EQ(AverageRuntimeMsPerRun(outcomes), 6.0);
  EXPECT_DOUBLE_EQ(AverageRuntimeMsPerRun({}), 0.0);
}

TEST(ReportTest, RenderWhiskerPlacesMarkers) {
  Summary s;
  s.min = 0.0;
  s.median = 0.5;
  s.max = 1.0;
  std::string bar = RenderWhisker(s, 21);
  // 23 chars total with brackets.
  EXPECT_EQ(bar.size(), 23u);
  EXPECT_EQ(bar.front(), '[');
  EXPECT_EQ(bar.back(), ']');
  EXPECT_EQ(bar[1], '|');       // min at left edge
  EXPECT_EQ(bar[11], 'o');      // median centered
  EXPECT_EQ(bar[21], '|');      // max at right edge
}

TEST(ReportTest, RenderWhiskerDegenerate) {
  Summary s;
  s.min = s.median = s.max = 1.0;
  std::string bar = RenderWhisker(s, 10);
  EXPECT_EQ(bar[bar.size() - 2], 'o');  // all markers collapse at max
}

TEST(ReportTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.5, 2), "0.50");
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 3), "0.333");
}

}  // namespace
}  // namespace valentine
