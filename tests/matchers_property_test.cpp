// Cross-matcher property suite: invariants every ColumnMatcher must
// uphold on every relatedness scenario — output sorted by descending
// score, scores bounded, no out-of-schema columns, determinism across
// invocations.

#include <gtest/gtest.h>

#include <memory>

#include "datasets/tpcdi.h"
#include "fabrication/fabricator.h"
#include "matchers/coma.h"
#include "matchers/cupid.h"
#include "matchers/distribution_based.h"
#include "matchers/embdi.h"
#include "matchers/jaccard_levenshtein.h"
#include "matchers/semprop.h"
#include "matchers/similarity_flooding.h"

namespace valentine {
namespace {

enum class Method {
  kCupid,
  kSimilarityFlooding,
  kComaSchema,
  kComaInstances,
  kDistribution,
  kSemProp,
  kEmbdi,
  kJaccardLevenshtein,
};

MatcherPtr MakeMatcher(Method method) {
  switch (method) {
    case Method::kCupid:
      return std::make_unique<CupidMatcher>();
    case Method::kSimilarityFlooding:
      return std::make_unique<SimilarityFloodingMatcher>();
    case Method::kComaSchema:
      return std::make_unique<ComaMatcher>();
    case Method::kComaInstances: {
      ComaOptions o;
      o.strategy = ComaStrategy::kInstances;
      return std::make_unique<ComaMatcher>(o);
    }
    case Method::kDistribution:
      return std::make_unique<DistributionBasedMatcher>();
    case Method::kSemProp:
      return std::make_unique<SemPropMatcher>(nullptr);
    case Method::kEmbdi: {
      EmbdiOptions o;
      o.max_rows = 40;
      o.walks_per_node = 1;
      o.sentence_length = 10;
      o.dimensions = 16;
      o.epochs = 1;
      return std::make_unique<EmbdiMatcher>(o);
    }
    case Method::kJaccardLevenshtein: {
      JaccardLevenshteinOptions o;
      o.max_distinct_values = 50;
      return std::make_unique<JaccardLevenshteinMatcher>(o);
    }
  }
  return nullptr;
}

class MatcherPropertyTest
    : public ::testing::TestWithParam<std::tuple<Method, Scenario>> {};

TEST_P(MatcherPropertyTest, RankingInvariants) {
  auto [method, scenario] = GetParam();
  Table original = MakeTpcdiProspect(50, 13);
  FabricationOptions fab;
  fab.scenario = scenario;
  fab.row_overlap = 0.5;
  fab.column_overlap = 0.5;
  fab.noisy_schema = true;
  fab.seed = 31;
  DatasetPair pair = FabricateDatasetPair(original, fab).ValueOrDie();

  MatcherPtr matcher = MakeMatcher(method);
  MatchResult result = matcher->Match(pair.source, pair.target);

  // Bounded size: at most one entry per column pair.
  EXPECT_LE(result.size(),
            pair.source.num_columns() * pair.target.num_columns());

  // Sorted descending; scores bounded; endpoints exist.
  for (size_t i = 0; i < result.size(); ++i) {
    const Match& m = result[i];
    if (i > 0) {
      EXPECT_LE(m.score, result[i - 1].score + 1e-12);
    }
    EXPECT_GE(m.score, -1e-9);
    EXPECT_LE(m.score, 1.0 + 1e-9);
    EXPECT_TRUE(pair.source.ColumnIndex(m.source.column).has_value())
        << m.source.column;
    EXPECT_TRUE(pair.target.ColumnIndex(m.target.column).has_value())
        << m.target.column;
    EXPECT_EQ(m.source.table, pair.source.name());
    EXPECT_EQ(m.target.table, pair.target.name());
  }

  // No duplicate pairs in the ranking.
  std::set<std::pair<std::string, std::string>> seen;
  for (const Match& m : result.matches()) {
    EXPECT_TRUE(seen.emplace(m.source.column, m.target.column).second)
        << m.source.column << "->" << m.target.column;
  }

  // Deterministic: a second run produces the identical ranking.
  MatcherPtr matcher2 = MakeMatcher(method);
  MatchResult again = matcher2->Match(pair.source, pair.target);
  ASSERT_EQ(result.size(), again.size());
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i].source.column, again[i].source.column) << i;
    EXPECT_EQ(result[i].target.column, again[i].target.column) << i;
    EXPECT_DOUBLE_EQ(result[i].score, again[i].score) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsAllScenarios, MatcherPropertyTest,
    ::testing::Combine(
        ::testing::Values(Method::kCupid, Method::kSimilarityFlooding,
                          Method::kComaSchema, Method::kComaInstances,
                          Method::kDistribution, Method::kSemProp,
                          Method::kEmbdi, Method::kJaccardLevenshtein),
        ::testing::Values(Scenario::kUnionable, Scenario::kViewUnionable,
                          Scenario::kJoinable,
                          Scenario::kSemanticallyJoinable)));

// Failure-injection: matchers must survive degenerate tables.
class MatcherEdgeCaseTest : public ::testing::TestWithParam<Method> {};

TEST_P(MatcherEdgeCaseTest, AllNullColumns) {
  Table src("s");
  Column a("a", DataType::kString);
  Column b("b", DataType::kInt64);
  for (int i = 0; i < 10; ++i) {
    a.Append(Value::Null());
    b.Append(Value::Null());
  }
  ASSERT_TRUE(src.AddColumn(std::move(a)).ok());
  ASSERT_TRUE(src.AddColumn(std::move(b)).ok());
  Table tgt = src;
  tgt.set_name("t");
  MatcherPtr matcher = MakeMatcher(GetParam());
  MatchResult r = matcher->Match(src, tgt);  // must not crash
  for (const Match& m : r.matches()) {
    EXPECT_GE(m.score, -1e-9);
  }
}

TEST_P(MatcherEdgeCaseTest, SingleRowSingleColumn) {
  Table src("s");
  Column a("only_column", DataType::kString);
  a.Append(Value::String("x"));
  ASSERT_TRUE(src.AddColumn(std::move(a)).ok());
  Table tgt = src;
  tgt.set_name("t");
  MatcherPtr matcher = MakeMatcher(GetParam());
  MatchResult r = matcher->Match(src, tgt);
  EXPECT_LE(r.size(), 1u);
}

TEST_P(MatcherEdgeCaseTest, WeirdCharactersInNamesAndValues) {
  Table src("s");
  Column a("col,with\"quote", DataType::kString);
  a.Append(Value::String("v,1"));
  a.Append(Value::String("line\nbreak"));
  a.Append(Value::String(""));
  ASSERT_TRUE(src.AddColumn(std::move(a)).ok());
  Table tgt("t");
  Column b("UPPER_case-Col", DataType::kString);
  b.Append(Value::String("v,1"));
  b.Append(Value::String("other"));
  b.Append(Value::String("third"));
  ASSERT_TRUE(tgt.AddColumn(std::move(b)).ok());
  MatcherPtr matcher = MakeMatcher(GetParam());
  MatchResult r = matcher->Match(src, tgt);  // must not crash
  EXPECT_LE(r.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MatcherEdgeCaseTest,
    ::testing::Values(Method::kCupid, Method::kSimilarityFlooding,
                      Method::kComaSchema, Method::kComaInstances,
                      Method::kDistribution, Method::kSemProp,
                      Method::kEmbdi, Method::kJaccardLevenshtein));

}  // namespace
}  // namespace valentine
