#include "matchers/semprop.h"

#include <gtest/gtest.h>

#include "datasets/chembl.h"

namespace valentine {
namespace {

Table MakeValuedTable(const std::string& name,
                      std::vector<std::pair<std::string,
                                            std::vector<std::string>>> cols) {
  Table t(name);
  for (auto& [col_name, values] : cols) {
    Column c(col_name, DataType::kString);
    for (auto& v : values) c.Append(Value::String(std::move(v)));
    EXPECT_TRUE(t.AddColumn(std::move(c)).ok());
  }
  return t;
}

Ontology SimpleOntology() {
  Ontology o;
  size_t root = o.AddClass("root", {"entity"});
  o.AddSubclass(root, "organism", {"organism", "assay organism"});
  o.AddSubclass(root, "journal", {"journal", "publication"});
  return o;
}

TEST(SemPropTest, LinksNamesToOntologyClasses) {
  Ontology o = SimpleOntology();
  SemPropMatcher m(&o);
  auto [cls, sim] = m.LinkToOntology("assay_organism");
  ASSERT_NE(cls, static_cast<size_t>(-1));
  EXPECT_EQ(o.cls(cls).name, "organism");
  EXPECT_GT(sim, 0.5);
}

TEST(SemPropTest, NoOntologyMeansNoSemanticLinks) {
  SemPropMatcher m(nullptr);
  auto [cls, sim] = m.LinkToOntology("assay_organism");
  EXPECT_EQ(cls, static_cast<size_t>(-1));
  EXPECT_DOUBLE_EQ(sim, 0.0);
}

TEST(SemPropTest, UnrelatedNameFailsThreshold) {
  Ontology o = SimpleOntology();
  SemPropOptions opt;
  opt.semantic_threshold = 0.9;
  SemPropMatcher m(&o, opt);
  auto [cls, sim] = m.LinkToOntology("zzqqxx");
  EXPECT_EQ(cls, static_cast<size_t>(-1));
}

TEST(SemPropTest, SemanticStageRelatesLinkedColumns) {
  Ontology o = SimpleOntology();
  Table src = MakeValuedTable("s", {{"organism", {"human", "mouse"}},
                                    {"journal", {"nature", "science"}}});
  Table tgt = MakeValuedTable("t", {{"assay_organism", {"rat", "dog"}},
                                    {"publication", {"cell", "jmc"}}});
  SemPropOptions opt;
  opt.minhash_threshold = 0.99;  // disable the syntactic stage
  SemPropMatcher m(&o, opt);
  MatchResult r = m.Match(src, tgt);
  ASSERT_GE(r.size(), 2u);
  // Top matches pair columns linked to the same class.
  EXPECT_EQ(r[0].source.column == "organism",
            r[0].target.column == "assay_organism");
}

TEST(SemPropTest, SyntacticFallbackOnValueOverlap) {
  // No ontology: only MinHash value overlap can produce matches.
  std::vector<std::string> shared;
  for (int i = 0; i < 50; ++i) shared.push_back("v" + std::to_string(i));
  Table src = MakeValuedTable("s", {{"left", std::vector<std::string>(shared)}});
  Table tgt = MakeValuedTable("t", {{"right", std::vector<std::string>(shared)}});
  SemPropMatcher m(nullptr);
  MatchResult r = m.Match(src, tgt);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_GT(r[0].score, 0.3);
}

TEST(SemPropTest, SyntacticFallbackRespectsThreshold) {
  Table src = MakeValuedTable("s", {{"left", {"a", "b", "c"}}});
  Table tgt = MakeValuedTable("t", {{"right", {"x", "y", "z"}}});
  SemPropMatcher m(nullptr);
  MatchResult r = m.Match(src, tgt);
  EXPECT_TRUE(r.empty());  // no overlap, no ontology -> nothing clears
}

TEST(SemPropTest, CoherenceGateSuppressesSparseLinks) {
  Ontology o = SimpleOntology();
  // Only 1 of 4 columns links to the ontology: coherence 0.25 < 0.5.
  Table src = MakeValuedTable("s", {{"organism", {"human"}},
                                    {"qqq", {"1"}},
                                    {"www", {"2"}},
                                    {"eee", {"3"}}});
  Table tgt = src;
  tgt.set_name("t");
  SemPropOptions opt;
  opt.coherent_group_threshold = 0.5;
  opt.minhash_threshold = 0.99;  // isolate the semantic stage
  // With value overlap disabled and incoherent links, only the lucky
  // syntactic identity matches would remain; threshold 0.99 blocks all
  // but identical sets (these ARE identical, so allow them) — use
  // disjoint targets instead.
  Table tgt2 = MakeValuedTable("t", {{"assay_organism", {"rat"}},
                                     {"rrr", {"9"}},
                                     {"ttt", {"8"}},
                                     {"yyy", {"7"}}});
  SemPropMatcher m(&o, opt);
  MatchResult r = m.Match(src, tgt2);
  EXPECT_TRUE(r.empty());  // semantic stage gated off by coherence
}

TEST(SemPropTest, MetadataDeclared) {
  SemPropMatcher m(nullptr);
  EXPECT_EQ(m.Name(), "SemProp");
  EXPECT_EQ(m.Category(), MatcherCategory::kHybrid);
}

TEST(SemPropTest, WorksOnChemblWithEfoOntology) {
  Ontology efo = MakeEfoLikeOntology();
  Table assays = MakeChemblAssays(100, 99);
  SemPropMatcher m(&efo);
  MatchResult r = m.Match(assays, assays);
  EXPECT_FALSE(r.empty());
  // Self-match: some identical column should appear near the top.
  bool identity_high = false;
  for (size_t i = 0; i < std::min<size_t>(r.size(), 10); ++i) {
    if (r[i].source.column == r[i].target.column) identity_high = true;
  }
  EXPECT_TRUE(identity_high);
}

}  // namespace
}  // namespace valentine
