// Discovery correctness against fabricated ground truth: a repository is
// seeded with one planted partner (fabricated from the query's original
// table, so the true correspondence is known by construction) plus
// unrelated decoys, and the planted table must rank first — for several
// verification matcher families, not just the engine default.

#include "discovery/discovery.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "datasets/chembl.h"
#include "datasets/opendata.h"
#include "datasets/tpcdi.h"
#include "fabrication/fabricator.h"
#include "matchers/coma.h"
#include "matchers/jaccard_levenshtein.h"

namespace valentine {
namespace {

MatcherPtr MakeVerifier(const std::string& name) {
  if (name == "JaccardLevenshtein") {
    return std::make_unique<JaccardLevenshteinMatcher>();
  }
  if (name == "ComaInstances") {
    ComaOptions opt;
    opt.strategy = ComaStrategy::kInstances;
    return std::make_unique<ComaMatcher>(opt);
  }
  ADD_FAILURE() << "unknown verifier " << name;
  return nullptr;
}

class DiscoveryGroundTruthTest : public ::testing::TestWithParam<std::string> {
};

// Decoy for the joinable scenario. Fuzzy instance matchers saturate at
// 1.0 between any two numeric-ID columns and between shared categorical
// domains (country, street), so realistic decoy tables tie the planted
// partner at the best-single-column table score and the ranking
// degenerates to the name tie-break. This decoy instead overlaps the
// query weakly: it copies every `stride`-th distinct value of the
// query's first string column (enough containment to be nominated as a
// join candidate) and pads the rest with synthetic tokens that no query
// domain resembles — far below the planted join column's overlap.
Table MakeJoinDecoy(const Table& query, const std::string& name,
                    size_t stride, uint32_t seed) {
  std::vector<std::string> values;
  for (const Column& c : query.columns()) {
    if (c.type() != DataType::kString) continue;
    auto distinct = c.DistinctStringSet();
    std::vector<std::string> sorted(distinct.begin(), distinct.end());
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size(); i += stride) {
      values.push_back(sorted[i]);
    }
    break;
  }
  while (values.size() < 60) {
    values.push_back("decoy_" + std::to_string(seed) + "_" +
                     std::to_string(values.size()));
  }
  std::vector<Value> cells;
  cells.reserve(values.size());
  for (const std::string& v : values) cells.push_back(Value::String(v));
  Table decoy(name);
  EXPECT_TRUE(
      decoy.AddColumn(Column("mystery_key", DataType::kString, cells)).ok());
  return decoy;
}

// Joinable scenario: the fabricated target shares a join column's value
// domain with the query, the decoys share nothing; the planted partner
// must rank first with a strictly positive score.
TEST_P(DiscoveryGroundTruthTest, PlantedJoinablePartnerRanksFirst) {
  Table prospect = MakeTpcdiProspect(150, 31);
  FabricationOptions fab;
  fab.scenario = Scenario::kJoinable;
  fab.column_overlap = 0.8;
  fab.seed = 11;
  DatasetPair split = FabricateDatasetPair(prospect, fab).ValueOrDie();
  ASSERT_FALSE(split.ground_truth.empty());

  DiscoveryOptions opt;
  opt.matcher = MakeVerifier(GetParam());
  DiscoveryEngine engine(std::move(opt));
  Table partner = split.target;
  partner.set_name("planted_partner");
  Table query = split.source;
  query.set_name("query");
  ASSERT_TRUE(engine.AddTable(std::move(partner)).ok());
  ASSERT_TRUE(
      engine.AddTable(MakeJoinDecoy(query, "decoy_weak_overlap", 3, 7)).ok());
  ASSERT_TRUE(
      engine.AddTable(MakeJoinDecoy(query, "decoy_faint_overlap", 6, 9)).ok());

  auto results = engine.FindJoinable(query, 3);
  ASSERT_FALSE(results.empty()) << GetParam();
  EXPECT_EQ(results[0].table_name, "planted_partner") << GetParam();
  EXPECT_GT(results[0].score, 0.0) << GetParam();
  EXPECT_FALSE(results[0].evidence.empty()) << GetParam();
}

// Unionable scenario: the fabricated target is a row-shard of the same
// schema; it must outrank every decoy in FindUnionable.
TEST_P(DiscoveryGroundTruthTest, PlantedUnionableShardRanksFirst) {
  Table prospect = MakeTpcdiProspect(150, 31);
  FabricationOptions fab;
  fab.scenario = Scenario::kUnionable;
  fab.row_overlap = 0.4;
  fab.seed = 12;
  DatasetPair split = FabricateDatasetPair(prospect, fab).ValueOrDie();
  ASSERT_FALSE(split.ground_truth.empty());

  DiscoveryOptions opt;
  opt.matcher = MakeVerifier(GetParam());
  DiscoveryEngine engine(std::move(opt));
  Table shard = split.target;
  shard.set_name("planted_shard");
  ASSERT_TRUE(engine.AddTable(std::move(shard)).ok());
  ASSERT_TRUE(engine.AddTable(MakeOpenDataTable(150, 4711)).ok());
  ASSERT_TRUE(engine.AddTable(MakeChemblAssays(150, 99)).ok());

  Table query = split.source;
  query.set_name("query");
  auto results = engine.FindUnionable(query, 3);
  ASSERT_EQ(results.size(), 3u) << GetParam();
  EXPECT_EQ(results[0].table_name, "planted_shard") << GetParam();
  EXPECT_GT(results[0].score, results[1].score) << GetParam();
}

// The discovered evidence must point at genuine ground-truth columns:
// the top evidence match of the planted partner is a fabricated
// correspondence, not a spurious decoy alignment.
TEST_P(DiscoveryGroundTruthTest, TopEvidenceIsAGroundTruthCorrespondence) {
  Table prospect = MakeTpcdiProspect(150, 31);
  FabricationOptions fab;
  fab.scenario = Scenario::kUnionable;
  fab.row_overlap = 0.5;
  fab.seed = 13;
  DatasetPair split = FabricateDatasetPair(prospect, fab).ValueOrDie();
  ASSERT_FALSE(split.ground_truth.empty());

  DiscoveryOptions opt;
  opt.matcher = MakeVerifier(GetParam());
  DiscoveryEngine engine(std::move(opt));
  Table shard = split.target;
  shard.set_name("planted_shard");
  ASSERT_TRUE(engine.AddTable(std::move(shard)).ok());
  ASSERT_TRUE(engine.AddTable(MakeOpenDataTable(150, 4711)).ok());

  Table query = split.source;
  query.set_name("query");
  auto results = engine.FindUnionable(query, 1);
  ASSERT_EQ(results.size(), 1u) << GetParam();
  ASSERT_FALSE(results[0].evidence.empty()) << GetParam();
  const Match& top = results[0].evidence[0];
  bool in_ground_truth = false;
  for (const auto& gt : split.ground_truth) {
    if (gt.source_column == top.source.column &&
        gt.target_column == top.target.column) {
      in_ground_truth = true;
      break;
    }
  }
  EXPECT_TRUE(in_ground_truth)
      << GetParam() << ": top evidence " << top.source.column << " ~ "
      << top.target.column << " is not a fabricated correspondence";
}

INSTANTIATE_TEST_SUITE_P(Verifiers, DiscoveryGroundTruthTest,
                         ::testing::Values("JaccardLevenshtein",
                                           "ComaInstances"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace valentine
