#include "fabrication/fabricator.h"

#include <gtest/gtest.h>

#include <set>

#include "datasets/tpcdi.h"

namespace valentine {
namespace {

Table SmallOriginal() { return MakeTpcdiProspect(120, 1); }

TEST(FabricatorTest, RejectsDegenerateInputs) {
  Table one_col("t");
  Column c("only", DataType::kInt64);
  c.Append(Value::Int(1));
  ASSERT_TRUE(one_col.AddColumn(std::move(c)).ok());
  FabricationOptions opt;
  EXPECT_FALSE(FabricateDatasetPair(one_col, opt).ok());

  Table empty_rows("t");
  ASSERT_TRUE(empty_rows.AddColumn(Column("a", DataType::kInt64)).ok());
  ASSERT_TRUE(empty_rows.AddColumn(Column("b", DataType::kInt64)).ok());
  EXPECT_FALSE(FabricateDatasetPair(empty_rows, opt).ok());
}

TEST(FabricatorTest, UnionableKeepsAllColumnsBothSides) {
  Table original = SmallOriginal();
  FabricationOptions opt;
  opt.scenario = Scenario::kUnionable;
  opt.row_overlap = 0.5;
  auto pair = FabricateDatasetPair(original, opt);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->source.num_columns(), original.num_columns());
  EXPECT_EQ(pair->target.num_columns(), original.num_columns());
  EXPECT_EQ(pair->ground_truth.size(), original.num_columns());
  EXPECT_LT(pair->source.num_rows(), original.num_rows());
}

TEST(FabricatorTest, ViewUnionableHasNoRowOverlapAndSharedSubset) {
  Table original = SmallOriginal();
  FabricationOptions opt;
  opt.scenario = Scenario::kViewUnionable;
  opt.column_overlap = 0.5;
  opt.row_overlap = 0.9;  // must be ignored (forced to 0)
  auto pair = FabricateDatasetPair(original, opt);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->source.num_rows() + pair->target.num_rows(),
            original.num_rows());
  EXPECT_LT(pair->ground_truth.size(), original.num_columns());
  EXPECT_GE(pair->ground_truth.size(), 1u);
  // Both shards smaller than the original column-wise.
  EXPECT_LT(pair->source.num_columns(), original.num_columns());
  EXPECT_LT(pair->target.num_columns(), original.num_columns());
}

TEST(FabricatorTest, JoinableKeepsAllRowsByDefault) {
  Table original = SmallOriginal();
  FabricationOptions opt;
  opt.scenario = Scenario::kJoinable;
  opt.column_overlap = 0.3;
  auto pair = FabricateDatasetPair(original, opt);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->source.num_rows(), original.num_rows());
  EXPECT_EQ(pair->target.num_rows(), original.num_rows());
}

TEST(FabricatorTest, JoinableHorizontalVariantSplitsRows) {
  Table original = SmallOriginal();
  FabricationOptions opt;
  opt.scenario = Scenario::kJoinable;
  opt.joinable_horizontal_variant = true;
  auto pair = FabricateDatasetPair(original, opt);
  ASSERT_TRUE(pair.ok());
  EXPECT_LT(pair->source.num_rows(), original.num_rows());
}

TEST(FabricatorTest, JoinableIgnoresInstanceNoiseFlag) {
  Table original = SmallOriginal();
  FabricationOptions opt;
  opt.scenario = Scenario::kJoinable;
  opt.noisy_instances = true;  // must be forced off for "classical" join
  opt.column_overlap = 1.0;
  auto pair = FabricateDatasetPair(original, opt);
  ASSERT_TRUE(pair.ok());
  EXPECT_NE(pair->id.find("_verbatimInst"), std::string::npos);
  // Shared columns carry identical values row-for-row.
  const Column* src_col = pair->source.FindColumn("age");
  const Column* tgt_col = pair->target.FindColumn("age");
  if (src_col != nullptr && tgt_col != nullptr) {
    for (size_t i = 0; i < src_col->size(); ++i) {
      EXPECT_TRUE((*src_col)[i] == (*tgt_col)[i]);
    }
  }
}

TEST(FabricatorTest, SemanticallyJoinableForcesNoise) {
  Table original = SmallOriginal();
  FabricationOptions opt;
  opt.scenario = Scenario::kSemanticallyJoinable;
  opt.noisy_instances = false;  // must be forced ON
  opt.column_overlap = 1.0;
  auto pair = FabricateDatasetPair(original, opt);
  ASSERT_TRUE(pair.ok());
  EXPECT_NE(pair->id.find("_noisyInst"), std::string::npos);
  // At least one shared cell must differ from the source side.
  bool any_diff = false;
  for (const auto& gt : pair->ground_truth) {
    const Column* s = pair->source.FindColumn(gt.source_column);
    const Column* t = pair->target.FindColumn(gt.target_column);
    ASSERT_NE(s, nullptr);
    ASSERT_NE(t, nullptr);
    for (size_t i = 0; i < std::min(s->size(), t->size()); ++i) {
      if (!((*s)[i] == (*t)[i])) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(FabricatorTest, SchemaNoiseRenamesTargetAndGroundTruthTracks) {
  Table original = SmallOriginal();
  FabricationOptions opt;
  opt.scenario = Scenario::kUnionable;
  opt.noisy_schema = true;
  auto pair = FabricateDatasetPair(original, opt);
  ASSERT_TRUE(pair.ok());
  size_t renamed = 0;
  for (const auto& gt : pair->ground_truth) {
    EXPECT_NE(pair->source.ColumnIndex(gt.source_column), std::nullopt);
    EXPECT_NE(pair->target.ColumnIndex(gt.target_column), std::nullopt);
    if (gt.source_column != gt.target_column) ++renamed;
  }
  EXPECT_GT(renamed, original.num_columns() / 2);
}

TEST(FabricatorTest, DeterministicUnderSeed) {
  Table original = SmallOriginal();
  FabricationOptions opt;
  opt.scenario = Scenario::kViewUnionable;
  opt.noisy_schema = true;
  opt.seed = 99;
  auto p1 = FabricateDatasetPair(original, opt);
  auto p2 = FabricateDatasetPair(original, opt);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->source.ColumnNames(), p2->source.ColumnNames());
  EXPECT_EQ(p1->target.ColumnNames(), p2->target.ColumnNames());
  EXPECT_EQ(p1->ground_truth.size(), p2->ground_truth.size());
}

TEST(FabricatorTest, IdEncodesConfiguration) {
  Table original = SmallOriginal();
  FabricationOptions opt;
  opt.scenario = Scenario::kUnionable;
  opt.noisy_schema = true;
  opt.noisy_instances = true;
  opt.seed = 5;
  auto pair = FabricateDatasetPair(original, opt);
  ASSERT_TRUE(pair.ok());
  EXPECT_NE(pair->id.find("Unionable"), std::string::npos);
  EXPECT_NE(pair->id.find("_noisySchema"), std::string::npos);
  EXPECT_NE(pair->id.find("_noisyInst"), std::string::npos);
  EXPECT_NE(pair->id.find("_s5"), std::string::npos);
}

TEST(ScenarioNameTest, AllNamed) {
  EXPECT_STREQ(ScenarioName(Scenario::kUnionable), "Unionable");
  EXPECT_STREQ(ScenarioName(Scenario::kViewUnionable), "View-Unionable");
  EXPECT_STREQ(ScenarioName(Scenario::kJoinable), "Joinable");
  EXPECT_STREQ(ScenarioName(Scenario::kSemanticallyJoinable),
               "Semantically-Joinable");
}

// Property sweep: for every scenario and overlap, ground truth is
// non-empty and references existing columns on both sides.
class FabricatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<Scenario, double, bool>> {};

TEST_P(FabricatorPropertyTest, GroundTruthConsistent) {
  auto [scenario, overlap, noisy] = GetParam();
  Table original = SmallOriginal();
  FabricationOptions opt;
  opt.scenario = scenario;
  opt.row_overlap = overlap;
  opt.column_overlap = overlap;
  opt.noisy_schema = noisy;
  opt.noisy_instances = noisy;
  opt.seed = 3;
  auto pair = FabricateDatasetPair(original, opt);
  ASSERT_TRUE(pair.ok());
  EXPECT_GE(pair->ground_truth.size(), 1u);
  std::set<std::string> seen;
  for (const auto& gt : pair->ground_truth) {
    EXPECT_TRUE(pair->source.ColumnIndex(gt.source_column).has_value())
        << gt.source_column;
    EXPECT_TRUE(pair->target.ColumnIndex(gt.target_column).has_value())
        << gt.target_column;
    EXPECT_TRUE(seen.insert(gt.source_column + "->" + gt.target_column)
                    .second);  // no duplicate entries
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, FabricatorPropertyTest,
    ::testing::Combine(::testing::Values(Scenario::kUnionable,
                                         Scenario::kViewUnionable,
                                         Scenario::kJoinable,
                                         Scenario::kSemanticallyJoinable),
                       ::testing::Values(0.1, 0.5, 0.9),
                       ::testing::Bool()));

}  // namespace
}  // namespace valentine
