#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

using Tokens = std::vector<std::string>;

TEST(TokenizeIdentifierTest, SnakeCase) {
  EXPECT_EQ(TokenizeIdentifier("customer_address"),
            (Tokens{"customer", "address"}));
}

TEST(TokenizeIdentifierTest, CamelCase) {
  EXPECT_EQ(TokenizeIdentifier("custAddressLine"),
            (Tokens{"cust", "address", "line"}));
}

TEST(TokenizeIdentifierTest, DigitBoundaries) {
  EXPECT_EQ(TokenizeIdentifier("addressLine1"),
            (Tokens{"address", "line", "1"}));
  EXPECT_EQ(TokenizeIdentifier("line1b"), (Tokens{"line", "1", "b"}));
}

TEST(TokenizeIdentifierTest, AcronymRun) {
  EXPECT_EQ(TokenizeIdentifier("HTTPServer"), (Tokens{"http", "server"}));
}

TEST(TokenizeIdentifierTest, MixedSeparators) {
  EXPECT_EQ(TokenizeIdentifier("owner-team name"),
            (Tokens{"owner", "team", "name"}));
}

TEST(TokenizeIdentifierTest, Empty) {
  EXPECT_TRUE(TokenizeIdentifier("").empty());
  EXPECT_TRUE(TokenizeIdentifier("___").empty());
}

TEST(TokenizeIdentifierTest, Lowercases) {
  EXPECT_EQ(TokenizeIdentifier("NAME"), (Tokens{"name"}));
}

TEST(TokenizeTextTest, PunctuationAndCase) {
  EXPECT_EQ(TokenizeText("Hello, World! 42"),
            (Tokens{"hello", "world", "42"}));
  EXPECT_TRUE(TokenizeText("...").empty());
  EXPECT_TRUE(TokenizeText("").empty());
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD_42"), "mixed_42");
}

TEST(JoinTokensTest, Separators) {
  EXPECT_EQ(JoinTokens({"a", "b", "c"}), "a b c");
  EXPECT_EQ(JoinTokens({"a", "b"}, "_"), "a_b");
  EXPECT_EQ(JoinTokens({}), "");
}

}  // namespace
}  // namespace valentine
