#include "knowledge/word2vec.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

// Two "topics" whose words only co-occur within their topic; embeddings
// should separate them.
std::vector<std::vector<std::string>> TopicCorpus() {
  std::vector<std::vector<std::string>> sentences;
  for (int i = 0; i < 120; ++i) {
    sentences.push_back({"cat", "dog", "pet", "fur", "cat", "dog"});
    sentences.push_back({"sql", "table", "query", "index", "sql", "table"});
  }
  return sentences;
}

TEST(Word2VecTest, BuildsVocabulary) {
  Word2VecOptions o;
  o.dimensions = 16;
  o.epochs = 1;
  Word2Vec model(o);
  model.Train(TopicCorpus());
  EXPECT_EQ(model.vocab_size(), 8u);
  EXPECT_NE(model.Vector("cat"), nullptr);
  EXPECT_EQ(model.Vector("banana"), nullptr);
}

TEST(Word2VecTest, VectorDimensions) {
  Word2VecOptions o;
  o.dimensions = 24;
  o.epochs = 1;
  Word2Vec model(o);
  model.Train(TopicCorpus());
  EXPECT_EQ(model.Vector("dog")->size(), 24u);
}

TEST(Word2VecTest, CooccurringWordsCloserThanCrossTopic) {
  Word2VecOptions o;
  o.dimensions = 32;
  o.epochs = 8;
  o.seed = 5;
  Word2Vec model(o);
  model.Train(TopicCorpus());
  double within =
      CosineSimilarity(*model.Vector("cat"), *model.Vector("dog"));
  double across =
      CosineSimilarity(*model.Vector("cat"), *model.Vector("sql"));
  EXPECT_GT(within, across);
}

TEST(Word2VecTest, DeterministicUnderSeed) {
  auto corpus = TopicCorpus();
  Word2VecOptions o;
  o.dimensions = 16;
  o.epochs = 2;
  o.seed = 11;
  Word2Vec m1(o);
  Word2Vec m2(o);
  m1.Train(corpus);
  m2.Train(corpus);
  EXPECT_EQ(*m1.Vector("cat"), *m2.Vector("cat"));
}

TEST(Word2VecTest, MinCountFiltersRareWords) {
  std::vector<std::vector<std::string>> corpus = {
      {"common", "common", "common", "rare"},
      {"common", "common", "common"},
  };
  Word2VecOptions o;
  o.min_count = 2;
  o.dimensions = 8;
  o.epochs = 1;
  Word2Vec model(o);
  model.Train(corpus);
  EXPECT_NE(model.Vector("common"), nullptr);
  EXPECT_EQ(model.Vector("rare"), nullptr);
}

TEST(Word2VecTest, EmptyCorpusIsSafe) {
  Word2Vec model;
  model.Train({});
  EXPECT_EQ(model.vocab_size(), 0u);
  EXPECT_EQ(model.Vector("x"), nullptr);
}

TEST(Word2VecTest, SingleWordCorpusIsSafe) {
  Word2Vec model;
  model.Train({{"only"}});
  EXPECT_EQ(model.vocab_size(), 1u);
}

}  // namespace
}  // namespace valentine
