// Thread-safety tests for the serving registry (tsan-labelled):
// concurrent table register/unregister racing discovery queries through
// DiscoveryService::Handle. The copy-on-write contract under test:
// queries never crash, never see a half-built engine, and a snapshot
// taken before the churn keeps answering byte-identically to a direct
// engine over the stable tables — no matter what mutates around it.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/service.h"
#include "serve_test_util.h"

namespace valentine {
namespace serve {
namespace {

using testing::MakeServeTable;
using testing::ServeTableJson;

HttpRequest MakeRequest(const std::string& method, const std::string& target,
                        const std::string& body = "") {
  HttpRequest r;
  r.method = method;
  r.target = target;
  r.version = "HTTP/1.1";
  r.body = body;
  return r;
}

TEST(ServeConcurrency, RegistrationChurnRacesQueries) {
  constexpr int kChurnThreads = 2;
  constexpr int kQueryThreads = 2;
  constexpr int kChurnIters = 25;
  constexpr int kQueryIters = 15;

  DiscoveryService service;
  DiscoveryEngine direct;
  for (int i = 0; i < 3; ++i) {
    Table t = MakeServeTable("stable_" + std::to_string(i), 20, i + 2);
    ASSERT_TRUE(service.RegisterTable(t).ok());
    ASSERT_TRUE(direct.AddTable(std::move(t)).ok());
  }
  const Table query = MakeServeTable("q", 20, 3);
  const std::string expected = RenderDiscoveryResults(
      "q", "unionable", 3, direct.FindUnionable(query, 3));

  // The snapshot predates every churn below; under COW it must keep
  // answering byte-identically while mutations race past it.
  std::shared_ptr<const DiscoveryEngine> snapshot = service.Snapshot();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;

  for (int t = 0; t < kChurnThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kChurnIters; ++i) {
        std::string name =
            "churn_" + std::to_string(t) + "_" + std::to_string(i);
        HttpResponse reg = service.Handle(MakeRequest(
            "POST", "/v1/tables", ServeTableJson(name, 8, t + 4)));
        if (reg.status != 200) ++failures;
        HttpResponse unreg =
            service.Handle(MakeRequest("DELETE", "/v1/tables/" + name));
        if (unreg.status != 200) ++failures;
      }
    });
  }

  const std::string query_body =
      "{\"table\":" + ServeTableJson("q", 20, 3) + ",\"k\":3}";
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kQueryIters; ++i) {
        // Live query: must always answer 200 with parseable JSON, no
        // matter which churn generation it lands on.
        HttpResponse r = service.Handle(
            MakeRequest("POST", "/v1/discovery/unionable", query_body));
        if (r.status != 200 || !ParseJson(r.body).ok()) ++failures;
        // Snapshot query: byte-identical to the direct engine, always.
        std::string from_snapshot = RenderDiscoveryResults(
            "q", "unionable", 3, snapshot->FindUnionable(query, 3));
        if (from_snapshot != expected) ++failures;
      }
    });
  }

  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // All churn tables are gone: the service now answers byte-identically
  // to the direct engine over exactly the stable tables.
  EXPECT_EQ(service.num_tables(), 3u);
  HttpResponse final_response = service.Handle(
      MakeRequest("POST", "/v1/discovery/unionable", query_body));
  ASSERT_EQ(final_response.status, 200) << final_response.body;
  EXPECT_EQ(final_response.body, expected);
}

TEST(ServeConcurrency, ParallelQueriesOnOneSnapshotAgree) {
  DiscoveryService service;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        service
            .RegisterTable(MakeServeTable("t" + std::to_string(i), 25, i + 2))
            .ok());
  }
  const std::string body =
      "{\"table\":" + ServeTableJson("q", 25, 3) + ",\"k\":4}";
  HttpResponse reference =
      service.Handle(MakeRequest("POST", "/v1/discovery/joinable", body));
  ASSERT_EQ(reference.status, 200);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        HttpResponse r = service.Handle(
            MakeRequest("POST", "/v1/discovery/joinable", body));
        if (r.status != 200 || r.body != reference.body) ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace valentine
