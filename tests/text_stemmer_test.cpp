#include "text/stemmer.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

TEST(StemmerTest, Plurals) {
  EXPECT_EQ(StemToken("addresses"), "address");
  EXPECT_EQ(StemToken("cities"), "city");
  EXPECT_EQ(StemToken("cars"), "car");
  EXPECT_EQ(StemToken("class"), "class");  // -ss untouched
}

TEST(StemmerTest, IngAndEd) {
  EXPECT_EQ(StemToken("owning"), "own");
  EXPECT_EQ(StemToken("running"), "run");
  EXPECT_EQ(StemToken("stopped"), "stop");
  EXPECT_EQ(StemToken("rated"), "rat");  // crude but deterministic
}

TEST(StemmerTest, ShortTokensUntouched) {
  EXPECT_EQ(StemToken("id"), "id");
  EXPECT_EQ(StemToken("age"), "age");
  EXPECT_EQ(StemToken("js"), "js");
}

TEST(StemmerTest, IngWithoutVowelStemKept) {
  // "string" minus "ing" leaves "str" (no vowel): keep intact.
  EXPECT_EQ(StemToken("string"), "string");
}

TEST(StemmerTest, DerivationalEndings) {
  EXPECT_EQ(StemToken("organization"), "organize");
  EXPECT_EQ(StemToken("payment"), "pay");
  EXPECT_EQ(StemToken("darkness"), "dark");
}

TEST(StemmerTest, StemTokensMapsAll) {
  auto out = StemTokens({"addresses", "cities"});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "address");
  EXPECT_EQ(out[1], "city");
}

TEST(StemmerTest, IdempotentOnCommonSchemaWords) {
  for (const char* w : {"name", "city", "state", "country", "income",
                        "status", "team", "genre"}) {
    std::string once = StemToken(w);
    EXPECT_EQ(StemToken(once), once) << w;
  }
}

}  // namespace
}  // namespace valentine
