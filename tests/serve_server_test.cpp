// Socket-level tests for the HTTP server (serve/server.h): the full
// stack over real loopback connections — golden endpoints, wire-level
// byte identity with a direct engine, robustness against malformed and
// torn requests, keep-alive, and graceful drain with cooperative
// cancellation.

#include "serve/server.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "http_client.h"
#include "serve_test_util.h"

namespace valentine {
namespace serve {
namespace {

using testing::BlockingMatcher;
using testing::HttpClientResponse;
using testing::HttpFetch;
using testing::HttpSendRaw;
using testing::MakeServeTable;
using testing::ServeTableJson;

class ServeServerTest : public ::testing::Test {
 protected:
  void StartServer(ServiceOptions service_opt = {},
                   ServerOptions server_opt = {}) {
    service_ = std::make_unique<DiscoveryService>(std::move(service_opt));
    server_ = std::make_unique<HttpServer>(service_.get(), server_opt);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    port_ = server_->port();
  }

  Result<HttpClientResponse> Fetch(const std::string& method,
                                   const std::string& target,
                                   const std::string& body = "") {
    return HttpFetch("127.0.0.1", port_, method, target, body,
                     /*timeout_ms=*/30000);
  }

  std::unique_ptr<DiscoveryService> service_;
  std::unique_ptr<HttpServer> server_;
  uint16_t port_ = 0;
};

TEST_F(ServeServerTest, HealthzOverTheWire) {
  StartServer();
  Result<HttpClientResponse> r = Fetch("GET", "/healthz");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().status, 200);
  EXPECT_EQ(r.ValueOrDie().body, "{\"status\":\"ok\",\"tables\":0}");
  EXPECT_EQ(r.ValueOrDie().Header("content-type"), "application/json");
}

TEST_F(ServeServerTest, FullLifecycleAndWireByteIdentity) {
  StartServer();
  // Register over HTTP; query over HTTP; compare bytes against a
  // directly-driven engine rendered through the same canonical path.
  ASSERT_EQ(
      Fetch("POST", "/v1/tables", ServeTableJson("warehouse", 25, 2))
          .ValueOrDie()
          .status,
      200);
  ASSERT_EQ(
      Fetch("POST", "/v1/tables", ServeTableJson("shipments", 25, 5))
          .ValueOrDie()
          .status,
      200);

  DiscoveryEngine direct;
  ASSERT_TRUE(direct.AddTable(MakeServeTable("shipments", 25, 5)).ok());
  ASSERT_TRUE(direct.AddTable(MakeServeTable("warehouse", 25, 2)).ok());
  Table query = MakeServeTable("q", 25, 2);

  for (const std::string mode : {"joinable", "unionable"}) {
    Result<HttpClientResponse> served =
        Fetch("POST", "/v1/discovery/" + mode,
              "{\"table\":" + ServeTableJson("q", 25, 2) + ",\"k\":2}");
    ASSERT_TRUE(served.ok());
    ASSERT_EQ(served.ValueOrDie().status, 200) << served.ValueOrDie().body;
    std::vector<DiscoveryResult> expected =
        mode == "joinable" ? direct.FindJoinable(query, 2)
                           : direct.FindUnionable(query, 2);
    EXPECT_EQ(served.ValueOrDie().body,
              RenderDiscoveryResults("q", mode, 2, expected))
        << "mode=" << mode;
  }
  EXPECT_EQ(Fetch("DELETE", "/v1/tables/warehouse").ValueOrDie().status,
            200);
}

TEST_F(ServeServerTest, ErrorEnvelopeRoundTripsOverTheWire) {
  StartServer();
  Result<HttpClientResponse> r = Fetch("GET", "/v1/no/such/route");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().status, 404);
  Result<JsonValue> body = ParseJson(r.ValueOrDie().body);
  ASSERT_TRUE(body.ok());
  const JsonValue* error = body.ValueOrDie().Find("error");
  ASSERT_NE(error, nullptr);
  std::optional<StatusCode> code =
      StatusCodeFromName(error->Find("code")->string_value());
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, StatusCode::kNotFound);
}

TEST_F(ServeServerTest, ZeroBudgetAnswers504OverTheWire) {
  StartServer();
  ASSERT_EQ(Fetch("POST", "/v1/tables", ServeTableJson("repo", 20, 3))
                .ValueOrDie()
                .status,
            200);
  Result<HttpClientResponse> r =
      Fetch("POST", "/v1/discovery/joinable",
            "{\"table\":" + ServeTableJson("q", 20, 3) +
                ",\"budget_ms\":0}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().status, 504);
  EXPECT_NE(r.ValueOrDie().body.find("\"DeadlineExceeded\""),
            std::string::npos);
}

TEST_F(ServeServerTest, MalformedRequestsAnswerParserStatus) {
  StartServer();
  Result<std::string> raw =
      HttpSendRaw("127.0.0.1", port_, "GARBAGE LINE\r\n\r\n");
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw.ValueOrDie().find("HTTP/1.1 400 "), std::string::npos)
      << raw.ValueOrDie();

  Result<std::string> huge = HttpSendRaw(
      "127.0.0.1", port_,
      "POST /v1/tables HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n");
  ASSERT_TRUE(huge.ok());
  EXPECT_NE(huge.ValueOrDie().find("HTTP/1.1 413 "), std::string::npos)
      << huge.ValueOrDie();
}

TEST_F(ServeServerTest, TornRequestAnswers408AndCloses) {
  ServerOptions opt;
  opt.read_timeout_ms = 200;  // keep the test fast
  StartServer({}, opt);
  // Promise 100 body bytes, send 3, go silent: the read timeout must
  // surface as a 408, not a hung worker.
  Result<std::string> raw = HttpSendRaw(
      "127.0.0.1", port_,
      "POST /v1/tables HTTP/1.1\r\nContent-Length: 100\r\n\r\nabc");
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw.ValueOrDie().find("HTTP/1.1 408 "), std::string::npos)
      << raw.ValueOrDie();
  // And the server is still healthy for the next client.
  EXPECT_EQ(Fetch("GET", "/healthz").ValueOrDie().status, 200);
}

TEST_F(ServeServerTest, KeepAliveServesSequentialRequests) {
  StartServer();
  const std::string two_gets =
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  Result<std::string> raw = HttpSendRaw("127.0.0.1", port_, two_gets);
  ASSERT_TRUE(raw.ok());
  const std::string& wire = raw.ValueOrDie();
  size_t first = wire.find("HTTP/1.1 200 OK");
  ASSERT_NE(first, std::string::npos);
  size_t second = wire.find("HTTP/1.1 200 OK", first + 1);
  EXPECT_NE(second, std::string::npos)
      << "second pipelined response missing:\n"
      << wire;
  EXPECT_NE(wire.find("Connection: keep-alive"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close"), std::string::npos);
}

TEST_F(ServeServerTest, ShedResponseCarriesRetryAfter) {
  std::atomic<bool> gate{false};
  std::atomic<int> active{0};
  ServiceOptions service_opt;
  service_opt.matcher_factory = [&] {
    return std::make_unique<BlockingMatcher>(&gate, &active);
  };
  ServerOptions server_opt;
  server_opt.workers = 1;
  server_opt.queue_capacity = 1;
  server_opt.read_timeout_ms = 500;
  StartServer(std::move(service_opt), server_opt);
  ASSERT_EQ(Fetch("POST", "/v1/tables", ServeTableJson("repo", 10, 3))
                .ValueOrDie()
                .status,
            200);
  const uint64_t base_admitted = server_->admitted_total();

  // Occupy the single worker with a request that parks in the matcher.
  const std::string body =
      "{\"table\":" + ServeTableJson("q", 10, 5) + "}";
  std::thread blocked([&] {
    Result<HttpClientResponse> r =
        Fetch("POST", "/v1/discovery/unionable", body);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.ValueOrDie().status, 200);
  });
  while (active.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Fill the queue with an idle raw connection, then probe: the probe
  // must be shed synchronously with 503 + Retry-After — no waiting on
  // the parked worker.
  int filler = testing::HttpConnect("127.0.0.1", port_);
  ASSERT_GE(filler, 0);
  while (server_->admitted_total() < base_admitted + 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Result<HttpClientResponse> shed = Fetch("GET", "/healthz");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed.ValueOrDie().status, 503);
  EXPECT_FALSE(shed.ValueOrDie().Header("retry-after").empty());
  EXPECT_NE(shed.ValueOrDie().body.find("\"ResourceExhausted\""),
            std::string::npos);
  EXPECT_EQ(server_->shed_total(), 1u);

  close(filler);
  gate = true;
  blocked.join();
}

TEST_F(ServeServerTest, DrainCancelsInFlightWorkAs503) {
  std::atomic<bool> gate{false};
  std::atomic<int> active{0};
  ServiceOptions service_opt;
  service_opt.matcher_factory = [&] {
    return std::make_unique<BlockingMatcher>(&gate, &active);
  };
  StartServer(std::move(service_opt));
  ASSERT_EQ(Fetch("POST", "/v1/tables", ServeTableJson("repo", 10, 3))
                .ValueOrDie()
                .status,
            200);

  std::thread victim([&] {
    Result<HttpClientResponse> r =
        Fetch("POST", "/v1/discovery/unionable",
              "{\"table\":" + ServeTableJson("q", 10, 5) + "}");
    // The drain must cut this request off with a *response*, not a
    // dropped connection: 503 Cancelled, Retry-After set.
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie().status, 503);
    EXPECT_NE(r.ValueOrDie().body.find("\"Cancelled\""), std::string::npos);
    EXPECT_FALSE(r.ValueOrDie().Header("retry-after").empty());
  });
  while (active.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Short drain budget: the parked matcher never finishes on its own,
  // so Shutdown must cancel it cooperatively and still join cleanly.
  server_->Shutdown(/*drain_ms=*/50.0);
  victim.join();
  EXPECT_FALSE(server_->running());
  // The gate was never opened — completion came from cancellation.
  EXPECT_EQ(active.load(), 0);
}

TEST_F(ServeServerTest, ShutdownWithIdleServerIsImmediate) {
  StartServer();
  server_->Shutdown(/*drain_ms=*/5000.0);
  EXPECT_FALSE(server_->running());
  // Idempotent.
  server_->Shutdown(/*drain_ms=*/5000.0);
}

}  // namespace
}  // namespace serve
}  // namespace valentine
