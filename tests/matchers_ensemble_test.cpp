// Tests for the rank-fusion ensemble — the paper's §IX recommendation
// ("composing state-of-the-art matching methods should be the preferred
// way in dataset discovery").

#include "matchers/ensemble.h"

#include <gtest/gtest.h>

#include "datasets/tpcdi.h"
#include "fabrication/fabricator.h"
#include "matchers/coma.h"
#include "matchers/cupid.h"
#include "matchers/jaccard_levenshtein.h"
#include "metrics/metrics.h"

namespace valentine {
namespace {

Table MakeValued(const std::string& name,
                 std::vector<std::pair<std::string,
                                       std::vector<std::string>>> cols) {
  Table t(name);
  for (auto& [col_name, values] : cols) {
    Column c(col_name, DataType::kString);
    for (auto& v : values) c.Append(Value::String(std::move(v)));
    EXPECT_TRUE(t.AddColumn(std::move(c)).ok());
  }
  return t;
}

std::vector<MatcherPtr> TwoMembers() {
  std::vector<MatcherPtr> members;
  members.push_back(std::make_unique<CupidMatcher>());
  members.push_back(std::make_unique<JaccardLevenshteinMatcher>());
  return members;
}

TEST(EnsembleTest, NameAndCapabilitiesUnionMembers) {
  EnsembleMatcher e(TwoMembers());
  EXPECT_EQ(e.Name(), "Ensemble(Cupid+JaccardLevenshtein)");
  EXPECT_EQ(e.Category(), MatcherCategory::kHybrid);  // schema + instance
  auto caps = e.Capabilities();
  bool has_attr = false;
  bool has_value = false;
  for (MatchType t : caps) {
    has_attr = has_attr || t == MatchType::kAttributeOverlap;
    has_value = has_value || t == MatchType::kValueOverlap;
  }
  EXPECT_TRUE(has_attr);
  EXPECT_TRUE(has_value);
  EXPECT_EQ(e.num_members(), 2u);
}

TEST(EnsembleTest, AgreedTopPairWins) {
  // Name AND values agree on (city, town): both members rank it first,
  // so every fusion strategy must keep it on top.
  Table src = MakeValued("s", {{"city", {"boston", "denver"}},
                               {"zzz", {"1", "2"}}});
  Table tgt = MakeValued("t", {{"city", {"boston", "denver"}},
                               {"qqq", {"7", "8"}}});
  for (FusionStrategy fusion :
       {FusionStrategy::kReciprocalRank, FusionStrategy::kBorda,
        FusionStrategy::kScoreAverage}) {
    EnsembleOptions opt;
    opt.fusion = fusion;
    EnsembleMatcher e(TwoMembers(), opt);
    MatchResult r = e.Match(src, tgt);
    ASSERT_FALSE(r.empty());
    EXPECT_EQ(r[0].source.column, "city");
    EXPECT_EQ(r[0].target.column, "city");
    for (const Match& m : r.matches()) {
      EXPECT_GE(m.score, 0.0);
      EXPECT_LE(m.score, 1.0 + 1e-9);
    }
  }
}

TEST(EnsembleTest, FusionRescuesDisagreement) {
  // Schema evidence and instance evidence each nail a different column;
  // the fused ranking must place BOTH true pairs above the false ones.
  Table src = MakeValued("s", {
      // same name, disjoint values -> only Cupid gets it
      {"income", {"100", "200", "300"}},
      // unhelpful name, shared values -> only JL gets it
      {"colA", {"apple", "pear", "plum"}}});
  Table tgt = MakeValued("t", {
      {"income", {"910", "920", "930"}},
      {"zq", {"apple", "pear", "plum"}}});
  EnsembleMatcher e(TwoMembers());
  MatchResult r = e.Match(src, tgt);
  std::vector<GroundTruthEntry> gt = {{"income", "income"}, {"colA", "zq"}};
  EXPECT_DOUBLE_EQ(RecallAtGroundTruth(r, gt), 1.0);
}

TEST(EnsembleTest, AtLeastAsGoodAsWorstMemberOnFabricatedPair) {
  Table original = MakeTpcdiProspect(120, 95);
  FabricationOptions fab;
  fab.scenario = Scenario::kUnionable;
  fab.noisy_schema = true;
  fab.noisy_instances = true;
  fab.seed = 33;
  DatasetPair pair = FabricateDatasetPair(original, fab).ValueOrDie();

  JaccardLevenshteinOptions jo;
  jo.max_distinct_values = 100;
  double jl = RecallAtGroundTruth(
      JaccardLevenshteinMatcher(jo).Match(pair.source, pair.target),
      pair.ground_truth);
  double cupid = RecallAtGroundTruth(
      CupidMatcher().Match(pair.source, pair.target), pair.ground_truth);

  std::vector<MatcherPtr> members;
  members.push_back(std::make_unique<CupidMatcher>());
  members.push_back(std::make_unique<JaccardLevenshteinMatcher>(jo));
  EnsembleMatcher e(std::move(members));
  double fused = RecallAtGroundTruth(e.Match(pair.source, pair.target),
                                     pair.ground_truth);
  EXPECT_GE(fused, std::min(jl, cupid));
}

TEST(EnsembleTest, DefaultEnsembleWorks) {
  MatcherPtr e = MakeDefaultEnsemble();
  EXPECT_EQ(e->Category(), MatcherCategory::kInstanceBased);
  Table original = MakeTpcdiProspect(100, 96);
  FabricationOptions fab;
  fab.scenario = Scenario::kJoinable;
  fab.column_overlap = 0.5;
  fab.seed = 34;
  DatasetPair pair = FabricateDatasetPair(original, fab).ValueOrDie();
  double recall = RecallAtGroundTruth(e->Match(pair.source, pair.target),
                                      pair.ground_truth);
  EXPECT_GE(recall, 0.9);
}

TEST(EnsembleTest, SingleMemberIsIdentityRanking) {
  Table src = MakeValued("s", {{"a", {"x", "y"}}, {"b", {"1", "2"}}});
  Table tgt = MakeValued("t", {{"a", {"x", "y"}}, {"b", {"1", "2"}}});
  std::vector<MatcherPtr> members;
  members.push_back(std::make_unique<JaccardLevenshteinMatcher>());
  EnsembleMatcher e(std::move(members));
  MatchResult fused = e.Match(src, tgt);
  MatchResult direct = JaccardLevenshteinMatcher().Match(src, tgt);
  ASSERT_EQ(fused.size(), direct.size());
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused[i].source.column, direct[i].source.column) << i;
    EXPECT_EQ(fused[i].target.column, direct[i].target.column) << i;
  }
}

}  // namespace
}  // namespace valentine
