#include "metrics/metrics.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

std::vector<GroundTruthEntry> Gt() {
  return {{"a", "x"}, {"b", "y"}};
}

MatchResult Ranked(std::vector<std::tuple<std::string, std::string, double>>
                       entries) {
  MatchResult r;
  for (auto& [s, t, score] : entries) {
    r.Add({"src", s}, {"tgt", t}, score);
  }
  r.Sort();
  return r;
}

TEST(MatchesGroundTruthTest, ColumnNameComparison) {
  Match m{{"src", "a"}, {"tgt", "x"}, 1.0};
  EXPECT_TRUE(MatchesGroundTruth(m, Gt()));
  Match wrong{{"src", "a"}, {"tgt", "y"}, 1.0};
  EXPECT_FALSE(MatchesGroundTruth(wrong, Gt()));
}

TEST(RecallAtGroundTruthTest, PerfectRanking) {
  auto r = Ranked({{"a", "x", 0.9}, {"b", "y", 0.8}, {"a", "y", 0.1}});
  EXPECT_DOUBLE_EQ(RecallAtGroundTruth(r, Gt()), 1.0);
}

TEST(RecallAtGroundTruthTest, HalfInTopK) {
  // Only one of the two relevant pairs is in the top 2.
  auto r = Ranked({{"a", "x", 0.9}, {"a", "y", 0.8}, {"b", "y", 0.1}});
  EXPECT_DOUBLE_EQ(RecallAtGroundTruth(r, Gt()), 0.5);
}

TEST(RecallAtGroundTruthTest, EmptyGroundTruthIsZero) {
  auto r = Ranked({{"a", "x", 0.9}});
  EXPECT_DOUBLE_EQ(RecallAtGroundTruth(r, {}), 0.0);
}

TEST(RecallAtGroundTruthTest, ShortResultList) {
  auto r = Ranked({{"a", "x", 0.9}});  // fewer results than |GT|
  EXPECT_DOUBLE_EQ(RecallAtGroundTruth(r, Gt()), 0.5);
}

TEST(RecallAtKTest, EqualsPrecisionAtKWhenKIsGtSize) {
  // The paper's §II-C note: Recall@k == Precision@k at k=|GT| when the
  // result has at least k entries.
  auto r = Ranked({{"a", "x", 0.9}, {"a", "y", 0.8}, {"b", "y", 0.7}});
  EXPECT_DOUBLE_EQ(RecallAtK(r, Gt(), 2), PrecisionAtK(r, Gt(), 2));
}

TEST(PrecisionAtKTest, DividesByActualListLength) {
  auto r = Ranked({{"a", "x", 0.9}});
  // Precision@2 over a 1-element list: 1/1.
  EXPECT_DOUBLE_EQ(PrecisionAtK(r, Gt(), 2), 1.0);
  // Recall@2 divides by k: 1/2.
  EXPECT_DOUBLE_EQ(RecallAtK(r, Gt(), 2), 0.5);
}

TEST(MapTest, PerfectRankingIsOne) {
  auto r = Ranked({{"a", "x", 0.9}, {"b", "y", 0.8}, {"a", "y", 0.1}});
  EXPECT_DOUBLE_EQ(MeanAveragePrecision(r, Gt()), 1.0);
}

TEST(MapTest, LateRelevantLowersMap) {
  auto r = Ranked({{"a", "y", 0.9}, {"a", "x", 0.8}, {"b", "y", 0.7}});
  // AP = (1/2 + 2/3) / 2.
  EXPECT_NEAR(MeanAveragePrecision(r, Gt()), (0.5 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(MapTest, EmptyGt) {
  auto r = Ranked({{"a", "x", 0.9}});
  EXPECT_DOUBLE_EQ(MeanAveragePrecision(r, {}), 0.0);
}

TEST(OneToOneTest, GreedySelection) {
  auto r = Ranked({{"a", "x", 0.9},
                   {"a", "y", 0.85},   // skipped: a used
                   {"b", "y", 0.8},
                   {"c", "z", 0.1}});  // below threshold
  OneToOneMetrics m = OneToOneFromRanking(r, Gt(), 0.5);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(OneToOneTest, FalsePositivesLowerPrecision) {
  std::vector<GroundTruthEntry> gt = {{"a", "x"}};
  auto r = Ranked({{"b", "y", 0.9}, {"a", "x", 0.8}});
  OneToOneMetrics m = OneToOneFromRanking(r, gt, 0.5);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_NEAR(m.f1, 2.0 / 3.0, 1e-12);
}

TEST(OneToOneTest, EmptySelection) {
  auto r = Ranked({{"a", "x", 0.1}});
  OneToOneMetrics m = OneToOneFromRanking(r, Gt(), 0.5);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(SummarizeTest, Basic) {
  Summary s = Summarize({0.4, 0.1, 0.9, 0.5});
  EXPECT_DOUBLE_EQ(s.min, 0.1);
  EXPECT_DOUBLE_EQ(s.max, 0.9);
  EXPECT_DOUBLE_EQ(s.median, 0.45);
  EXPECT_NEAR(s.mean, 0.475, 1e-12);
  EXPECT_EQ(s.count, 4u);
}

TEST(SummarizeTest, OddCountMedian) {
  Summary s = Summarize({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(SummarizeTest, Empty) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

}  // namespace
}  // namespace valentine
