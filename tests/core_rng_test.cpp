#include "core/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace valentine {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values of a tiny range get hit
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    double d = rng.UniformDouble(5.0, 6.0);
    EXPECT_GE(d, 5.0);
    EXPECT_LT(d, 6.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(8);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(100.0, 5.0);
  EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(12);
  auto sample = rng.SampleIndices(20, 7);
  EXPECT_EQ(sample.size(), 7u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 7u);
  for (size_t s : sample) EXPECT_LT(s, 20u);
}

TEST(RngTest, SampleAllIndices) {
  Rng rng(13);
  auto sample = rng.SampleIndices(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, PickReturnsMember) {
  Rng rng(14);
  std::vector<std::string> pool = {"a", "b", "c"};
  for (int i = 0; i < 50; ++i) {
    const std::string& p = rng.Pick(pool);
    EXPECT_TRUE(p == "a" || p == "b" || p == "c");
  }
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(15);
  Rng b(15);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fa.Next(), fb.Next());
  }
}

}  // namespace
}  // namespace valentine
