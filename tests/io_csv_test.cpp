#include "io/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace valentine {
namespace {

TEST(CsvReadTest, SimpleWithHeaderAndTypes) {
  auto r = ReadCsvString("id,name,score\n1,ann,2.5\n2,bob,3.0\n", "t");
  ASSERT_TRUE(r.ok());
  const Table& t = *r;
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column(0).type(), DataType::kInt64);
  EXPECT_EQ(t.column(1).type(), DataType::kString);
  EXPECT_EQ(t.column(2).type(), DataType::kFloat64);
  EXPECT_EQ(t.column(1)[1].AsString(), "bob");
}

TEST(CsvReadTest, QuotedFieldsWithCommasAndNewlines) {
  auto r = ReadCsvString(
      "a,b\n\"x,y\",\"line1\nline2\"\n\"quote\"\"inside\",plain\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->column(0)[0].AsString(), "x,y");
  EXPECT_EQ(r->column(1)[0].AsString(), "line1\nline2");
  EXPECT_EQ(r->column(0)[1].AsString(), "quote\"inside");
}

TEST(CsvReadTest, EmptyCellsBecomeNulls) {
  auto r = ReadCsvString("a,b\n1,\n,2\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->column(1)[0].is_null());
  EXPECT_TRUE(r->column(0)[1].is_null());
}

TEST(CsvReadTest, CrlfTolerated) {
  auto r = ReadCsvString("a,b\r\n1,2\r\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->column(1)[0].int_value(), 2);
}

TEST(CsvReadTest, NoTrailingNewline) {
  auto r = ReadCsvString("a\n1", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 1u);
}

TEST(CsvReadTest, RaggedRowsRejected) {
  auto r = ReadCsvString("a,b\n1\n", "t");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(CsvReadTest, UnterminatedQuoteRejected) {
  auto r = ReadCsvString("a\n\"broken\n", "t");
  EXPECT_FALSE(r.ok());
}

TEST(CsvReadTest, NoHeaderOption) {
  CsvReadOptions opt;
  opt.has_header = false;
  auto r = ReadCsvString("1,2\n3,4\n", "t", opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0).name(), "col0");
  EXPECT_EQ(r->num_rows(), 2u);
}

TEST(CsvReadTest, NoTypeInference) {
  CsvReadOptions opt;
  opt.infer_types = false;
  auto r = ReadCsvString("a\n42\n", "t", opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0)[0].kind(), DataType::kString);
}

TEST(CsvReadTest, MixedIntFloatWidensToFloat) {
  auto r = ReadCsvString("a\n1\n2.5\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0).type(), DataType::kFloat64);
}

TEST(CsvReadTest, MixedNumberStringWidensToString) {
  auto r = ReadCsvString("a\n1\nabc\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0).type(), DataType::kString);
}

TEST(CsvReadTest, SemicolonDelimiter) {
  CsvReadOptions opt;
  opt.delimiter = ';';
  auto r = ReadCsvString("a;b\n1;2\n", "t", opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_columns(), 2u);
}

TEST(CsvReadTest, EmptyInput) {
  auto r = ReadCsvString("", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_columns(), 0u);
}

TEST(CsvWriteTest, RoundTrip) {
  Table t("t");
  Column a("col,a", DataType::kString);
  a.Append(Value::String("plain"));
  a.Append(Value::String("with,comma"));
  a.Append(Value::String("with\"quote"));
  ASSERT_TRUE(t.AddColumn(std::move(a)).ok());
  Column b("b", DataType::kInt64);
  b.Append(Value::Int(1));
  b.Append(Value::Int(2));
  b.Append(Value::Null());
  ASSERT_TRUE(t.AddColumn(std::move(b)).ok());

  std::string csv = WriteCsvString(t);
  auto r = ReadCsvString(csv, "t2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->column(0).name(), "col,a");
  EXPECT_EQ(r->column(0)[1].AsString(), "with,comma");
  EXPECT_EQ(r->column(0)[2].AsString(), "with\"quote");
  EXPECT_TRUE(r->column(1)[2].is_null());
}

TEST(CsvFileTest, WriteAndReadBack) {
  Table t("t");
  Column a("x", DataType::kInt64);
  a.Append(Value::Int(7));
  ASSERT_TRUE(t.AddColumn(std::move(a)).ok());
  std::string path = ::testing::TempDir() + "/valentine_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto r = ReadCsvFile(path, "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0)[0].int_value(), 7);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  auto r = ReadCsvFile("/nonexistent/nope.csv", "t");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace valentine
