#include "knowledge/hash_embedding.h"

#include <gtest/gtest.h>

#include <cmath>

namespace valentine {
namespace {

TEST(CosineSimilarityTest, BasicCases) {
  Embedding a = {1.0f, 0.0f};
  Embedding b = {0.0f, 1.0f};
  Embedding c = {2.0f, 0.0f};
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-6);
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0, 1e-6);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.0, 1e-6);
}

TEST(CosineSimilarityTest, ZeroAndMismatched) {
  Embedding zero = {0.0f, 0.0f};
  Embedding a = {1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(CosineSimilarity(zero, a), 0.0);
  Embedding longer = {1.0f, 1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, longer), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {}), 0.0);
}

TEST(HashEmbedderTest, Deterministic) {
  HashEmbedder e1(32, 7);
  HashEmbedder e2(32, 7);
  EXPECT_EQ(e1.EmbedWord("protein"), e2.EmbedWord("protein"));
}

TEST(HashEmbedderTest, SeedChangesVectors) {
  HashEmbedder e1(32, 7);
  HashEmbedder e2(32, 8);
  EXPECT_NE(e1.EmbedWord("protein"), e2.EmbedWord("protein"));
}

TEST(HashEmbedderTest, WordVectorsAreUnitNorm) {
  HashEmbedder e(64);
  Embedding v = e.EmbedWord("organism");
  double norm = 0.0;
  for (float x : v) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-5);
}

TEST(HashEmbedderTest, EmptyWordIsZero) {
  HashEmbedder e(16);
  Embedding v = e.EmbedWord("");
  for (float x : v) EXPECT_EQ(x, 0.0f);
}

TEST(HashEmbedderTest, OrthographicSimilarityCaptured) {
  // Shared trigrams pull orthographically similar words together; this
  // is the designed behaviour (and the designed *failure* for purely
  // semantic relations — see semprop.h).
  HashEmbedder e(64);
  double close = CosineSimilarity(e.EmbedWord("organism"),
                                  e.EmbedWord("organisms"));
  double far = CosineSimilarity(e.EmbedWord("organism"),
                                e.EmbedWord("spreadsheet"));
  EXPECT_GT(close, far);
  EXPECT_GT(close, 0.5);
}

TEST(HashEmbedderTest, CaseInsensitive) {
  HashEmbedder e(32);
  EXPECT_EQ(e.EmbedWord("Assay"), e.EmbedWord("assay"));
}

TEST(HashEmbedderTest, TextIsMeanOfTokens) {
  HashEmbedder e(32);
  Embedding one = e.EmbedText("assay");
  Embedding same_twice = e.EmbedText("assay assay");
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_NEAR(one[i], same_twice[i], 1e-6);
  }
}

TEST(HashEmbedderTest, EmptyTextIsZero) {
  HashEmbedder e(16);
  Embedding v = e.EmbedText("  ...  ");
  for (float x : v) EXPECT_EQ(x, 0.0f);
}

}  // namespace
}  // namespace valentine
