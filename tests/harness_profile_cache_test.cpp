// Byte-identity contract of the shared ProfileCache (runner.h,
// campaign.h): attaching profiles to a family run changes where
// per-column artifacts are computed, never what they contain, so
// canonical outcomes must be bit-for-bit identical with and without a
// cache — for every family, and at campaign level across every
// (use_profile_cache, granularity) combination. Runs under TSan with the
// cache shared across worker threads.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "datasets/tpcdi.h"
#include "harness/campaign.h"
#include "harness/json_export.h"
#include "harness/parallel.h"
#include "matchers/embdi.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace valentine {
namespace {

// Every run in this file measures time on a shared non-advancing
// FakeClock, so timing fields are deterministically zero and reports /
// outcome lists compare byte-for-byte unmodified — no field scrubbing.
// The artifact-cache hit/miss split still depends on thread
// interleaving, but it lives on the MetricsRegistry, outside the
// byte-compared report.
FakeClock& SharedFakeClock() {
  static FakeClock clock;
  return clock;
}

FamilyRunContext ClockedRun() {
  FamilyRunContext run;
  run.clock = &SharedFakeClock();
  return run;
}

MethodFamily Truncate(MethodFamily family, size_t n) {
  if (family.grid.size() > n) family.grid.resize(n);
  return family;
}

Ontology ProfileTestOntology() {
  Ontology o;
  size_t root = o.AddClass("root", {"entity"});
  o.AddSubclass(root, "person", {"person", "customer", "prospect"});
  o.AddSubclass(root, "address", {"address", "city", "country"});
  return o;
}

MethodFamily MakeFamily(const std::string& name) {
  if (name == "Cupid") return Truncate(CupidFamily(), 2);
  if (name == "SimilarityFlooding") return SimilarityFloodingFamily();
  if (name == "COMA") return ComaFamily();
  if (name == "Distribution") return Truncate(DistributionFamily1(), 2);
  if (name == "SemProp") {
    static const Ontology kOntology = ProfileTestOntology();
    return Truncate(SemPropFamily(&kOntology), 2);
  }
  if (name == "EmbDI") {
    EmbdiOptions opt;
    opt.dimensions = 8;
    opt.walks_per_node = 1;
    opt.epochs = 1;
    opt.sentence_length = 20;
    opt.max_rows = 40;
    MethodFamily family{"EmbDI", {}};
    family.grid.push_back(
        {"word2vec tiny", std::make_shared<EmbdiMatcher>(opt)});
    return family;
  }
  if (name == "JaccardLevenshtein") return Truncate(JaccardLevenshteinFamily(), 2);
  ADD_FAILURE() << "unknown family " << name;
  return {};
}

const std::vector<DatasetPair>& SharedSuite() {
  static const std::vector<DatasetPair> kSuite = [] {
    Table original = MakeTpcdiProspect(30, 99);
    PairSuiteOptions opt;
    opt.row_overlaps = {0.5};
    opt.column_overlaps = {0.5};
    opt.instance_noise_variants = false;
    return BuildFabricatedSuite(original, opt);
  }();
  return kSuite;
}

class ProfileCacheFamilyTest : public ::testing::TestWithParam<std::string> {};

// Every family: cached == uncached, bit for bit. Instance-based families
// actually consume the artifacts; schema-based ones must simply ignore
// them unchanged.
TEST_P(ProfileCacheFamilyTest, CachedRunMatchesUncachedBytes) {
  const std::string family_name = GetParam();
  MethodFamily family = MakeFamily(family_name);
  ASSERT_FALSE(SharedSuite().empty());

  const std::string uncached =
      ToJson(RunFamilyOnSuite(family, SharedSuite(), ClockedRun()));

  ProfileCache cache;
  FamilyRunContext run = ClockedRun();
  run.profiles = &cache;
  EXPECT_EQ(ToJson(RunFamilyOnSuite(family, SharedSuite(), run)), uncached)
      << family_name << " diverged when served from the profile cache";
  EXPECT_GT(cache.size(), 0u) << "cache was never consulted";

  // A warm cache (second pass over the same tables) must also agree.
  EXPECT_EQ(ToJson(RunFamilyOnSuite(family, SharedSuite(), run)), uncached)
      << family_name << " diverged on a warm cache";

  // Prepared-artifact fast path: profile cache + artifact cache stacked
  // must still match the monolithic bytes, cold and warm.
  ArtifactCache artifacts;
  run.artifacts = &artifacts;
  EXPECT_EQ(ToJson(RunFamilyOnSuite(family, SharedSuite(), run)), uncached)
      << family_name << " diverged when scored from cached artifacts";
  EXPECT_GT(artifacts.size(), 0u) << "artifact cache was never consulted";
  EXPECT_EQ(ToJson(RunFamilyOnSuite(family, SharedSuite(), run)), uncached)
      << family_name << " diverged on warm artifacts";
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ProfileCacheFamilyTest,
    ::testing::Values("Cupid", "SimilarityFlooding", "COMA", "Distribution",
                      "SemProp", "EmbDI", "JaccardLevenshtein"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// Campaign level: the report is byte-identical across every combination
// of profile caching and work-slicing granularity, threaded or not.
TEST(ProfileCacheCampaignTest, ReportInvariantUnderCacheAndGranularity) {
  std::vector<MethodFamily> families = {
      MakeFamily("JaccardLevenshtein"),
      MakeFamily("Distribution"),
      MakeFamily("COMA"),
  };

  CampaignOptions baseline;
  baseline.num_threads = 1;
  baseline.clock = &SharedFakeClock();
  baseline.use_profile_cache = false;
  baseline.use_artifact_cache = false;
  baseline.granularity = ParallelGranularity::kPair;
  const std::string expected =
      ToJson(RunCampaignOnSuite(SharedSuite(), families, baseline));

  for (bool use_cache : {false, true}) {
    for (bool use_artifacts : {false, true}) {
      for (ParallelGranularity granularity :
           {ParallelGranularity::kPair, ParallelGranularity::kConfig}) {
        for (size_t threads : {size_t{1}, size_t{2}, size_t{0}}) {
          CampaignOptions options;
          options.num_threads = threads;
          options.clock = &SharedFakeClock();
          options.use_profile_cache = use_cache;
          options.use_artifact_cache = use_artifacts;
          options.granularity = granularity;
          EXPECT_EQ(
              ToJson(RunCampaignOnSuite(SharedSuite(), families, options)),
              expected)
              << "cache=" << use_cache << " artifacts=" << use_artifacts
              << " granularity="
              << (granularity == ParallelGranularity::kConfig ? "config"
                                                              : "pair")
              << " threads=" << threads;
        }
      }
    }
  }
}

// A non-default spec only changes artifact parameters the matchers
// reject via CapsEquivalent/parameter checks — they fall back to inline
// extraction, so even a deliberately mismatched cache cannot change the
// report.
TEST(ProfileCacheCampaignTest, MismatchedSpecFallsBackToInline) {
  std::vector<MethodFamily> families = {MakeFamily("JaccardLevenshtein"),
                                        MakeFamily("SemProp")};

  CampaignOptions baseline;
  baseline.num_threads = 1;
  baseline.clock = &SharedFakeClock();
  baseline.use_profile_cache = false;
  const std::string expected =
      ToJson(RunCampaignOnSuite(SharedSuite(), families, baseline));

  CampaignOptions mismatched;
  mismatched.num_threads = 1;
  mismatched.clock = &SharedFakeClock();
  mismatched.use_profile_cache = true;
  mismatched.profile_spec.set_cap = 3;       // far below any matcher cap
  mismatched.profile_spec.distinct_cap = 5;  // truncated storage
  mismatched.profile_spec.minhash_hashes = 8;
  EXPECT_EQ(ToJson(RunCampaignOnSuite(SharedSuite(), families, mismatched)),
            expected);
}

// The per-family artifact-cache counters live on the MetricsRegistry
// (the single exclusion point from the byte-identity contract), never
// on the report: present when the cache is on, absent when it is off,
// and the report JSON carries no cache diagnostics either way.
TEST(ProfileCacheCampaignTest, ArtifactCacheCountersOnMetricsRegistry) {
  std::vector<MethodFamily> families = {MakeFamily("JaccardLevenshtein"),
                                        MakeFamily("Distribution")};

  MetricsRegistry metrics;
  CampaignOptions options;
  options.num_threads = 1;
  options.clock = &SharedFakeClock();
  options.metrics = &metrics;
  CampaignReport report = RunCampaignOnSuite(SharedSuite(), families, options);
  for (const MethodFamily& family : families) {
    // Each table is prepared once per family (miss+build), then every
    // further configuration of the grid is served from the cache. The
    // cache keys series by matcher Name(), not the (decoratable) family
    // label, so resolve it from the grid.
    const MetricLabels labels = {{"family", family.grid[0].matcher->Name()}};
    uint64_t hits =
        metrics.CounterValue("valentine_artifact_cache_hits_total", labels);
    uint64_t misses =
        metrics.CounterValue("valentine_artifact_cache_misses_total", labels);
    uint64_t builds =
        metrics.CounterValue("valentine_artifact_cache_builds_total", labels);
    EXPECT_GT(misses, 0u) << family.name;
    EXPECT_EQ(builds, misses) << family.name;
    EXPECT_GT(hits, 0u) << family.name;
  }
  const std::string text = metrics.RenderPrometheusText();
  EXPECT_NE(text.find("valentine_artifact_cache_hits_total{family="),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE valentine_artifact_cache_hits_total counter"),
            std::string::npos);
  // The report itself carries no cache diagnostics.
  EXPECT_EQ(ToJson(report).find("artifact_cache"), std::string::npos);

  MetricsRegistry off_metrics;
  CampaignOptions cache_off;
  cache_off.num_threads = 1;
  cache_off.clock = &SharedFakeClock();
  cache_off.use_artifact_cache = false;
  cache_off.metrics = &off_metrics;
  CampaignReport off = RunCampaignOnSuite(SharedSuite(), families, cache_off);
  EXPECT_EQ(off_metrics.RenderPrometheusText().find("valentine_artifact_cache"),
            std::string::npos);
  EXPECT_EQ(ToJson(off).find("artifact_cache"), std::string::npos);
}

}  // namespace
}  // namespace valentine
