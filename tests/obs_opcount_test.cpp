// Tests for the kernel op-counter layer (obs/opcount.h): stable names,
// snapshot arithmetic, thread-locality, the per-kernel instrumentation
// contracts (exact cell/hash/emission counts where the algorithm pins
// them), and the per-family surfacing into MetricsRegistry. Every
// counting assertion is guarded on opcount::kEnabled so a Release suite
// without VALENTINE_OPCOUNT still compiles and passes.

#include "obs/opcount.h"

#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/tpcdi.h"
#include "harness/campaign.h"
#include "obs/metrics.h"
#include "stats/emd.h"
#include "stats/minhash.h"
#include "text/string_similarity.h"

namespace valentine {
namespace {

opcount::Snapshot Delta(const opcount::Snapshot& before) {
  return opcount::ThreadSnapshot().DeltaSince(before);
}

TEST(OpCount, NamesAndOrderAreStable) {
  // These strings are persisted identifiers (BENCH_kernels.json keys,
  // metric label values): renaming one invalidates committed baselines.
  EXPECT_STREQ(opcount::OpName(opcount::Op::kLevenshteinCells),
               "levenshtein_cells");
  EXPECT_STREQ(opcount::OpName(opcount::Op::kBagPrefilterHits),
               "bag_prefilter_hits");
  EXPECT_STREQ(opcount::OpName(opcount::Op::kBagPrefilterMisses),
               "bag_prefilter_misses");
  EXPECT_STREQ(opcount::OpName(opcount::Op::kMinHashHashes),
               "minhash_hashes");
  EXPECT_STREQ(opcount::OpName(opcount::Op::kNGramEmissions),
               "ngram_emissions");
  EXPECT_STREQ(opcount::OpName(opcount::Op::kEmdSweepIterations),
               "emd_sweep_iterations");
  const auto& all = opcount::AllOps();
  ASSERT_EQ(all.size(), static_cast<size_t>(opcount::kNumOps));
  for (int i = 0; i < opcount::kNumOps; ++i) {
    EXPECT_EQ(static_cast<int>(all[static_cast<size_t>(i)]), i);
  }
}

TEST(OpCount, SnapshotDeltaArithmetic) {
  if (!opcount::kEnabled) GTEST_SKIP() << "opcounts compiled out";
  opcount::Snapshot before = opcount::ThreadSnapshot();
  EXPECT_FALSE(Delta(before).AnyNonZero());
  opcount::Add(opcount::Op::kMinHashHashes, 7);
  opcount::Add(opcount::Op::kMinHashHashes, 3);
  opcount::Add(opcount::Op::kNGramEmissions, 2);
  opcount::Snapshot d = Delta(before);
  EXPECT_TRUE(d.AnyNonZero());
  EXPECT_EQ(d.value(opcount::Op::kMinHashHashes), 10u);
  EXPECT_EQ(d.value(opcount::Op::kNGramEmissions), 2u);
  EXPECT_EQ(d.value(opcount::Op::kLevenshteinCells), 0u);
}

TEST(OpCount, CountersAreThreadLocal) {
  if (!opcount::kEnabled) GTEST_SKIP() << "opcounts compiled out";
  opcount::Snapshot before = opcount::ThreadSnapshot();
  std::thread other(
      [] { opcount::Add(opcount::Op::kLevenshteinCells, 1000); });
  other.join();
  // The other thread's adds land in its own slots, never ours.
  EXPECT_EQ(Delta(before).value(opcount::Op::kLevenshteinCells), 0u);
}

TEST(OpCount, LevenshteinFullCountsEveryCell) {
  if (!opcount::kEnabled) GTEST_SKIP() << "opcounts compiled out";
  std::string a = "application_identifier";
  std::string b = "applciation_identifeir";
  opcount::Snapshot before = opcount::ThreadSnapshot();
  LevenshteinDistance(a, b);
  EXPECT_EQ(Delta(before).value(opcount::Op::kLevenshteinCells),
            a.size() * b.size());
}

TEST(OpCount, BandedLevenshteinVisitsFewerCells) {
  if (!opcount::kEnabled) GTEST_SKIP() << "opcounts compiled out";
  std::string a = "the_full_matrix_walks_every_single_cell_of_this";
  std::string b = "the_full_matrix_walks_every_single_cell_of_that";
  opcount::Snapshot before = opcount::ThreadSnapshot();
  size_t full = LevenshteinDistance(a, b);
  uint64_t full_cells = Delta(before).value(opcount::Op::kLevenshteinCells);
  before = opcount::ThreadSnapshot();
  size_t banded = LevenshteinWithin(a, b, 4);
  uint64_t banded_cells =
      Delta(before).value(opcount::Op::kLevenshteinCells);
  EXPECT_EQ(full, banded);  // same answer within the bound...
  EXPECT_GT(banded_cells, 0u);
  EXPECT_LT(banded_cells, full_cells);  // ...for strictly fewer cells
}

TEST(OpCount, CharNGramsCountsEmissions) {
  if (!opcount::kEnabled) GTEST_SKIP() << "opcounts compiled out";
  opcount::Snapshot before = opcount::ThreadSnapshot();
  std::vector<std::string> grams = CharNGrams("permit_date", 3);
  EXPECT_EQ(Delta(before).value(opcount::Op::kNGramEmissions),
            grams.size());
}

TEST(OpCount, MinHashCountsHashEvaluations) {
  if (!opcount::kEnabled) GTEST_SKIP() << "opcounts compiled out";
  std::unordered_set<std::string> set;
  for (int i = 0; i < 50; ++i) set.insert("v" + std::to_string(i));
  opcount::Snapshot before = opcount::ThreadSnapshot();
  MinHashSignature::Build(set, 32);
  EXPECT_EQ(Delta(before).value(opcount::Op::kMinHashHashes),
            set.size() * 32);
}

TEST(OpCount, EmdCountsSweepIterations) {
  if (!opcount::kEnabled) GTEST_SKIP() << "opcounts compiled out";
  std::vector<MassPoint> a = {{0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}};
  std::vector<MassPoint> b = {{0.5, 2.0}, {1.5, 1.0}};
  opcount::Snapshot before = opcount::ThreadSnapshot();
  EmdPointMasses(a, b);
  // One sweep position per merged-support point.
  EXPECT_EQ(Delta(before).value(opcount::Op::kEmdSweepIterations),
            a.size() + b.size());
}

TEST(OpCount, FuzzyJaccardBandedUsesThePrefilter) {
  if (!opcount::kEnabled) GTEST_SKIP() << "opcounts compiled out";
  // Disjoint token lists: every pair reaches the leftover stage, where
  // the bag-distance gate either prunes (hit) or forwards to the
  // banded kernel (miss).
  std::vector<std::string> a = {"alpha", "bravo", "charlie", "delta"};
  std::vector<std::string> b = {"echo", "foxtrot", "golf", "hotel"};
  opcount::Snapshot before = opcount::ThreadSnapshot();
  FuzzyJaccard(a, b, 0.3, LevenshteinKernel::kBanded);
  opcount::Snapshot d = Delta(before);
  EXPECT_GT(d.value(opcount::Op::kBagPrefilterHits) +
                d.value(opcount::Op::kBagPrefilterMisses),
            0u);

  // The naive kernel bypasses the prefilter entirely.
  before = opcount::ThreadSnapshot();
  FuzzyJaccard(a, b, 0.3, LevenshteinKernel::kNaive);
  d = Delta(before);
  EXPECT_EQ(d.value(opcount::Op::kBagPrefilterHits), 0u);
  EXPECT_EQ(d.value(opcount::Op::kBagPrefilterMisses), 0u);
  EXPECT_GT(d.value(opcount::Op::kLevenshteinCells), 0u);
}

TEST(OpCount, CampaignSurfacesPerFamilyCounters) {
  if (!opcount::kEnabled) GTEST_SKIP() << "opcounts compiled out";
  // The harness brackets each experiment with thread snapshots and
  // folds the deltas into valentine_opcount_total{family,op} — visible
  // in /metrics and campaign exports, never in report bytes.
  MetricsRegistry metrics;
  CampaignOptions opt;
  opt.suite.row_overlaps = {0.5};
  opt.suite.column_overlaps = {0.5};
  opt.suite.schema_noise_variants = false;
  opt.suite.instance_noise_variants = false;
  opt.num_threads = 2;
  opt.metrics = &metrics;
  std::vector<Table> sources = {MakeTpcdiProspect(40, 85)};
  RunCampaign(sources, {JaccardLevenshteinFamily()}, opt);

  bool found = false;
  for (const MetricsRegistry::CounterSample& sample :
       metrics.CounterSamples()) {
    if (sample.name != "valentine_opcount_total") continue;
    bool has_family = false, has_op = false;
    for (const auto& [key, value] : sample.labels) {
      if (key == "family") has_family = value == "JaccardLevenshtein";
      if (key == "op") has_op = !value.empty();
    }
    if (has_family && has_op && sample.value > 0) found = true;
  }
  EXPECT_TRUE(found)
      << "no valentine_opcount_total{family=JaccardLevenshtein,op=...} "
         "counter surfaced";
}

}  // namespace
}  // namespace valentine
