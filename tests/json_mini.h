#ifndef VALENTINE_TESTS_JSON_MINI_H_
#define VALENTINE_TESTS_JSON_MINI_H_

// Minimal recursive-descent JSON parser for test assertions (schema
// checks on exported traces/metrics). Supports the full JSON value
// grammar the exporters emit: objects, arrays, strings with escapes,
// numbers, true/false/null. Test-only — the library itself never parses
// JSON with this.

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace valentine {
namespace json_mini {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<ValuePtr> array;
  // Insertion order is irrelevant for the assertions; a map keeps
  // lookups simple.
  std::map<std::string, ValuePtr> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  const ValuePtr Get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// Parses one complete JSON document; nullptr on any syntax error or
  /// trailing garbage.
  ValuePtr Parse() {
    ValuePtr v = ParseValue();
    SkipWs();
    if (v == nullptr || pos_ != text_.size()) return nullptr;
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Literal(const char* word) {
    size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  ValuePtr ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return nullptr;
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't') {
      if (!Literal("true")) return nullptr;
      auto v = std::make_shared<Value>();
      v->type = Value::Type::kBool;
      v->boolean = true;
      return v;
    }
    if (c == 'f') {
      if (!Literal("false")) return nullptr;
      auto v = std::make_shared<Value>();
      v->type = Value::Type::kBool;
      return v;
    }
    if (c == 'n') {
      if (!Literal("null")) return nullptr;
      return std::make_shared<Value>();
    }
    return ParseNumber();
  }

  ValuePtr ParseObject() {
    if (!Consume('{')) return nullptr;
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kObject;
    SkipWs();
    if (Consume('}')) return v;
    while (true) {
      ValuePtr key = ParseString();
      if (key == nullptr || !Consume(':')) return nullptr;
      ValuePtr member = ParseValue();
      if (member == nullptr) return nullptr;
      v->object[key->string] = member;
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return nullptr;
    }
  }

  ValuePtr ParseArray() {
    if (!Consume('[')) return nullptr;
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kArray;
    SkipWs();
    if (Consume(']')) return v;
    while (true) {
      ValuePtr element = ParseValue();
      if (element == nullptr) return nullptr;
      v->array.push_back(element);
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return nullptr;
    }
  }

  ValuePtr ParseString() {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') return nullptr;
    ++pos_;
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) return nullptr;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': v->string += '"'; break;
          case '\\': v->string += '\\'; break;
          case '/': v->string += '/'; break;
          case 'b': v->string += '\b'; break;
          case 'f': v->string += '\f'; break;
          case 'n': v->string += '\n'; break;
          case 'r': v->string += '\r'; break;
          case 't': v->string += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return nullptr;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += h - '0';
              else if (h >= 'a' && h <= 'f') code += 10 + (h - 'a');
              else if (h >= 'A' && h <= 'F') code += 10 + (h - 'A');
              else return nullptr;
            }
            // Exporters only emit \u00XX control escapes; map the rest
            // through a replacement byte to stay total.
            v->string += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return nullptr;
        }
      } else {
        v->string += c;
      }
    }
    return nullptr;  // unterminated
  }

  ValuePtr ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return nullptr;
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kNumber;
    v->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                            nullptr);
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline ValuePtr Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace json_mini
}  // namespace valentine

#endif  // VALENTINE_TESTS_JSON_MINI_H_
