// The deterministic overload contract (the tentpole's acceptance test):
// with W workers parked and a queue bound of Q, exactly the next Q
// connections wait and every one after that is shed as 503 +
// Retry-After — while every admitted request completes with rankings
// byte-identical to a directly-driven engine. Overload degrades
// loudly and deterministically, never silently.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "http_client.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace valentine {
namespace serve {
namespace {

using testing::BlockingMatcher;
using testing::HttpClientResponse;
using testing::HttpConnect;
using testing::HttpFetch;
using testing::MakeServeTable;
using testing::ServeTableJson;

TEST(ServeOverload, SheddingIsDeterministicAndAccounted) {
  constexpr size_t kWorkers = 2;
  constexpr size_t kQueue = 3;
  constexpr size_t kExcess = 4;

  std::atomic<bool> gate{false};
  std::atomic<int> active{0};
  ServiceOptions service_opt;
  service_opt.matcher_factory = [&] {
    return std::make_unique<BlockingMatcher>(&gate, &active);
  };
  DiscoveryService service(std::move(service_opt));
  ASSERT_TRUE(service.RegisterTable(MakeServeTable("repo", 15, 3)).ok());

  ServerOptions server_opt;
  server_opt.workers = kWorkers;
  server_opt.queue_capacity = kQueue;
  server_opt.read_timeout_ms = 500;
  HttpServer server(&service, server_opt);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();
  const uint64_t base_admitted = server.admitted_total();

  // Phase 1: park every worker on a blocking discovery request.
  const std::string body =
      "{\"table\":" + ServeTableJson("q", 15, 5) + ",\"k\":5}";
  std::vector<std::string> served_bodies(kWorkers);
  std::vector<std::thread> parked;
  for (size_t i = 0; i < kWorkers; ++i) {
    parked.emplace_back([&, i] {
      Result<HttpClientResponse> r = HttpFetch(
          "127.0.0.1", port, "POST", "/v1/discovery/unionable", body,
          /*timeout_ms=*/60000);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r.ValueOrDie().status, 200) << r.ValueOrDie().body;
      served_bodies[i] = r.ValueOrDie().body;
    });
  }
  while (active.load() < static_cast<int>(kWorkers)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Phase 2: fill the admission queue with idle connections.
  std::vector<int> fillers;
  for (size_t i = 0; i < kQueue; ++i) {
    int fd = HttpConnect("127.0.0.1", port);
    ASSERT_GE(fd, 0);
    fillers.push_back(fd);
  }
  while (server.admitted_total() < base_admitted + kWorkers + kQueue) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.shed_total(), 0u);

  // Phase 3: every further connection is shed, synchronously, with the
  // full 503 contract — the parked workers never get involved.
  for (size_t i = 0; i < kExcess; ++i) {
    Result<HttpClientResponse> r =
        HttpFetch("127.0.0.1", port, "GET", "/healthz");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie().status, 503) << "excess connection " << i;
    EXPECT_EQ(r.ValueOrDie().Header("retry-after"), "1");
    EXPECT_NE(r.ValueOrDie().body.find("\"ResourceExhausted\""),
              std::string::npos);
  }
  EXPECT_EQ(server.shed_total(), kExcess);
  EXPECT_EQ(server.admitted_total(), base_admitted + kWorkers + kQueue);

  // Phase 4: release the gate; the admitted requests complete with
  // rankings byte-identical to a direct engine under the same matcher.
  for (int fd : fillers) close(fd);
  gate = true;
  for (std::thread& t : parked) t.join();

  DiscoveryOptions direct_opt;
  direct_opt.matcher = std::make_unique<BlockingMatcher>(&gate, &active);
  DiscoveryEngine direct(std::move(direct_opt));
  ASSERT_TRUE(direct.AddTable(MakeServeTable("repo", 15, 3)).ok());
  const std::string expected = RenderDiscoveryResults(
      "q", "unionable", 5,
      direct.FindUnionable(MakeServeTable("q", 15, 5), 5));
  for (const std::string& served : served_bodies) {
    EXPECT_EQ(served, expected);
  }

  // Final ledger: sheds stayed exactly at the excess count.
  server.Shutdown(2000.0);
  EXPECT_EQ(server.shed_total(), kExcess);
}

}  // namespace
}  // namespace serve
}  // namespace valentine
