#include "stats/descriptive.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

TEST(NumericStatsTest, KnownSample) {
  NumericStats s = ComputeNumericStats({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.118, 1e-3);
}

TEST(NumericStatsTest, OddMedian) {
  NumericStats s = ComputeNumericStats({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(NumericStatsTest, Empty) {
  NumericStats s = ComputeNumericStats({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(TextProfileTest, CountsCharacterClasses) {
  Column c("x", DataType::kString);
  c.Append(Value::String("ab1 "));   // 2 alpha, 1 digit, 1 space
  c.Append(Value::String("cd2 "));
  c.Append(Value::Null());
  TextProfile p = ComputeTextProfile(c);
  EXPECT_EQ(p.count, 2u);
  EXPECT_DOUBLE_EQ(p.mean_length, 4.0);
  EXPECT_DOUBLE_EQ(p.digit_fraction, 0.25);
  EXPECT_DOUBLE_EQ(p.alpha_fraction, 0.5);
  EXPECT_DOUBLE_EQ(p.space_fraction, 0.25);
  EXPECT_DOUBLE_EQ(p.distinct_ratio, 1.0);
}

TEST(TextProfileTest, DistinctRatioWithDuplicates) {
  Column c("x", DataType::kString);
  c.Append(Value::String("a"));
  c.Append(Value::String("a"));
  c.Append(Value::String("b"));
  c.Append(Value::String("a"));
  TextProfile p = ComputeTextProfile(c);
  EXPECT_DOUBLE_EQ(p.distinct_ratio, 0.5);
}

TEST(TextProfileTest, EmptyColumn) {
  Column c("x", DataType::kString);
  TextProfile p = ComputeTextProfile(c);
  EXPECT_EQ(p.count, 0u);
}

TEST(NumericStatsSimilarityTest, IdenticalIsOne) {
  NumericStats s = ComputeNumericStats({1, 2, 3, 4, 5});
  EXPECT_NEAR(NumericStatsSimilarity(s, s), 1.0, 1e-9);
}

TEST(NumericStatsSimilarityTest, DisjointRangesLow) {
  NumericStats a = ComputeNumericStats({1, 2, 3});
  NumericStats b = ComputeNumericStats({1000, 2000, 3000});
  EXPECT_LT(NumericStatsSimilarity(a, b), 0.3);
}

TEST(NumericStatsSimilarityTest, EmptyIsZero) {
  NumericStats a = ComputeNumericStats({1, 2});
  NumericStats empty;
  EXPECT_DOUBLE_EQ(NumericStatsSimilarity(a, empty), 0.0);
}

TEST(TextProfileSimilarityTest, IdenticalColumnsNearOne) {
  Column c("x", DataType::kString);
  c.Append(Value::String("hello world"));
  c.Append(Value::String("foo bar 12"));
  TextProfile p = ComputeTextProfile(c);
  EXPECT_NEAR(TextProfileSimilarity(p, p), 1.0, 1e-9);
}

TEST(TextProfileSimilarityTest, DifferentShapesLower) {
  Column a("a", DataType::kString);
  a.Append(Value::String("xy"));
  a.Append(Value::String("zw"));
  Column b("b", DataType::kString);
  b.Append(Value::String("12345678901234567890"));
  b.Append(Value::String("09876543210987654321"));
  double sim = TextProfileSimilarity(ComputeTextProfile(a),
                                     ComputeTextProfile(b));
  EXPECT_LT(sim, 0.7);
}

}  // namespace
}  // namespace valentine
