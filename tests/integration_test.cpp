// End-to-end integration tests: the full Valentine pipeline — generate
// source tables, fabricate scenario pairs, run matchers, score with
// Recall@|GT| — plus cross-module invariants the paper's findings
// depend on.

#include <gtest/gtest.h>

#include "datasets/magellan.h"
#include "datasets/tpcdi.h"
#include "datasets/wikidata.h"
#include "harness/runner.h"
#include "io/csv.h"
#include "matchers/coma.h"
#include "matchers/cupid.h"
#include "matchers/distribution_based.h"
#include "matchers/jaccard_levenshtein.h"
#include "matchers/similarity_flooding.h"
#include "metrics/metrics.h"

namespace valentine {
namespace {

double Recall(const ColumnMatcher& m, const DatasetPair& p) {
  return RecallAtGroundTruth(m.Match(p.source, p.target), p.ground_truth);
}

TEST(IntegrationTest, VerbatimUnionablePairIsEasyForEveryone) {
  Table original = MakeTpcdiProspect(150, 21);
  FabricationOptions fab;
  fab.scenario = Scenario::kUnionable;
  fab.row_overlap = 0.7;
  fab.seed = 1;
  DatasetPair pair = FabricateDatasetPair(original, fab).ValueOrDie();

  EXPECT_GE(Recall(CupidMatcher(), pair), 0.9);
  EXPECT_GE(Recall(SimilarityFloodingMatcher(), pair), 0.9);
  EXPECT_GE(Recall(ComaMatcher(), pair), 0.9);
}

TEST(IntegrationTest, NoisySchemataHurtSchemaBasedMethods) {
  Table original = MakeTpcdiProspect(150, 22);
  FabricationOptions verbatim;
  verbatim.scenario = Scenario::kUnionable;
  verbatim.seed = 2;
  FabricationOptions noisy = verbatim;
  noisy.noisy_schema = true;
  DatasetPair p_verbatim = FabricateDatasetPair(original, verbatim).ValueOrDie();
  DatasetPair p_noisy = FabricateDatasetPair(original, noisy).ValueOrDie();

  CupidMatcher cupid;
  EXPECT_GT(Recall(cupid, p_verbatim), Recall(cupid, p_noisy));
}

TEST(IntegrationTest, InstanceMethodsUnaffectedBySchemaNoise) {
  Table original = MakeTpcdiProspect(150, 23);
  FabricationOptions noisy;
  noisy.scenario = Scenario::kJoinable;
  noisy.column_overlap = 0.5;
  noisy.noisy_schema = true;
  noisy.seed = 3;
  DatasetPair pair = FabricateDatasetPair(original, noisy).ValueOrDie();
  JaccardLevenshteinOptions o;
  o.max_distinct_values = 100;
  EXPECT_GE(Recall(JaccardLevenshteinMatcher(o), pair), 0.9);
  EXPECT_GE(Recall(DistributionBasedMatcher(), pair), 0.9);
}

TEST(IntegrationTest, JoinableEasierThanSemanticallyJoinableForInstances) {
  Table original = MakeTpcdiProspect(200, 24);
  FabricationOptions join;
  join.scenario = Scenario::kJoinable;
  join.column_overlap = 0.5;
  join.seed = 4;
  FabricationOptions sem = join;
  sem.scenario = Scenario::kSemanticallyJoinable;
  DatasetPair p_join = FabricateDatasetPair(original, join).ValueOrDie();
  DatasetPair p_sem = FabricateDatasetPair(original, sem).ValueOrDie();

  JaccardLevenshteinOptions o;
  o.threshold = 0.0;  // strict equality: semantic noise must hurt
  o.max_distinct_values = 100;
  JaccardLevenshteinMatcher jl(o);
  EXPECT_GE(Recall(jl, p_join), Recall(jl, p_sem));
}

TEST(IntegrationTest, FullGridRunOnOnePairProducesBoundedRecalls) {
  Table original = MakeTpcdiProspect(60, 25);
  PairSuiteOptions opt;
  opt.row_overlaps = {0.5};
  opt.column_overlaps = {0.5};
  opt.schema_noise_variants = false;
  opt.instance_noise_variants = false;
  auto suite = BuildFabricatedSuite(original, opt);
  ASSERT_EQ(suite.size(), 6u);
  for (const MethodFamily& family :
       {SimilarityFloodingFamily(), ComaFamily()}) {
    for (const auto& outcome : RunFamilyOnSuite(family, suite)) {
      EXPECT_GE(outcome.best_recall, 0.0);
      EXPECT_LE(outcome.best_recall, 1.0);
      EXPECT_EQ(outcome.family, family.name);
    }
  }
}

TEST(IntegrationTest, CsvRoundTripPreservesMatcherBehaviour) {
  // Fabricate, serialize both shards to CSV, reload, and verify the
  // matcher ranking is unchanged — the suite's persistence path.
  Table original = MakeTpcdiProspect(80, 26);
  FabricationOptions fab;
  fab.scenario = Scenario::kUnionable;
  fab.seed = 6;
  DatasetPair pair = FabricateDatasetPair(original, fab).ValueOrDie();

  auto src2 = ReadCsvString(WriteCsvString(pair.source), pair.source.name());
  auto tgt2 = ReadCsvString(WriteCsvString(pair.target), pair.target.name());
  ASSERT_TRUE(src2.ok());
  ASSERT_TRUE(tgt2.ok());

  JaccardLevenshteinOptions o;
  o.max_distinct_values = 100;
  JaccardLevenshteinMatcher m(o);
  MatchResult before = m.Match(pair.source, pair.target);
  MatchResult after = m.Match(*src2, *tgt2);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].source.column, after[i].source.column);
    EXPECT_EQ(before[i].target.column, after[i].target.column);
    EXPECT_NEAR(before[i].score, after[i].score, 1e-9);
  }
}

TEST(IntegrationTest, WikidataInstanceBeatsSchemaOnUnionable) {
  // Fig. 7's headline: instance-based methods beat schema-based ones on
  // the curated pairs, whose column names differ but values overlap.
  auto pairs = MakeWikidataPairs(150, 7);
  const DatasetPair& unionable = pairs[0];
  ComaOptions inst;
  inst.strategy = ComaStrategy::kInstances;
  double instance_recall = Recall(ComaMatcher(inst), unionable);
  double schema_recall = Recall(SimilarityFloodingMatcher(), unionable);
  EXPECT_GE(instance_recall, schema_recall);
}

TEST(IntegrationTest, MagellanSchemaMethodsPerfect) {
  // Table III: identical attribute names -> schema-based methods 1.0.
  auto pairs = MakeMagellanPairs(80, 9);
  ComaMatcher coma_schema;
  for (const auto& p : pairs) {
    EXPECT_DOUBLE_EQ(Recall(coma_schema, p), 1.0) << p.id;
  }
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  auto run_once = [] {
    Table original = MakeTpcdiProspect(60, 31);
    FabricationOptions fab;
    fab.scenario = Scenario::kViewUnionable;
    fab.noisy_schema = true;
    fab.seed = 8;
    DatasetPair pair = FabricateDatasetPair(original, fab).ValueOrDie();
    return Recall(ComaMatcher(), pair);
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace valentine
