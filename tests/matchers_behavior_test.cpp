// Parameter-semantics tests: each matcher's knobs must move its
// behaviour in the documented direction (monotonicity, gating, budget
// effects) — the properties the Table II grid search relies on.

#include <gtest/gtest.h>

#include "core/rng.h"
#include "datasets/tpcdi.h"
#include "fabrication/fabricator.h"
#include "matchers/cupid.h"
#include "matchers/distribution_based.h"
#include "matchers/embdi.h"
#include "matchers/jaccard_levenshtein.h"
#include "matchers/semprop.h"
#include "matchers/similarity_flooding.h"
#include "metrics/metrics.h"
#include "text/string_similarity.h"

namespace valentine {
namespace {

TEST(FuzzyJaccardPropertyTest, MonotoneInThreshold) {
  // A looser distance threshold can only match more value pairs, so the
  // fuzzy Jaccard score is non-decreasing in the threshold.
  Rng rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::string> a, b;
    for (int i = 0; i < 40; ++i) {
      a.push_back("value_" + std::to_string(rng.Index(60)));
      b.push_back("valeu_" + std::to_string(rng.Index(60)));
    }
    double prev = -1.0;
    for (double th : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      double score = FuzzyJaccard(a, b, th);
      EXPECT_GE(score, prev) << "trial " << trial << " th " << th;
      prev = score;
    }
  }
}

TEST(CupidBehaviorTest, ThresholdAcceptGatesReinforcement) {
  // th_accept controls the strong-link count that drives the ancestor
  // bonus; an impossible threshold must not *raise* scores.
  Table src("customers");
  Table tgt("customers_b");
  for (const char* name : {"income", "city"}) {
    Column cs(name, DataType::kString);
    cs.Append(Value::String("v"));
    (void)src.AddColumn(std::move(cs));
    Column ct(name, DataType::kString);
    ct.Append(Value::String("v"));
    (void)tgt.AddColumn(std::move(ct));
  }
  CupidOptions lenient;
  lenient.th_accept = 0.3;
  CupidOptions impossible;
  impossible.th_accept = 0.999;
  double lenient_score = CupidMatcher(lenient).Match(src, tgt)[0].score;
  double strict_score = CupidMatcher(impossible).Match(src, tgt)[0].score;
  EXPECT_GE(lenient_score, strict_score);
}

TEST(SimilarityFloodingBehaviorTest, EpsilonControlsConvergence) {
  // A gigantic epsilon stops after one iteration; results still form a
  // valid ranking and identical names still win on identical schemata.
  Table src("s");
  Table tgt("t");
  for (const char* name : {"alpha", "beta"}) {
    Column cs(name, DataType::kInt64);
    cs.Append(Value::Int(1));
    (void)src.AddColumn(std::move(cs));
    Column ct(name, DataType::kInt64);
    ct.Append(Value::Int(1));
    (void)tgt.AddColumn(std::move(ct));
  }
  SimilarityFloodingOptions one_step;
  one_step.epsilon = 1e9;
  MatchResult r = SimilarityFloodingMatcher(one_step).Match(src, tgt);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[0].source.column, r[0].target.column);
}

TEST(DistributionBehaviorTest, MoreBinsRefineButStayConsistent) {
  Rng rng(7);
  std::vector<int64_t> values;
  for (int i = 0; i < 400; ++i) values.push_back(rng.UniformInt(0, 500));
  auto table_with = [&](const std::string& name) {
    Table t(name);
    Column c("col", DataType::kInt64);
    for (int64_t v : values) c.Append(Value::Int(v));
    (void)t.AddColumn(std::move(c));
    return t;
  };
  Table src = table_with("s");
  Table tgt = table_with("t");
  for (size_t bins : {4u, 16u, 64u}) {
    DistributionBasedOptions opt;
    opt.num_bins = bins;
    MatchResult r = DistributionBasedMatcher(opt).Match(src, tgt);
    ASSERT_EQ(r.size(), 1u) << bins;
    EXPECT_GT(r[0].score, 0.9) << bins;
  }
}

TEST(DistributionBehaviorTest, TighterPhase1PrunesMore) {
  Rng rng(8);
  // Slightly shifted distributions: strict thresholds cut them apart.
  std::vector<int64_t> a, b;
  for (int i = 0; i < 300; ++i) {
    int64_t v = rng.UniformInt(0, 1000);
    a.push_back(v);
    b.push_back(v + 120);
  }
  Table src("s"), tgt("t");
  Column ca("x", DataType::kInt64);
  for (int64_t v : a) ca.Append(Value::Int(v));
  (void)src.AddColumn(std::move(ca));
  Column cb("y", DataType::kInt64);
  for (int64_t v : b) cb.Append(Value::Int(v));
  (void)tgt.AddColumn(std::move(cb));

  size_t prev = 100;
  for (double th : {0.5, 0.1, 0.01}) {
    DistributionBasedOptions opt;
    opt.phase1_threshold = th;
    opt.phase2_threshold = 0.5;
    size_t n = DistributionBasedMatcher(opt).Match(src, tgt).size();
    EXPECT_LE(n, prev) << th;
    prev = n;
  }
}

TEST(SemPropBehaviorTest, ClassDistanceWidensSemanticMatches) {
  Ontology o;
  size_t root = o.AddClass("root", {"entity"});
  size_t organism = o.AddSubclass(root, "organism", {"organism"});
  o.AddSubclass(organism, "strain", {"strain"});
  auto table_with = [](const std::string& table, const std::string& col,
                       const std::string& value_prefix) {
    Table t(table);
    Column c(col, DataType::kString);
    c.Append(Value::String(value_prefix + "1"));
    c.Append(Value::String(value_prefix + "2"));
    (void)t.AddColumn(std::move(c));
    return t;
  };
  // organism links to class 1, strain to class 2: hierarchy distance 1.
  // Disjoint values keep the syntactic fallback out of the picture.
  Table src = table_with("s", "organism", "left");
  Table tgt = table_with("t", "strain", "right");
  SemPropOptions narrow;
  narrow.max_class_distance = 0;
  narrow.coherent_group_threshold = 0.0;
  narrow.minhash_threshold = 0.99;
  SemPropOptions wide = narrow;
  wide.max_class_distance = 2;
  size_t n_narrow = SemPropMatcher(&o, narrow).Match(src, tgt).size();
  size_t n_wide = SemPropMatcher(&o, wide).Match(src, tgt).size();
  EXPECT_EQ(n_narrow, 0u);
  EXPECT_EQ(n_wide, 1u);
}

TEST(EmbdiBehaviorTest, LongerWalksNeverCrash) {
  Table src("s"), tgt("t");
  Column cs("a", DataType::kString);
  Column ct("b", DataType::kString);
  for (int i = 0; i < 30; ++i) {
    cs.Append(Value::String("x" + std::to_string(i % 6)));
    ct.Append(Value::String("x" + std::to_string(i % 6)));
  }
  (void)src.AddColumn(std::move(cs));
  (void)tgt.AddColumn(std::move(ct));
  for (size_t len : {2u, 10u, 60u}) {
    EmbdiOptions o;
    o.sentence_length = len;
    o.walks_per_node = 1;
    o.dimensions = 8;
    o.epochs = 1;
    MatchResult r = EmbdiMatcher(o).Match(src, tgt);
    EXPECT_EQ(r.size(), 1u) << len;
  }
}

TEST(JaccardLevBehaviorTest, RecallTracksNoiseLevel) {
  // One fabricated pair per noise regime: strict-equality JL loses
  // recall as instance noise rises (the Fig. 5 panel mechanism).
  Table original = MakeTpcdiProspect(120, 91);
  auto recall_with_noise = [&](bool noisy) {
    FabricationOptions fab;
    fab.scenario = Scenario::kUnionable;
    fab.row_overlap = 0.5;
    fab.noisy_instances = noisy;
    fab.seed = 17;
    DatasetPair p = FabricateDatasetPair(original, fab).ValueOrDie();
    JaccardLevenshteinOptions o;
    o.threshold = 0.0;
    o.max_distinct_values = 100;
    return RecallAtGroundTruth(
        JaccardLevenshteinMatcher(o).Match(p.source, p.target),
        p.ground_truth);
  };
  EXPECT_GE(recall_with_noise(false), recall_with_noise(true));
}

}  // namespace
}  // namespace valentine
