// Tests for the scaling module: Lazo coupled estimation, the MinHash-LSH
// domain index, and the approximate overlap matcher (paper §IX's
// "approximations for better scaling").

#include <gtest/gtest.h>

#include <limits>

#include "core/rng.h"
#include "datasets/tpcdi.h"
#include "fabrication/fabricator.h"
#include "matchers/jaccard_levenshtein.h"
#include "metrics/metrics.h"
#include "scaling/approximate_matcher.h"
#include "scaling/lsh_index.h"
#include "text/string_similarity.h"

namespace valentine {
namespace {

std::unordered_set<std::string> MakeSet(int lo, int hi) {
  std::unordered_set<std::string> s;
  for (int i = lo; i < hi; ++i) s.insert("item_" + std::to_string(i));
  return s;
}

TEST(LazoTest, IdenticalSets) {
  auto sketch = LazoSketch::Build(MakeSet(0, 500), 128);
  LazoEstimate est = EstimateLazo(sketch, sketch);
  EXPECT_DOUBLE_EQ(est.jaccard, 1.0);
  EXPECT_NEAR(est.containment_a_in_b, 1.0, 1e-9);
  EXPECT_NEAR(est.intersection_size, 500.0, 1e-6);
}

TEST(LazoTest, DisjointSets) {
  auto a = LazoSketch::Build(MakeSet(0, 300), 128);
  auto b = LazoSketch::Build(MakeSet(1000, 1300), 128);
  LazoEstimate est = EstimateLazo(a, b);
  EXPECT_LT(est.jaccard, 0.05);
  EXPECT_LT(est.containment_a_in_b, 0.1);
}

TEST(LazoTest, AsymmetricContainment) {
  // A (100 items) fully contained in B (1000 items).
  auto a = LazoSketch::Build(MakeSet(0, 100), 256);
  auto b = LazoSketch::Build(MakeSet(0, 1000), 256);
  LazoEstimate est = EstimateLazo(a, b);
  // True J = 0.1, C(A in B) = 1.0, C(B in A) = 0.1.
  EXPECT_NEAR(est.jaccard, 0.1, 0.05);
  EXPECT_GT(est.containment_a_in_b, 0.6);
  EXPECT_LT(est.containment_b_in_a, 0.2);
}

TEST(LazoTest, EstimatesTrackTruthAcrossOverlaps) {
  for (int overlap : {50, 100, 150}) {
    auto sa = MakeSet(0, 200);
    auto sb = MakeSet(200 - overlap, 400 - overlap);
    double truth = JaccardSimilarity(sa, sb);
    LazoEstimate est = EstimateLazo(LazoSketch::Build(sa, 256),
                                    LazoSketch::Build(sb, 256));
    EXPECT_NEAR(est.jaccard, truth, 0.1) << overlap;
    double true_containment = Containment(sa, sb);
    EXPECT_NEAR(est.containment_a_in_b, true_containment, 0.15) << overlap;
  }
}

TEST(LazoTest, EmptySets) {
  auto empty = LazoSketch::Build({}, 64);
  auto full = LazoSketch::Build(MakeSet(0, 10), 64);
  EXPECT_DOUBLE_EQ(EstimateLazo(empty, empty).jaccard, 1.0);
  EXPECT_DOUBLE_EQ(EstimateLazo(empty, full).jaccard, 0.0);
  EXPECT_DOUBLE_EQ(EstimateLazo(empty, full).containment_a_in_b, 0.0);
}

TEST(LazoTest, IntersectionCappedBySmallerSet) {
  auto a = LazoSketch::Build(MakeSet(0, 10), 64);
  auto b = LazoSketch::Build(MakeSet(0, 10000), 64);
  LazoEstimate est = EstimateLazo(a, b);
  EXPECT_LE(est.intersection_size, 10.0);
  EXPECT_LE(est.containment_a_in_b, 1.0);
}

TEST(LshIndexTest, FindsNearDuplicates) {
  LshIndex index;
  ASSERT_TRUE(index.Add("dup", MakeSet(0, 500)).ok());
  ASSERT_TRUE(index.Add("half", MakeSet(250, 750)).ok());
  ASSERT_TRUE(index.Add("far", MakeSet(5000, 5500)).ok());
  auto results = index.QueryJaccard(MakeSet(0, 500), 0.5);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].first, "dup");
  EXPECT_GT(results[0].second, 0.9);
}

TEST(LshIndexTest, PrunesDistantSets) {
  LshIndex index;
  for (int k = 0; k < 50; ++k) {
    ASSERT_TRUE(index.Add("set" + std::to_string(k),
                          MakeSet(k * 1000, k * 1000 + 400))
                    .ok());
  }
  // A query overlapping only set0 should not produce ~50 candidates.
  auto candidates = index.Candidates(MakeSet(0, 400));
  EXPECT_LT(candidates.size(), 10u);
  bool found = false;
  for (const auto& c : candidates) found = found || c == "set0";
  EXPECT_TRUE(found);
}

TEST(LshIndexTest, ContainmentQueryFindsSuperset) {
  LshIndex index;
  ASSERT_TRUE(index.Add("superset", MakeSet(0, 2000)).ok());
  ASSERT_TRUE(index.Add("unrelated", MakeSet(9000, 9300)).ok());
  // Small query fully contained in "superset": J is only ~0.1 but
  // containment is ~1.0.
  auto results = index.QueryContainment(MakeSet(0, 200), 0.5);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].first, "superset");
}

TEST(LshIndexTest, SizeTracksAdds) {
  LshIndex index;
  EXPECT_EQ(index.size(), 0u);
  ASSERT_TRUE(index.Add("a", MakeSet(0, 10)).ok());
  ASSERT_TRUE(index.Add("b", MakeSet(0, 10)).ok());
  EXPECT_EQ(index.size(), 2u);
}

// Regression (PR 8): re-adding an existing key used to remap the key to
// a fresh sketch while the old postings kept serving the stale id —
// queries could then surface the same key twice, scored against two
// different sketches. Duplicate adds are now rejected outright and the
// original sketch keeps serving.
TEST(LshIndexTest, DuplicateKeyRejectedAndOriginalKeepsServing) {
  LshIndex index;
  ASSERT_TRUE(index.Add("k", MakeSet(0, 500)).ok());
  Status again = index.Add("k", MakeSet(5000, 5500));
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(index.size(), 1u);

  // Still scores ~1.0 against the ORIGINAL set, and appears exactly once.
  auto results = index.QueryJaccard(MakeSet(0, 500), 0.5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].first, "k");
  EXPECT_GT(results[0].second, 0.9);
  // The rejected set must not have been indexed under any key.
  EXPECT_TRUE(index.QueryJaccard(MakeSet(5000, 5500), 0.5).empty());
}

// Regression (PR 8): an empty set leaves every signature slot at the
// UINT64_MAX sentinel, so every pair of empty domains used to collide
// in every band and slot and score Lazo jaccard 1.0 against each other.
// Empty sets are registered but never band, and empty queries return
// nothing.
TEST(LshIndexTest, EmptySetsNeverSurfaceAsCandidates) {
  LshIndex index;
  ASSERT_TRUE(index.Add("empty_a", {}).ok());
  ASSERT_TRUE(index.Add("empty_b", {}).ok());
  ASSERT_TRUE(index.Add("full", MakeSet(0, 100)).ok());
  EXPECT_EQ(index.size(), 3u);
  EXPECT_TRUE(index.Contains("empty_a"));

  // An empty query collides with nothing — in particular not with the
  // other empty set.
  EXPECT_TRUE(index.Candidates({}).empty());
  EXPECT_TRUE(index.ContainmentCandidates({}).empty());
  EXPECT_TRUE(index.QueryJaccard({}, 0.0).empty());
  EXPECT_TRUE(index.QueryContainment({}, 0.0).empty());

  // A non-empty query never sees the empty entries.
  for (const auto& [key, score] : index.QueryJaccard(MakeSet(0, 100), 0.0)) {
    EXPECT_EQ(key, "full") << "empty set surfaced with score " << score;
  }
}

// Regression (PR 8): removal physically erases postings, so a removed
// key can neither be returned nor shadow a later re-add.
TEST(LshIndexTest, RemoveErasesPostingsAndAllowsReAdd) {
  LshIndex index;
  ASSERT_TRUE(index.Add("gone", MakeSet(0, 500)).ok());
  ASSERT_TRUE(index.Add("stay", MakeSet(0, 500)).ok());
  ASSERT_TRUE(index.Remove("gone").ok());
  EXPECT_EQ(index.size(), 1u);
  EXPECT_FALSE(index.Contains("gone"));
  EXPECT_EQ(index.Remove("gone").code(), StatusCode::kNotFound);

  auto results = index.QueryJaccard(MakeSet(0, 500), 0.5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].first, "stay");

  // Re-add under the same key with a different set: queries score the
  // fresh sketch, not the removed one.
  ASSERT_TRUE(index.Add("gone", MakeSet(9000, 9500)).ok());
  auto fresh = index.QueryJaccard(MakeSet(9000, 9500), 0.5);
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh[0].first, "gone");
  EXPECT_GT(fresh[0].second, 0.9);
}

// Regression (PR 8): the geometric partition boundary used to be grown
// by unchecked `boundary *= 10`, which wraps size_t once the partition
// count allows 10^20-scale boundaries — after the wrap, huge sets
// compared against tiny boundaries landed in partition 0 and the
// mapping lost monotonicity.
TEST(LshIndexTest, CardinalityPartitionSaturatesInsteadOfOverflowing) {
  // Normal regime: [0,100) -> 0, [100,1k) -> 1, [1k,10k) -> 2, rest
  // capped at partitions-1.
  EXPECT_EQ(LshCardinalityPartition(0, 4), 0u);
  EXPECT_EQ(LshCardinalityPartition(99, 4), 0u);
  EXPECT_EQ(LshCardinalityPartition(100, 4), 1u);
  EXPECT_EQ(LshCardinalityPartition(5000, 4), 2u);
  EXPECT_EQ(LshCardinalityPartition(1u << 20, 4), 3u);

  // Enough partitions that 100 * 10^p would wrap size_t many times.
  const size_t partitions = 64;
  size_t last = 0;
  for (size_t card : {size_t{1}, size_t{1000}, size_t{1} << 40,
                      std::numeric_limits<size_t>::max()}) {
    size_t p = LshCardinalityPartition(card, partitions);
    EXPECT_LT(p, partitions);
    EXPECT_GE(p, last) << "partition must stay monotonic in cardinality";
    last = p;
  }
  // The largest representable cardinality must land in the top
  // reachable partition, not wrap back to 0.
  EXPECT_GT(LshCardinalityPartition(std::numeric_limits<size_t>::max(), 64),
            LshCardinalityPartition(1000, 64));
}

TEST(LshIndexTest, AddSketchMatchesInlineBuild) {
  LshIndex a;
  LshIndex b;
  ASSERT_TRUE(a.Add("col", MakeSet(0, 500)).ok());
  ASSERT_TRUE(
      b.AddSketch("col", LazoSketch::Build(MakeSet(0, 500), b.signature_size()))
          .ok());
  auto ra = a.QueryJaccard(MakeSet(0, 500), 0.5);
  auto rb = b.QueryJaccard(MakeSet(0, 500), 0.5);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].first, rb[i].first);
    EXPECT_DOUBLE_EQ(ra[i].second, rb[i].second);
  }
  // Width mismatches are rejected, not silently mis-banded.
  EXPECT_EQ(b.AddSketch("w", LazoSketch::Build(MakeSet(0, 10), 32)).code(),
            StatusCode::kInvalidArgument);
}

TEST(ApproximateMatcherTest, AgreesWithExactOnEasyPair) {
  Table original = MakeTpcdiProspect(200, 51);
  FabricationOptions fab;
  fab.scenario = Scenario::kJoinable;
  fab.column_overlap = 0.5;
  fab.seed = 9;
  DatasetPair pair = FabricateDatasetPair(original, fab).ValueOrDie();

  ApproximateOverlapOptions opt;
  opt.estimate_all_pairs = true;
  ApproximateOverlapMatcher approx(opt);
  double approx_recall = RecallAtGroundTruth(
      approx.Match(pair.source, pair.target), pair.ground_truth);

  JaccardLevenshteinOptions exact_opt;
  exact_opt.threshold = 0.0;
  exact_opt.max_distinct_values = 0;
  JaccardLevenshteinMatcher exact(exact_opt);
  double exact_recall = RecallAtGroundTruth(
      exact.Match(pair.source, pair.target), pair.ground_truth);

  EXPECT_GE(approx_recall, exact_recall - 0.15);
  EXPECT_GE(approx_recall, 0.8);
}

TEST(ApproximateMatcherTest, LshPruningStillFindsStrongMatches) {
  Table original = MakeTpcdiProspect(200, 52);
  FabricationOptions fab;
  fab.scenario = Scenario::kUnionable;
  fab.row_overlap = 0.8;
  fab.seed = 10;
  DatasetPair pair = FabricateDatasetPair(original, fab).ValueOrDie();

  ApproximateOverlapOptions opt;  // LSH pruning on
  ApproximateOverlapMatcher approx(opt);
  double recall = RecallAtGroundTruth(
      approx.Match(pair.source, pair.target), pair.ground_truth);
  EXPECT_GE(recall, 0.6);
}

TEST(ApproximateMatcherTest, MinJaccardFilters) {
  Table src("s");
  Column a("a", DataType::kString);
  for (int i = 0; i < 50; ++i) a.Append(Value::Int(i));
  ASSERT_TRUE(src.AddColumn(std::move(a)).ok());
  Table tgt("t");
  Column b("b", DataType::kString);
  for (int i = 1000; i < 1050; ++i) b.Append(Value::Int(i));
  ASSERT_TRUE(tgt.AddColumn(std::move(b)).ok());
  ApproximateOverlapOptions opt;
  opt.min_jaccard = 0.5;
  opt.estimate_all_pairs = true;
  EXPECT_TRUE(ApproximateOverlapMatcher(opt).Match(src, tgt).empty());
}

TEST(ApproximateMatcherTest, MetadataDeclared) {
  ApproximateOverlapMatcher m;
  EXPECT_EQ(m.Name(), "ApproxOverlap");
  EXPECT_EQ(m.Category(), MatcherCategory::kInstanceBased);
}

}  // namespace
}  // namespace valentine
