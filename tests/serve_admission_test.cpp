// Tests for the bounded admission queue (serve/admission.h): the
// capacity bound, shed accounting, and drain (Close) semantics that the
// server's overload contract is built on.

#include "serve/admission.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace valentine {
namespace serve {
namespace {

// Projects a dequeue onto the descriptor, which is what most assertions
// here care about (enqueue_ns has its own test).
std::optional<int> DequeueFd(AdmissionQueue& q) {
  std::optional<AdmittedConnection> admitted = q.Dequeue();
  if (!admitted.has_value()) return std::nullopt;
  return admitted->fd;
}

TEST(ServeAdmission, AdmitsUpToCapacityThenSheds) {
  AdmissionQueue q(3);
  EXPECT_TRUE(q.TryEnqueue(10));
  EXPECT_TRUE(q.TryEnqueue(11));
  EXPECT_TRUE(q.TryEnqueue(12));
  EXPECT_FALSE(q.TryEnqueue(13));  // full → shed
  EXPECT_FALSE(q.TryEnqueue(14));
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.admitted_total(), 3u);
  EXPECT_EQ(q.shed_total(), 2u);
}

TEST(ServeAdmission, DequeuePreservesFifoOrder) {
  AdmissionQueue q(4);
  ASSERT_TRUE(q.TryEnqueue(1));
  ASSERT_TRUE(q.TryEnqueue(2));
  ASSERT_TRUE(q.TryEnqueue(3));
  EXPECT_EQ(DequeueFd(q), std::optional<int>(1));
  EXPECT_EQ(DequeueFd(q), std::optional<int>(2));
  // Space freed: admission works again.
  EXPECT_TRUE(q.TryEnqueue(4));
  EXPECT_EQ(DequeueFd(q), std::optional<int>(3));
  EXPECT_EQ(DequeueFd(q), std::optional<int>(4));
}

TEST(ServeAdmission, CarriesEnqueueTimestampToDequeuer) {
  AdmissionQueue q(2);
  ASSERT_TRUE(q.TryEnqueue(5, /*enqueue_ns=*/12345));
  ASSERT_TRUE(q.TryEnqueue(6));  // untimed caller → 0
  std::optional<AdmittedConnection> first = q.Dequeue();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->fd, 5);
  EXPECT_EQ(first->enqueue_ns, 12345);
  std::optional<AdmittedConnection> second = q.Dequeue();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->fd, 6);
  EXPECT_EQ(second->enqueue_ns, 0);
}

TEST(ServeAdmission, ZeroCapacityClampsToOne) {
  AdmissionQueue q(0);
  EXPECT_TRUE(q.TryEnqueue(1));
  EXPECT_FALSE(q.TryEnqueue(2));
}

TEST(ServeAdmission, CloseRefusesNewButDrainsExisting) {
  AdmissionQueue q(4);
  ASSERT_TRUE(q.TryEnqueue(7));
  ASSERT_TRUE(q.TryEnqueue(8));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.TryEnqueue(9));  // refused, counted as shed
  EXPECT_EQ(q.shed_total(), 1u);
  // Admitted entries still drain — never dropped.
  EXPECT_EQ(DequeueFd(q), std::optional<int>(7));
  EXPECT_EQ(DequeueFd(q), std::optional<int>(8));
  // Closed and empty → nullopt (worker exit signal).
  EXPECT_EQ(DequeueFd(q), std::nullopt);
}

TEST(ServeAdmission, CloseIsIdempotent) {
  AdmissionQueue q(1);
  q.Close();
  q.Close();
  EXPECT_EQ(DequeueFd(q), std::nullopt);
}

TEST(ServeAdmission, BlockedDequeueWakesOnEnqueue) {
  AdmissionQueue q(2);
  std::atomic<int> got{-1};
  std::thread consumer([&] {
    std::optional<int> fd = DequeueFd(q);  // blocks until producer runs
    got = fd.value_or(-2);
  });
  EXPECT_TRUE(q.TryEnqueue(42));
  consumer.join();
  EXPECT_EQ(got.load(), 42);
}

TEST(ServeAdmission, BlockedDequeueWakesOnClose) {
  AdmissionQueue q(2);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    EXPECT_EQ(DequeueFd(q), std::nullopt);
    returned = true;
  });
  q.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(ServeAdmission, ConcurrentProducersNeverExceedBound) {
  constexpr size_t kCapacity = 4;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 50;
  AdmissionQueue q(kCapacity);
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> consumed{0};

  std::thread consumer([&] {
    while (true) {
      std::optional<int> fd = DequeueFd(q);
      if (!fd.has_value()) return;
      ++consumed;
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.TryEnqueue(p * kPerProducer + i)) {
          ++accepted;
        } else {
          ++shed;
        }
        EXPECT_LE(q.depth(), kCapacity);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.Close();
  consumer.join();

  EXPECT_EQ(accepted + shed,
            static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(consumed.load(), accepted.load());
  EXPECT_EQ(q.admitted_total(), accepted.load());
  EXPECT_EQ(q.shed_total(), shed.load());
}

}  // namespace
}  // namespace serve
}  // namespace valentine
