#include "harness/runner.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "datasets/tpcdi.h"
#include "harness/campaign.h"
#include "harness/json_export.h"
#include "harness/parallel.h"
#include "matchers/fault_injection.h"
#include "obs/clock.h"

namespace valentine {
namespace {

std::vector<DatasetPair> SmallSuite(uint64_t seed = 7) {
  Table original = MakeTpcdiProspect(25, seed);
  PairSuiteOptions opt;
  opt.row_overlaps = {0.5};
  opt.column_overlaps = {0.5};
  opt.schema_noise_variants = false;
  opt.instance_noise_variants = false;
  return BuildFabricatedSuite(original, opt);
}

MethodFamily SmallFamily() {
  MethodFamily family = JaccardLevenshteinFamily();
  family.grid.resize(2);
  return family;
}

MethodFamily Wrapped(const FaultPlan& plan) {
  MethodFamily base = SmallFamily();
  MethodFamily wrapped{base.name, {}};
  for (const ConfiguredMatcher& cm : base.grid) {
    wrapped.grid.push_back(
        {cm.description,
         std::make_shared<FaultInjectingMatcher>(cm.matcher, plan)});
  }
  return wrapped;
}

// Timing is measured on a shared non-advancing FakeClock, so timing
// fields are deterministically zero and outcomes serialize to a
// byte-comparable form without any field scrubbing.
FakeClock& SharedFakeClock() {
  static FakeClock clock;
  return clock;
}

TEST(RetryPolicyTest, RetryableStatusClassification) {
  EXPECT_TRUE(IsRetryableStatus(Status::Internal("x")));
  EXPECT_TRUE(IsRetryableStatus(Status::IOError("x")));
  EXPECT_TRUE(IsRetryableStatus(Status::ResourceExhausted("x")));
  EXPECT_FALSE(IsRetryableStatus(Status::OK()));
  EXPECT_FALSE(IsRetryableStatus(Status::DeadlineExceeded("x")));
  EXPECT_FALSE(IsRetryableStatus(Status::Cancelled("x")));
  EXPECT_FALSE(IsRetryableStatus(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsRetryableStatus(Status::ParseError("x")));
}

TEST(RetryPolicyTest, BackoffIsDeterministicBoundedAndGrowing) {
  ExecutionPolicy policy;
  policy.backoff_base_ms = 10.0;
  policy.backoff_max_ms = 100.0;
  policy.backoff_seed = 5;

  // Pure function of (policy, key, attempt).
  EXPECT_EQ(BackoffDelayMs(policy, "k", 1), BackoffDelayMs(policy, "k", 1));
  EXPECT_EQ(BackoffDelayMs(policy, "k", 3), BackoffDelayMs(policy, "k", 3));

  for (size_t attempt = 1; attempt <= 6; ++attempt) {
    double uncapped = 10.0 * static_cast<double>(1 << (attempt - 1));
    double cap = std::min(100.0, uncapped);
    double delay = BackoffDelayMs(policy, "k", attempt);
    // Jitter keeps the delay in [cap/2, cap).
    EXPECT_GE(delay, cap * 0.5) << attempt;
    EXPECT_LT(delay, cap) << attempt;
  }

  // Different keys and seeds de-synchronize retry storms.
  ExecutionPolicy other = policy;
  other.backoff_seed = 6;
  EXPECT_NE(BackoffDelayMs(policy, "k", 1), BackoffDelayMs(other, "k", 1));
  EXPECT_NE(BackoffDelayMs(policy, "k1", 1),
            BackoffDelayMs(policy, "k2", 1));
}

TEST(HarnessFaultsTest, FailTwiceThenSucceedConvergesToFaultFree) {
  std::vector<DatasetPair> suite = SmallSuite();
  std::vector<FamilyPairOutcome> baseline =
      RunFamilyOnSuite(SmallFamily(), suite);

  FaultPlan plan;
  plan.fail_first = 2;
  plan.code = StatusCode::kIOError;
  FamilyRunContext run;
  run.policy.max_attempts = 3;  // exactly enough to absorb two failures
  std::vector<FamilyPairOutcome> faulted =
      RunFamilyOnSuite(Wrapped(plan), suite, run);

  ASSERT_EQ(faulted.size(), baseline.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(faulted[i].best_recall, baseline[i].best_recall) << i;
    EXPECT_EQ(faulted[i].best_config, baseline[i].best_config) << i;
    EXPECT_EQ(faulted[i].failed_runs, 0u);
    // Every configuration burned its two retries.
    EXPECT_EQ(faulted[i].retries, 2u * faulted[i].runs);
    EXPECT_TRUE(faulted[i].failure_counts.empty());
  }
}

TEST(HarnessFaultsTest, RetryBudgetTooSmallQuarantines) {
  std::vector<DatasetPair> suite = SmallSuite();
  FaultPlan plan;
  plan.fail_first = 2;
  FamilyRunContext run;
  run.policy.max_attempts = 2;  // one short of what the plan needs
  std::vector<FamilyPairOutcome> outcomes =
      RunFamilyOnSuite(Wrapped(plan), suite, run);
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.failed_runs, o.runs);
    EXPECT_TRUE(o.best_config.empty());
    EXPECT_EQ(o.best_recall, 0.0);
    ASSERT_EQ(o.failure_counts.size(), 1u);
    EXPECT_EQ(o.failure_counts[0].first, StatusCode::kInternal);
    EXPECT_EQ(o.failure_counts[0].second, o.runs);
  }
}

TEST(HarnessFaultsTest, AlwaysFailingCampaignReportsWithoutAborting) {
  std::vector<DatasetPair> suite = SmallSuite();
  FaultPlan plan;
  plan.always_fail = true;
  CampaignOptions opt;
  opt.num_threads = 2;
  opt.policy.max_attempts = 2;
  CampaignReport report =
      RunCampaignOnSuite(suite, {Wrapped(plan)}, opt);

  ASSERT_EQ(report.families.size(), 1u);
  const CampaignFamilyReport& fr = report.families[0];
  EXPECT_EQ(report.failed_experiments, report.num_experiments);
  EXPECT_EQ(fr.failed_experiments, report.num_experiments);
  EXPECT_EQ(fr.retry_attempts, report.num_experiments);  // 1 retry each
  ASSERT_EQ(fr.failure_taxonomy.size(), 1u);
  EXPECT_EQ(fr.failure_taxonomy[0].first, StatusCode::kInternal);
  EXPECT_EQ(fr.failure_taxonomy[0].second, report.num_experiments);

  // The machine-readable code name reaches the JSON export.
  std::string json = ToJson(report);
  EXPECT_NE(json.find("\"failure_taxonomy\":{\"Internal\":"),
            std::string::npos);
}

TEST(HarnessFaultsTest, TinyBudgetYieldsDeadlineExceededTaxonomy) {
  std::vector<DatasetPair> suite = SmallSuite();
  FamilyRunContext run;
  run.policy.budget_ms = 1e-6;  // expired by the first checkpoint
  std::vector<FamilyPairOutcome> outcomes =
      RunFamilyOnSuite(SmallFamily(), suite, run);
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.failed_runs, o.runs);
    EXPECT_EQ(o.retries, 0u);  // deadline overruns are not retryable
    ASSERT_EQ(o.failure_counts.size(), 1u);
    EXPECT_EQ(o.failure_counts[0].first, StatusCode::kDeadlineExceeded);
  }
}

TEST(HarnessFaultsTest, PreCancelledTokenAbortsEveryExperiment) {
  std::vector<DatasetPair> suite = SmallSuite();
  CancellationToken token;
  token.Cancel();
  FamilyRunContext run;
  run.policy.cancel = &token;
  std::vector<FamilyPairOutcome> outcomes =
      RunFamilyOnSuite(SmallFamily(), suite, run);
  for (const auto& o : outcomes) {
    ASSERT_EQ(o.failure_counts.size(), 1u);
    EXPECT_EQ(o.failure_counts[0].first, StatusCode::kCancelled);
  }
}

TEST(HarnessFaultsTest, BackoffWaitHookObservesDeterministicDelays) {
  std::vector<DatasetPair> suite = SmallSuite();
  FaultPlan plan;
  plan.fail_first = 2;
  auto collect = [](std::vector<double>* sink) {
    FamilyRunContext run;
    run.policy.max_attempts = 3;
    run.policy.backoff_wait = [sink](double ms) { sink->push_back(ms); };
    return run;
  };
  std::vector<double> first_delays;
  std::vector<double> second_delays;
  (void)RunFamilyOnSuite(Wrapped(plan), suite, collect(&first_delays));
  (void)RunFamilyOnSuite(Wrapped(plan), suite, collect(&second_delays));
  ASSERT_FALSE(first_delays.empty());
  EXPECT_EQ(first_delays, second_delays);  // reruns replay the schedule
  for (double d : first_delays) EXPECT_GT(d, 0.0);
}

// Parallel fault handling must stay deterministic: retries, quarantine,
// and the taxonomy may not depend on thread interleaving. On the tsan
// label list so the sanitizer preset soaks the journal/retry paths.
TEST(HarnessFaultsConcurrencyTest, ParallelFaultRunMatchesSequential) {
  std::vector<DatasetPair> suite = SmallSuite();
  FaultPlan plan;
  plan.fail_first = 1;
  plan.fail_probability = 0.25;
  FamilyRunContext run;
  run.policy.max_attempts = 4;
  run.clock = &SharedFakeClock();
  // Fresh decorators per run: attempt counters are per-instance state.
  std::string expected =
      ToJson(RunFamilyOnSuite(Wrapped(plan), suite, run));
  for (size_t threads : {2u, 4u, 8u}) {
    std::string got = ToJson(
        RunFamilyOnSuiteParallel(Wrapped(plan), suite, threads, run));
    EXPECT_EQ(got, expected) << threads << " threads";
  }
}

}  // namespace
}  // namespace valentine
