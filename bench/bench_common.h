#ifndef VALENTINE_BENCH_BENCH_COMMON_H_
#define VALENTINE_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment-reproduction benches: scaled-down
// dataset sources (shapes preserved, absolute sizes reduced for
// single-machine runtimes — see EXPERIMENTS.md) and suite construction.

#include <cstdio>
#include <string>
#include <vector>

#include "datasets/chembl.h"
#include "datasets/opendata.h"
#include "datasets/tpcdi.h"
#include "fabrication/fabricator.h"
#include "harness/report.h"
#include "harness/runner.h"

namespace valentine {
namespace bench {

// Rows per generated source table. The paper used 7.5k-23k rows on two
// 80-core machines; the shapes reproduced here are row-count-insensitive.
inline constexpr size_t kSourceRows = 400;

struct Source {
  std::string name;
  Table table;
};

inline std::vector<Source> MakeFabricationSources(
    size_t rows = kSourceRows) {
  std::vector<Source> sources;
  sources.push_back({"TPC-DI", MakeTpcdiProspect(rows, 2026)});
  sources.push_back({"OpenData", MakeOpenDataTable(rows, 4711)});
  sources.push_back({"ChEMBL", MakeChemblAssays(rows, 99)});
  return sources;
}

// Builds the combined fabricated suite over all three sources.
inline std::vector<DatasetPair> MakeCombinedSuite(
    const PairSuiteOptions& options, size_t rows = kSourceRows) {
  std::vector<DatasetPair> suite;
  uint64_t seed = options.seed;
  for (const Source& src : MakeFabricationSources(rows)) {
    PairSuiteOptions per_source = options;
    per_source.seed = seed;
    seed += 1000;
    auto pairs = BuildFabricatedSuite(src.table, per_source);
    for (auto& p : pairs) suite.push_back(std::move(p));
  }
  return suite;
}

// Keeps only pairs whose id marks a noisy / verbatim schema.
inline std::vector<DatasetPair> FilterBySchemaNoise(
    std::vector<DatasetPair> suite, bool noisy) {
  std::vector<DatasetPair> out;
  const char* tag = noisy ? "_noisySchema" : "_verbatimSchema";
  for (auto& p : suite) {
    if (p.id.find(tag) != std::string::npos) out.push_back(std::move(p));
  }
  return out;
}

inline std::vector<DatasetPair> FilterByInstanceNoise(
    std::vector<DatasetPair> suite, bool noisy) {
  std::vector<DatasetPair> out;
  const char* tag = noisy ? "_noisyInst" : "_verbatimInst";
  for (auto& p : suite) {
    if (p.id.find(tag) != std::string::npos) out.push_back(std::move(p));
  }
  return out;
}

inline void RunAndPrintFamily(const MethodFamily& family,
                              const std::vector<DatasetPair>& suite) {
  auto outcomes = RunFamilyOnSuite(family, suite);
  PrintScenarioStats(family.name, AggregateByScenario(outcomes));
  std::printf("  avg runtime per run: %.1f ms (%zu pairs x %zu configs)\n\n",
              AverageRuntimeMsPerRun(outcomes), suite.size(),
              family.grid.size());
}

}  // namespace bench
}  // namespace valentine

#endif  // VALENTINE_BENCH_BENCH_COMMON_H_
