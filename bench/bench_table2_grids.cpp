// Reproduces paper Table II: the parameter grids of every method, as
// actually expanded by the harness. Verifies the paper's accounting of
// 135 configurations.

#include "bench_common.h"
#include "datasets/chembl.h"

using namespace valentine;

int main() {
  Ontology efo = MakeEfoLikeOntology();
  auto families = AllFamilies(&efo);

  std::printf("== Table II: parameterization of the matching methods ==\n\n");
  std::vector<std::string> header = {"Method", "Configurations",
                                     "Example grid points"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& f : families) {
    std::string examples = f.grid.front().description;
    if (f.grid.size() > 1) {
      examples += "  ...  " + f.grid.back().description;
    }
    rows.push_back({f.name, std::to_string(f.grid.size()), examples});
  }
  PrintTable(header, rows);
  size_t total = TotalConfigurations(families);
  std::printf("\nTotal configurations: %zu (paper: 135)\n", total);
  return total == 135 ? 0 : 1;
}
