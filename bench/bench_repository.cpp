// Repository-scale A/B bench for the persistent discovery front-end:
// fabricate a lake of N synthetic tables (N/10 families of 10 shards
// sharing a family-private value pool and family-unique column-name
// tokens), register them through the artifact store, and demonstrate
//
//   1. candidate-path top-k rankings byte-identical to the exhaustive
//      scan (scores compared at full %.17g precision) — the LSH front
//      end is a cost optimization, not a quality change;
//   2. per-query scored-candidate count bounded by the family size,
//      not the repository size (the candidates·score cost model);
//   3. a cold restart over the same store directory re-registers every
//      table from disk (store hits == N, builds == 0) and reproduces
//      the exact ranking bytes without rebuilding a single sketch;
//   4. the staged pipeline (DESIGN.md §14) is observable per stage:
//      every query emits discovery.retrieve/enrich/rerank stage spans
//      under its query span, the per-stage candidate counters join to
//      the scored counter, no query degrades to the counted
//      LSH→exhaustive fallback, and the LSH path is actually faster
//      than the exhaustive reference (>1x always, ≥20x at lake scale).
//
// The tool *asserts* 1, 3 and 4 and exits 1 on any divergence; the
// timing numbers are only meaningful if the rankings did not move.
//
// Usage: bench_repository [--tables N] [--out PATH] [--store DIR]
//                         [--smoke]
//   --tables N  lake size (default 10000; rounded down to families of 10)
//   --out P     output JSON path (default BENCH_repository.json)
//   --store D   artifact store directory (default: fresh temp dir; the
//               directory is wiped at startup)
//   --smoke     CI-sized run: 300 tables, 2 queries

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "discovery/discovery.h"
#include "io/artifact_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace valentine {
namespace {

constexpr size_t kFamilySize = 10;   // shards per family
constexpr size_t kCoreValues = 32;   // pool values shared by all shards
constexpr size_t kTailValues = 16;   // shard-private pool values
constexpr size_t kTopK = 8;          // < kFamilySize, so ties at the
                                     // family boundary cannot leak
                                     // non-candidates into the top-k

struct Options {
  size_t tables = 10000;
  size_t queries = 5;
  std::string out = "BENCH_repository.json";
  std::string store_dir;
  bool smoke = false;
};

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// splitmix64: cheap deterministic value scrambler.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Pure-alpha base-26 word: family-unique column-name tokens must not
// share substrings with other families' tokens or split at digits.
std::string AlphaWord(uint64_t v, size_t len) {
  std::string out(len, 'a');
  for (size_t i = 0; i < len; ++i) {
    out[len - 1 - i] = static_cast<char>('a' + v % 26);
    v /= 26;
  }
  return out;
}

// Family-private pool value: fully scrambled alpha string, so values
// from different families share no prefix or shape the instance
// matcher could latch onto.
std::string PoolValue(size_t family, uint64_t slot) {
  return AlphaWord(Mix(family * 1000003ULL + slot), 12);
}

// Shard j of a family: every shard carries the family's core values
// (pairwise containment kCore/(kCore+kTail) ≈ 0.67, comfortably above
// min_containment) plus a private tail, per column.
Table MakeShard(size_t family, size_t shard, const std::string& name) {
  const std::string fword = AlphaWord(family, 5);
  Table t(name);
  for (size_t col = 0; col < 2; ++col) {
    // Column name = one family-unique alpha token: the union name
    // postings nominate exactly the family, never the whole lake.
    Column c(fword + (col == 0 ? "key" : "val"), DataType::kString);
    const uint64_t region = col * 500000ULL;
    for (size_t i = 0; i < kCoreValues; ++i) {
      c.Append(Value::String(PoolValue(family, region + i)));
    }
    for (size_t i = 0; i < kTailValues; ++i) {
      c.Append(Value::String(
          PoolValue(family, region + 1000 + shard * kTailValues + i)));
    }
    Status added = t.AddColumn(std::move(c));
    if (!added.ok()) {
      std::fprintf(stderr, "bench_repository: %s\n",
                   added.message().c_str());
      std::exit(1);
    }
  }
  return t;
}

std::string ShardName(size_t family, size_t shard) {
  return AlphaWord(family, 5) + "_shard_" + std::to_string(shard);
}

// Canonical ranking bytes: full-precision scores, so "identical" means
// identical doubles, not identical rounding.
std::string CanonicalRanking(const std::vector<DiscoveryResult>& results) {
  std::string out;
  char buf[64];
  for (const DiscoveryResult& r : results) {
    std::snprintf(buf, sizeof(buf), "=%.17g;", r.score);
    out += r.table_name;
    out += buf;
  }
  return out;
}

uint64_t ScoredCount(MetricsRegistry* metrics, const char* mode) {
  return metrics
      ->CounterFor("valentine_discovery_candidates_scored_total",
                   {{"mode", mode}})
      ->value();
}

uint64_t StoreCount(MetricsRegistry* metrics, const char* event) {
  return metrics
      ->CounterFor("valentine_discovery_store_total", {{"event", event}})
      ->value();
}

uint64_t StageCount(MetricsRegistry* metrics, const char* mode,
                    const char* stage) {
  return metrics
      ->CounterFor("valentine_discovery_stage_candidates_total",
                   {{"mode", mode}, {"stage", stage}})
      ->value();
}

uint64_t FallbackCount(MetricsRegistry* metrics, const char* mode) {
  return metrics
      ->CounterFor("valentine_discovery_fallback_total",
                   {{"mode", mode}, {"reason", "empty-query-columns"}})
      ->value();
}

// Satellite 4a: every query span carries exactly the three pipeline
// stage spans, correctly parented.
bool CheckStageSpans(const Tracer& tracer, size_t expected_queries) {
  size_t query_spans = 0;
  std::map<uint64_t, std::set<std::string>> stages_by_parent;
  for (const SpanRecord& s : tracer.Snapshot()) {
    if (s.kind == "query") ++query_spans;
    if (s.kind == "stage") stages_by_parent[s.parent_id].insert(s.name);
  }
  const std::set<std::string> want = {"discovery.retrieve",
                                      "discovery.enrich",
                                      "discovery.rerank"};
  if (query_spans != expected_queries ||
      stages_by_parent.size() != expected_queries) {
    std::fprintf(stderr,
                 "bench_repository: FAIL — expected %zu query spans with "
                 "stage groups, saw %zu/%zu\n",
                 expected_queries, query_spans, stages_by_parent.size());
    return false;
  }
  for (const auto& [parent, names] : stages_by_parent) {
    if (parent == 0 || names != want) {
      std::fprintf(stderr,
                   "bench_repository: FAIL — malformed stage spans under "
                   "span %llu\n",
                   static_cast<unsigned long long>(parent));
      return false;
    }
  }
  return true;
}

// Satellite 4b: the per-stage counters are present and consistent —
// enrich never invents candidates, rerank scores exactly what enrich
// passed through, and both join to the pre-existing scored counter.
bool CheckStageMetrics(MetricsRegistry* metrics) {
  for (const char* mode : {"joinable", "unionable"}) {
    const uint64_t retrieve = StageCount(metrics, mode, "retrieve");
    const uint64_t enrich = StageCount(metrics, mode, "enrich");
    const uint64_t rerank = StageCount(metrics, mode, "rerank");
    const uint64_t scored = ScoredCount(metrics, mode);
    const uint64_t survivors =
        metrics
            ->CounterFor("valentine_discovery_survivors_total",
                         {{"mode", mode}})
            ->value();
    if (retrieve == 0 || enrich > retrieve || rerank != enrich ||
        rerank != scored || survivors == 0) {
      std::fprintf(stderr,
                   "bench_repository: FAIL — %s stage counters inconsistent "
                   "(retrieve=%llu enrich=%llu rerank=%llu scored=%llu "
                   "survivors=%llu)\n",
                   mode, static_cast<unsigned long long>(retrieve),
                   static_cast<unsigned long long>(enrich),
                   static_cast<unsigned long long>(rerank),
                   static_cast<unsigned long long>(scored),
                   static_cast<unsigned long long>(survivors));
      return false;
    }
  }
  return true;
}

struct QueryStats {
  double total_ms = 0.0;
  uint64_t scored = 0;  // candidates scored across all queries, both modes
  std::vector<std::string> rankings;  // canonical bytes, join then union
};

// Runs the fixed query workload (one fresh shard per queried family)
// and returns timing + canonical ranking bytes.
QueryStats RunQueries(const DiscoveryEngine& engine, MetricsRegistry* metrics,
                      size_t queries) {
  QueryStats stats;
  const uint64_t scored_before =
      ScoredCount(metrics, "joinable") + ScoredCount(metrics, "unionable");
  const double t0 = NowMs();
  for (size_t q = 0; q < queries; ++q) {
    // A fresh shard of family q: shares the family core, unseen tail.
    Table query =
        MakeShard(q, kFamilySize, "query_" + AlphaWord(q, 5));
    stats.rankings.push_back(
        CanonicalRanking(engine.FindJoinable(query, kTopK)));
    stats.rankings.push_back(
        CanonicalRanking(engine.FindUnionable(query, kTopK)));
  }
  stats.total_ms = NowMs() - t0;
  stats.scored = ScoredCount(metrics, "joinable") +
                 ScoredCount(metrics, "unionable") - scored_before;
  return stats;
}

void AppendKV(std::string& json, const char* key, double value,
              bool comma = true) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.3f%s", key, value,
                comma ? ", " : "");
  json += buf;
}

int Run(const Options& options) {
  const size_t families = options.tables / kFamilySize;
  const size_t tables = families * kFamilySize;
  const size_t queries = std::min(options.queries, families);

  std::string store_dir = options.store_dir;
  if (store_dir.empty()) {
    store_dir = (std::filesystem::temp_directory_path() /
                 "valentine_bench_repository_store")
                    .string();
  }
  std::filesystem::remove_all(store_dir);
  std::fprintf(stderr,
               "bench_repository: %zu tables (%zu families), %zu queries, "
               "store %s\n",
               tables, families, queries, store_dir.c_str());

  // Phase 1: cold build — every artifact is derived and persisted.
  ArtifactStore store(store_dir);
  MetricsRegistry cold_metrics;
  Tracer cold_tracer;
  double build_ms = 0.0;
  QueryStats lsh;
  bool stage_spans_ok = false;
  {
    DiscoveryOptions opt;
    opt.store = &store;
    opt.metrics = &cold_metrics;
    opt.tracer = &cold_tracer;
    DiscoveryEngine engine(std::move(opt));
    const double t0 = NowMs();
    for (size_t f = 0; f < families; ++f) {
      for (size_t s = 0; s < kFamilySize; ++s) {
        Status added = engine.AddTable(MakeShard(f, s, ShardName(f, s)));
        if (!added.ok()) {
          std::fprintf(stderr, "bench_repository: AddTable: %s\n",
                       added.message().c_str());
          return 1;
        }
      }
    }
    build_ms = NowMs() - t0;
    if (StoreCount(&cold_metrics, "build") != tables) {
      std::fprintf(stderr,
                   "bench_repository: FAIL — cold build expected %zu store "
                   "builds, saw %llu\n",
                   tables,
                   static_cast<unsigned long long>(
                       StoreCount(&cold_metrics, "build")));
      return 1;
    }

    // Phase 2: LSH-path queries on the warm engine.
    lsh = RunQueries(engine, &cold_metrics, queries);
    std::fprintf(stderr,
                 "  lsh        %8.1f ms (%llu candidates scored over %zu "
                 "queries x 2 modes)\n",
                 lsh.total_ms, static_cast<unsigned long long>(lsh.scored),
                 queries);
    stage_spans_ok = CheckStageSpans(cold_tracer, queries * 2);
  }
  const bool stage_metrics_ok = CheckStageMetrics(&cold_metrics);
  const uint64_t fallbacks =
      FallbackCount(&cold_metrics, "joinable") +
      FallbackCount(&cold_metrics, "unionable");
  if (fallbacks != 0) {
    std::fprintf(stderr,
                 "bench_repository: FAIL — %llu queries degraded to the "
                 "exhaustive fallback\n",
                 static_cast<unsigned long long>(fallbacks));
  }

  // Phase 3: exhaustive reference — same store (registration is all
  // hits), every table scored for every query.
  MetricsRegistry exhaustive_metrics;
  QueryStats exhaustive;
  {
    DiscoveryOptions opt;
    opt.store = &store;
    opt.metrics = &exhaustive_metrics;
    opt.joinable_path = CandidatePath::kExhaustive;
    opt.unionable_path = CandidatePath::kExhaustive;
    DiscoveryEngine engine(std::move(opt));
    for (size_t f = 0; f < families; ++f) {
      for (size_t s = 0; s < kFamilySize; ++s) {
        Status added = engine.AddTable(MakeShard(f, s, ShardName(f, s)));
        if (!added.ok()) {
          std::fprintf(stderr, "bench_repository: AddTable: %s\n",
                       added.message().c_str());
          return 1;
        }
      }
    }
    exhaustive = RunQueries(engine, &exhaustive_metrics, queries);
    std::fprintf(stderr, "  exhaustive %8.1f ms (%llu candidates scored)\n",
                 exhaustive.total_ms,
                 static_cast<unsigned long long>(exhaustive.scored));
  }

  const bool ab_identical = lsh.rankings == exhaustive.rankings;
  if (!ab_identical) {
    for (size_t i = 0; i < lsh.rankings.size(); ++i) {
      if (lsh.rankings[i] != exhaustive.rankings[i]) {
        std::fprintf(stderr,
                     "bench_repository: FAIL — ranking %zu diverged\n"
                     "  lsh:        %s\n  exhaustive: %s\n",
                     i, lsh.rankings[i].c_str(),
                     exhaustive.rankings[i].c_str());
      }
    }
  }
  // The cost claim: the candidate path must score a small fraction of
  // what the exhaustive path scores (family-sized, not lake-sized).
  const bool cost_bounded = lsh.scored * 5 <= exhaustive.scored;
  // The speed claim: staging must stay an optimization after the
  // pipeline split — strictly faster always, and at lake scale the
  // candidates·score cost model demands an order of magnitude or two
  // (the committed BENCH_repository.json run recorded ~597x at 10k).
  const double speedup = exhaustive.total_ms / lsh.total_ms;
  const bool speedup_ok = speedup > 1.0 && (tables < 5000 || speedup >= 20.0);
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "bench_repository: FAIL — lsh speedup %.2fx below floor\n",
                 speedup);
  }

  // Phase 4: cold restart — a fresh store object over the same
  // directory (empty memory cache, disk only) and a fresh engine must
  // register everything via store hits and reproduce the bytes.
  MetricsRegistry restart_metrics;
  double restart_ms = 0.0;
  QueryStats restarted;
  {
    ArtifactStore restarted_store(store_dir);
    DiscoveryOptions opt;
    opt.store = &restarted_store;
    opt.metrics = &restart_metrics;
    DiscoveryEngine engine(std::move(opt));
    const double t0 = NowMs();
    for (size_t f = 0; f < families; ++f) {
      for (size_t s = 0; s < kFamilySize; ++s) {
        Status added = engine.AddTable(MakeShard(f, s, ShardName(f, s)));
        if (!added.ok()) {
          std::fprintf(stderr, "bench_repository: AddTable: %s\n",
                       added.message().c_str());
          return 1;
        }
      }
    }
    restart_ms = NowMs() - t0;
    restarted = RunQueries(engine, &restart_metrics, queries);
  }
  const bool restart_all_hits =
      StoreCount(&restart_metrics, "hit") == tables &&
      StoreCount(&restart_metrics, "build") == 0;
  const bool restart_identical = restarted.rankings == lsh.rankings;
  std::fprintf(stderr,
               "  cold build %8.1f ms, restart %8.1f ms (%.2fx, hits=%llu "
               "builds=%llu)\n",
               build_ms, restart_ms, build_ms / restart_ms,
               static_cast<unsigned long long>(
                   StoreCount(&restart_metrics, "hit")),
               static_cast<unsigned long long>(
                   StoreCount(&restart_metrics, "build")));

  std::string json = "{\n  \"benchmark\": \"repository_candidate_path_ab\",\n";
  json += "  \"tables\": " + std::to_string(tables) + ",\n";
  json += "  \"families\": " + std::to_string(families) + ",\n";
  json += "  \"queries\": " + std::to_string(queries) + ",\n";
  json += "  \"top_k\": " + std::to_string(kTopK) + ",\n  \"query\": {";
  AppendKV(json, "lsh_ms", lsh.total_ms);
  AppendKV(json, "exhaustive_ms", exhaustive.total_ms);
  AppendKV(json, "speedup", exhaustive.total_ms / lsh.total_ms, false);
  json += "},\n  \"candidates_scored\": {\"lsh\": " +
          std::to_string(lsh.scored) +
          ", \"exhaustive\": " + std::to_string(exhaustive.scored) +
          ", \"repository_fraction\": ";
  char frac[32];
  std::snprintf(frac, sizeof(frac), "%.4f",
                static_cast<double>(lsh.scored) /
                    static_cast<double>(exhaustive.scored));
  json += frac;
  json += "},\n  \"store\": {";
  AppendKV(json, "cold_build_ms", build_ms);
  AppendKV(json, "restart_ms", restart_ms);
  AppendKV(json, "restart_speedup", build_ms / restart_ms, false);
  json += ", \"restart_hits\": " +
          std::to_string(StoreCount(&restart_metrics, "hit")) +
          ", \"restart_builds\": " +
          std::to_string(StoreCount(&restart_metrics, "build"));
  json += "},\n  \"pipeline\": {\"stage_spans_ok\": ";
  json += stage_spans_ok ? "true" : "false";
  json += ", \"stage_metrics_ok\": ";
  json += stage_metrics_ok ? "true" : "false";
  json += ", \"fallbacks\": " + std::to_string(fallbacks);
  json += ", \"stage_candidates\": {\"joinable\": [" +
          std::to_string(StageCount(&cold_metrics, "joinable", "retrieve")) +
          ", " +
          std::to_string(StageCount(&cold_metrics, "joinable", "enrich")) +
          ", " +
          std::to_string(StageCount(&cold_metrics, "joinable", "rerank")) +
          "], \"unionable\": [" +
          std::to_string(StageCount(&cold_metrics, "unionable", "retrieve")) +
          ", " +
          std::to_string(StageCount(&cold_metrics, "unionable", "enrich")) +
          ", " +
          std::to_string(StageCount(&cold_metrics, "unionable", "rerank")) +
          "]}";
  json += "},\n  \"determinism\": {\"ab_rankings_identical\": ";
  json += ab_identical ? "true" : "false";
  json += ", \"cost_bounded_by_candidates\": ";
  json += cost_bounded ? "true" : "false";
  json += ", \"restart_rankings_identical\": ";
  json += restart_identical ? "true" : "false";
  json += "}\n}\n";

  std::FILE* f = std::fopen(options.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_repository: cannot write %s\n",
                 options.out.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "bench_repository: wrote %s\n", options.out.c_str());

  if (!ab_identical || !restart_all_hits || !restart_identical ||
      !cost_bounded || !stage_spans_ok || !stage_metrics_ok ||
      fallbacks != 0 || !speedup_ok) {
    std::fprintf(
        stderr,
        "bench_repository: FAIL — ab_identical=%d restart_all_hits=%d "
        "restart_identical=%d cost_bounded=%d stage_spans_ok=%d "
        "stage_metrics_ok=%d fallbacks=%llu speedup_ok=%d\n",
        ab_identical, restart_all_hits, restart_identical, cost_bounded,
        stage_spans_ok, stage_metrics_ok,
        static_cast<unsigned long long>(fallbacks), speedup_ok);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace valentine

int main(int argc, char** argv) {
  valentine::Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tables") == 0 && i + 1 < argc) {
      options.tables = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      options.out = argv[++i];
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      options.store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      options.smoke = true;
      options.tables = 300;
      options.queries = 2;
    } else {
      std::fprintf(stderr,
                   "usage: bench_repository [--tables N] [--out PATH] "
                   "[--store DIR] [--smoke]\n");
      return 2;
    }
  }
  return valentine::Run(options);
}
