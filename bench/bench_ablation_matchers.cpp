// Ablation bench for matcher design choices DESIGN.md calls out:
// (a) Similarity Flooding fixpoint formulae (basic/A/B/C — the paper
//     fixes C), (b) Cupid's structural weight (the paper caps w_struct
//     at 0.6 because relations are flat), and (c) the distribution-based
//     matcher's exact vs greedy cluster-selection solver.

#include "bench_common.h"
#include "datasets/wikidata.h"
#include "matchers/cupid.h"
#include "matchers/distribution_based.h"
#include "matchers/embdi.h"
#include "matchers/similarity_flooding.h"
#include "metrics/metrics.h"

using namespace valentine;
using namespace valentine::bench;

namespace {
double RunOn(const ColumnMatcher& m, const DatasetPair& p) {
  MatchResult r = m.Match(p.source, p.target);
  return RecallAtGroundTruth(r, p.ground_truth);
}
}  // namespace

int main() {
  // One noisy-schema unionable pair per source.
  std::vector<DatasetPair> pairs;
  for (const Source& src : MakeFabricationSources()) {
    FabricationOptions fab;
    fab.scenario = Scenario::kUnionable;
    fab.row_overlap = 0.5;
    fab.noisy_schema = true;
    fab.seed = 42;
    auto p = FabricateDatasetPair(src.table, fab);
    if (p.ok()) pairs.push_back(std::move(p).ValueOrDie());
  }

  std::printf("== Ablation: Similarity Flooding fixpoint formulae ==\n\n");
  {
    std::vector<std::string> header = {"formula"};
    for (const auto& p : pairs) header.push_back(p.source.name());
    std::vector<std::vector<std::string>> rows;
    const std::pair<const char*, SfFormula> formulas[] = {
        {"basic", SfFormula::kBasic},
        {"A", SfFormula::kA},
        {"B", SfFormula::kB},
        {"C (paper)", SfFormula::kC},
    };
    for (const auto& [name, formula] : formulas) {
      SimilarityFloodingOptions o;
      o.formula = formula;
      SimilarityFloodingMatcher m(o);
      std::vector<std::string> row = {name};
      for (const auto& p : pairs) row.push_back(FormatDouble(RunOn(m, p), 2));
      rows.push_back(std::move(row));
    }
    PrintTable(header, rows);
  }

  std::printf("\n== Ablation: Cupid structural weight ==\n\n");
  {
    std::vector<std::string> header = {"w_struct"};
    for (const auto& p : pairs) header.push_back(p.source.name());
    std::vector<std::vector<std::string>> rows;
    for (double w : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      CupidOptions o;
      o.leaf_w_struct = w;
      o.w_struct = w;
      CupidMatcher m(o);
      std::vector<std::string> row = {FormatDouble(w, 1)};
      for (const auto& p : pairs) row.push_back(FormatDouble(RunOn(m, p), 2));
      rows.push_back(std::move(row));
    }
    PrintTable(header, rows);
    std::printf("expected: recall degrades at high w_struct — flat "
                "relational schemata carry no structure, which is why the "
                "paper capped w_struct at 0.6\n");
  }

  std::printf("\n== Ablation: distribution-based cluster solver ==\n\n");
  {
    std::vector<std::string> header = {"solver"};
    for (const auto& p : pairs) header.push_back(p.source.name());
    std::vector<std::vector<std::string>> rows;
    for (size_t exact_limit : {size_t{0}, size_t{10}}) {
      DistributionBasedOptions o;
      o.exact_solver_limit = exact_limit;
      DistributionBasedMatcher m(o);
      std::vector<std::string> row = {exact_limit == 0 ? "greedy-only"
                                                       : "exact<=10+greedy"};
      for (const auto& p : pairs) row.push_back(FormatDouble(RunOn(m, p), 2));
      rows.push_back(std::move(row));
    }
    PrintTable(header, rows);
    std::printf("expected: near-identical results — the greedy fallback is "
                "an adequate ILP substitute at this scale\n");
  }

  std::printf("\n== Ablation: EmbDI training algorithm ==\n\n");
  {
    // Joinable pairs (value overlap present) — EmbDI's favourable
    // regime; Table II pins the trainer to word2vec, PPMI is the
    // count-based alternative.
    std::vector<DatasetPair> join_pairs;
    for (const Source& src : MakeFabricationSources(200)) {
      FabricationOptions fab;
      fab.scenario = Scenario::kJoinable;
      fab.column_overlap = 0.5;
      fab.seed = 43;
      auto p = FabricateDatasetPair(src.table, fab);
      if (p.ok()) join_pairs.push_back(std::move(p).ValueOrDie());
    }
    std::vector<std::string> header = {"trainer"};
    for (const auto& p : join_pairs) header.push_back(p.source.name());
    std::vector<std::vector<std::string>> rows;
    const std::pair<const char*, EmbdiTraining> trainers[] = {
        {"word2vec (paper)", EmbdiTraining::kWord2Vec},
        {"PPMI projection", EmbdiTraining::kPpmi},
    };
    for (const auto& [name, training] : trainers) {
      EmbdiOptions o;
      o.training = training;
      o.max_rows = 80;
      o.walks_per_node = 2;
      o.sentence_length = 20;
      o.dimensions = 32;
      o.epochs = 2;
      EmbdiMatcher m(o);
      std::vector<std::string> row = {name};
      for (const auto& p : join_pairs) {
        row.push_back(FormatDouble(RunOn(m, p), 2));
      }
      rows.push_back(std::move(row));
    }
    PrintTable(header, rows);
    std::printf("expected: both trainers exploit shared value nodes; "
                "word2vec is the paper's configuration\n");
  }
  return 0;
}
