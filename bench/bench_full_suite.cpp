// The full Fig. 1 pipeline at reduced scale: fabricate the pair suites
// from all three sources, run every method family's full Table II grid
// in parallel, aggregate per scenario, and export the raw outcomes as
// JSON — the single-command version of the paper's "~75K experiments"
// campaign (paper: 553 pairs x 135 configurations; here the suite is
// scaled down but the accounting machinery is identical).

#include <cstdio>

#include "bench_common.h"
#include "datasets/chembl.h"
#include "harness/json_export.h"
#include "harness/campaign.h"
#include "harness/parallel.h"
#include "matchers/embdi.h"
#include "matchers/jaccard_levenshtein.h"

using namespace valentine;
using namespace valentine::bench;

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "/tmp/valentine_suite.json";

  PairSuiteOptions opt;
  opt.row_overlaps = {0.5};
  opt.column_overlaps = {0.5};
  opt.seed = 6;
  auto suite = MakeCombinedSuite(opt);
  std::printf("Fabricated %zu dataset pairs from 3 sources.\n", suite.size());

  // All families; heavy instance methods get bench-scaled options.
  Ontology efo = MakeEfoLikeOntology();
  std::vector<MethodFamily> families;
  families.push_back(CupidFamily());
  families.push_back(SimilarityFloodingFamily());
  families.push_back(ComaFamily());
  families.push_back(DistributionFamily1());
  families.push_back(DistributionFamily2());
  families.push_back(SemPropFamily(&efo));
  {
    EmbdiOptions o;
    o.max_rows = 80;
    o.walks_per_node = 2;
    o.sentence_length = 20;
    o.dimensions = 32;
    o.epochs = 2;
    MethodFamily em{"EmbDI", {{"word2vec (scaled)",
                               std::make_shared<EmbdiMatcher>(o)}}};
    families.push_back(std::move(em));
  }
  {
    MethodFamily jl{"JaccardLevenshtein", {}};
    for (double th : {0.4, 0.5, 0.6, 0.7, 0.8}) {
      JaccardLevenshteinOptions o;
      o.threshold = th;
      o.max_distinct_values = 100;
      jl.grid.push_back({"th=" + FormatDouble(th, 1),
                         std::make_shared<JaccardLevenshteinMatcher>(o)});
    }
    families.push_back(std::move(jl));
  }

  size_t configs = TotalConfigurations(families);
  std::printf("Running %zu configurations x %zu pairs = %zu experiments "
              "(parallel)...\n\n",
              configs, suite.size(), configs * suite.size());

  CampaignReport report = RunCampaignOnSuite(suite, families);
  std::vector<FamilyPairOutcome> all_outcomes;
  for (const CampaignFamilyReport& fr : report.families) {
    PrintScenarioStats(fr.family, fr.by_scenario);
    std::printf("  avg runtime per run: %.1f ms\n\n", fr.avg_runtime_ms);
    for (const auto& o : fr.outcomes) all_outcomes.push_back(o);
  }

  Status st = WriteJsonFile(ToJson(all_outcomes), json_path);
  if (!st.ok()) {
    std::fprintf(stderr, "JSON export failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Exported %zu outcomes to %s\n", all_outcomes.size(),
              json_path);
  return 0;
}
