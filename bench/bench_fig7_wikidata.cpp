// Reproduces paper Fig. 7: per-scenario Recall@|GT| of every method on
// the curated WikiData singers pairs. Paper shape: instance-based beat
// schema-based in every scenario; distribution-based collapses on
// view-unionable; instance-based methods reach 1.0 on joinable; COMA
// (instances) wins semantically-joinable.

#include "bench_common.h"
#include "datasets/wikidata.h"
#include "matchers/embdi.h"
#include "matchers/jaccard_levenshtein.h"

using namespace valentine;
using namespace valentine::bench;

int main() {
  auto pairs = MakeWikidataPairs(/*rows=*/400, /*seed=*/7);

  std::vector<MethodFamily> families;
  families.push_back(CupidFamily());
  families.push_back(SimilarityFloodingFamily());
  families.push_back(ComaSchemaFamily());
  families.push_back(ComaInstancesFamily());
  families.push_back(DistributionFamily1());
  families.push_back(DistributionFamily2());
  {
    MethodFamily jl{"JaccardLevenshtein", {}};
    for (double th : {0.4, 0.5, 0.6, 0.7, 0.8}) {
      JaccardLevenshteinOptions o;
      o.threshold = th;
      o.max_distinct_values = 150;
      jl.grid.push_back({"th=" + FormatDouble(th, 1),
                         std::make_shared<JaccardLevenshteinMatcher>(o)});
    }
    families.push_back(std::move(jl));
  }
  {
    EmbdiOptions o;
    o.max_rows = 80;
    o.walks_per_node = 2;
    o.sentence_length = 20;
    o.dimensions = 32;
    o.epochs = 2;
    MethodFamily em{"EmbDI", {}};
    em.grid.push_back({"scaled", std::make_shared<EmbdiMatcher>(o)});
    families.push_back(std::move(em));
  }

  std::printf("== Fig. 7: WikiData singers, Recall@|GT| per scenario ==\n\n");
  std::vector<std::string> header = {"Method"};
  for (const auto& p : pairs) header.push_back(ScenarioName(p.scenario));
  std::vector<std::vector<std::string>> rows;
  for (const auto& family : families) {
    std::vector<std::string> row = {family.name};
    for (const auto& pair : pairs) {
      FamilyPairOutcome out = RunFamilyOnPair(family, pair);
      row.push_back(FormatDouble(out.best_recall, 2));
    }
    rows.push_back(std::move(row));
  }
  PrintTable(header, rows);
  return 0;
}
