// Reproduces paper Fig. 6: effectiveness of the hybrid methods. EmbDI
// runs over the full fabricated suite (all three sources); SemProp runs
// only over the ChEMBL-derived suite, because it needs a compatible
// domain ontology — exactly the situation in the paper (§VII-A3).
// "Noisy Instances/Schemata" here means noise in schemata, instances, or
// both, as in the figure.

#include "bench_common.h"
#include "matchers/embdi.h"

using namespace valentine;
using namespace valentine::bench;

namespace {
// EmbDI with bench-scaled graph/training sizes (shape-preserving; see
// EXPERIMENTS.md).
MethodFamily FastEmbdiFamily() {
  EmbdiOptions o;
  o.max_rows = 80;
  o.walks_per_node = 2;
  o.sentence_length = 20;
  o.dimensions = 32;
  o.epochs = 2;
  MethodFamily family{"EmbDI", {}};
  family.grid.push_back({"word2vec len=20 win=3 dim=32 (scaled)",
                         std::make_shared<EmbdiMatcher>(o)});
  return family;
}

std::vector<DatasetPair> OnlyNoisy(std::vector<DatasetPair> suite) {
  std::vector<DatasetPair> out;
  for (auto& p : suite) {
    bool noisy_schema = p.id.find("_noisySchema") != std::string::npos;
    bool noisy_inst = p.id.find("_noisyInst") != std::string::npos;
    if (noisy_schema || noisy_inst) out.push_back(std::move(p));
  }
  return out;
}
}  // namespace

int main() {
  PairSuiteOptions opt;
  opt.seed = 3;

  std::printf("== Fig. 6: hybrid methods, noisy instances/schemata ==\n");
  std::printf("paper shape: EmbDI inconsistent, acceptable only on "
              "joinable; SemProp worst of all methods\n\n");

  auto noisy_all = OnlyNoisy(MakeCombinedSuite(opt));
  RunAndPrintFamily(FastEmbdiFamily(), noisy_all);

  // SemProp: ChEMBL only, with its ontology.
  Ontology efo = MakeEfoLikeOntology();
  PairSuiteOptions chembl_opt;
  chembl_opt.seed = 3;
  auto chembl_suite = OnlyNoisy(
      BuildFabricatedSuite(MakeChemblAssays(kSourceRows, 99), chembl_opt));
  std::printf("(SemProp on ChEMBL-derived pairs only)\n");
  RunAndPrintFamily(SemPropFamily(&efo), chembl_suite);
  return 0;
}
