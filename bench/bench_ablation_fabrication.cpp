// Ablation bench: how the fabrication knobs move matcher effectiveness.
// Sweeps (a) row overlap for unionable pairs and (b) column overlap for
// joinable pairs, for the Jaccard-Levenshtein baseline and the
// distribution-based matcher, isolating the "view-unionable is harder
// because there is no row overlap" mechanism the paper reports.

#include "bench_common.h"
#include "matchers/distribution_based.h"
#include "matchers/jaccard_levenshtein.h"
#include "metrics/metrics.h"

using namespace valentine;
using namespace valentine::bench;

namespace {
double RunOn(const ColumnMatcher& m, const DatasetPair& p) {
  MatchResult r = m.Match(p.source, p.target);
  return RecallAtGroundTruth(r, p.ground_truth);
}
}  // namespace

int main() {
  Table tpcdi = MakeTpcdiProspect(kSourceRows, 2026);
  JaccardLevenshteinOptions jl_opt;
  jl_opt.max_distinct_values = 150;
  JaccardLevenshteinMatcher jl(jl_opt);
  DistributionBasedMatcher dist;

  std::printf("== Ablation: row overlap sweep (unionable, verbatim) ==\n\n");
  {
    std::vector<std::string> header = {"row_overlap", "JaccardLev",
                                       "DistributionBased"};
    std::vector<std::vector<std::string>> rows;
    for (double overlap : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
      FabricationOptions fab;
      fab.scenario = Scenario::kUnionable;
      fab.row_overlap = overlap;
      fab.seed = 77;
      auto pair = FabricateDatasetPair(tpcdi, fab);
      rows.push_back({FormatDouble(overlap, 2),
                      FormatDouble(RunOn(jl, *pair), 2),
                      FormatDouble(RunOn(dist, *pair), 2)});
    }
    PrintTable(header, rows);
    std::printf("expected: instance methods degrade as row overlap -> 0 "
                "(the view-unionable failure mechanism)\n\n");
  }

  std::printf("== Ablation: column overlap sweep (joinable) ==\n\n");
  {
    std::vector<std::string> header = {"column_overlap", "JaccardLev",
                                       "DistributionBased", "|GT|"};
    std::vector<std::vector<std::string>> rows;
    for (double overlap : {0.1, 0.3, 0.5, 0.8, 1.0}) {
      FabricationOptions fab;
      fab.scenario = Scenario::kJoinable;
      fab.column_overlap = overlap;
      fab.seed = 78;
      auto pair = FabricateDatasetPair(tpcdi, fab);
      rows.push_back({FormatDouble(overlap, 2),
                      FormatDouble(RunOn(jl, *pair), 2),
                      FormatDouble(RunOn(dist, *pair), 2),
                      std::to_string(pair->ground_truth.size())});
    }
    PrintTable(header, rows);
    std::printf("expected: joinable stays easy across column overlaps "
                "(shared columns keep full value overlap)\n\n");
  }

  std::printf("== Ablation: instance-noise rate sweep (unionable) ==\n\n");
  {
    std::vector<std::string> header = {"noise", "JaccardLev",
                                       "DistributionBased"};
    std::vector<std::vector<std::string>> rows;
    for (bool noisy : {false, true}) {
      FabricationOptions fab;
      fab.scenario = Scenario::kUnionable;
      fab.row_overlap = 0.5;
      fab.noisy_instances = noisy;
      fab.seed = 79;
      auto pair = FabricateDatasetPair(tpcdi, fab);
      rows.push_back({noisy ? "noisy" : "verbatim",
                      FormatDouble(RunOn(jl, *pair), 2),
                      FormatDouble(RunOn(dist, *pair), 2)});
    }
    PrintTable(header, rows);
    std::printf("expected: noise strictly hurts instance-based methods\n");
  }
  return 0;
}
