// Reproduces paper Table III: Recall@|GT| of every method on the
// human-curated pairs — the 7 Magellan pairs (reported as the mean over
// pairs) and the two ING pairs.
//
// Paper values for orientation:
//   Magellan: schema-based methods = 1.0; COMA-inst = 1.0; Dist = 0.54;
//             JL = 0.787; EmbDI = 0.818.
//   ING#1: Dist best (0.857); SimFlooding weak (0.357); others ~0.7-0.79.
//   ING#2: Dist best (0.879); COMA collapses on n-m matches (~0.13);
//          EmbDI weak (0.227).

#include "bench_common.h"
#include "datasets/ing.h"
#include "datasets/magellan.h"
#include "matchers/coma.h"
#include "matchers/embdi.h"
#include "matchers/ensemble.h"
#include "matchers/jaccard_levenshtein.h"

using namespace valentine;
using namespace valentine::bench;

namespace {
std::vector<MethodFamily> CuratedFamilies() {
  std::vector<MethodFamily> families;
  families.push_back(CupidFamily());
  families.push_back(SimilarityFloodingFamily());
  // COMA with its best-counterpart (1-1) selection, the COMA 3.0
  // behaviour the paper observed ("we believe that to be a bug") — it
  // is what collapses on ING#2's n-m ground truth.
  {
    ComaOptions o;
    o.strategy = ComaStrategy::kSchema;
    o.selection = ComaSelection::kOneToOne;
    MethodFamily f{"COMA-Schema",
                   {{"schema, 1-1 selection", std::make_shared<ComaMatcher>(o)}}};
    families.push_back(std::move(f));
  }
  {
    ComaOptions o;
    o.strategy = ComaStrategy::kInstances;
    o.selection = ComaSelection::kOneToOne;
    MethodFamily f{"COMA-Instances",
                   {{"instances, 1-1 selection",
                     std::make_shared<ComaMatcher>(o)}}};
    families.push_back(std::move(f));
  }
  families.push_back(DistributionFamily1());
  families.push_back(DistributionFamily2());
  {
    MethodFamily jl{"JaccardLevenshtein", {}};
    for (double th : {0.4, 0.5, 0.6, 0.7, 0.8}) {
      JaccardLevenshteinOptions o;
      o.threshold = th;
      o.max_distinct_values = 150;
      jl.grid.push_back({"th=" + FormatDouble(th, 1),
                         std::make_shared<JaccardLevenshteinMatcher>(o)});
    }
    families.push_back(std::move(jl));
  }
  {
    EmbdiOptions o;
    o.max_rows = 80;
    o.walks_per_node = 2;
    o.sentence_length = 20;
    o.dimensions = 32;
    o.epochs = 2;
    MethodFamily em{"EmbDI", {}};
    em.grid.push_back({"scaled", std::make_shared<EmbdiMatcher>(o)});
    families.push_back(std::move(em));
  }
  {
    // §IX extension: the composed matcher the paper recommends building.
    MethodFamily ens{"Ensemble*", {}};
    ens.grid.push_back(
        {"RRF(COMA-inst+Dist+JL)",
         std::shared_ptr<ColumnMatcher>(MakeDefaultEnsemble())});
    families.push_back(std::move(ens));
  }
  return families;
}
}  // namespace

int main() {
  auto magellan = MakeMagellanPairs(/*rows=*/250, /*seed=*/5);
  DatasetPair ing1 = MakeIngPair1(/*rows=*/300, /*seed=*/11);
  DatasetPair ing2 = MakeIngPair2(/*rows=*/300, /*seed=*/12);

  std::printf("== Table III: Recall@|GT| on Magellan and ING data ==\n\n");
  std::vector<std::string> header = {"Method", "Magellan(mean)", "ING#1",
                                     "ING#2"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& family : CuratedFamilies()) {
    double magellan_sum = 0.0;
    for (const auto& pair : magellan) {
      magellan_sum += RunFamilyOnPair(family, pair).best_recall;
    }
    double magellan_mean = magellan_sum / static_cast<double>(magellan.size());
    double r1 = RunFamilyOnPair(family, ing1).best_recall;
    double r2 = RunFamilyOnPair(family, ing2).best_recall;
    rows.push_back({family.name, FormatDouble(magellan_mean, 3),
                    FormatDouble(r1, 3), FormatDouble(r2, 3)});
  }
  PrintTable(header, rows);
  std::printf("\npaper: Magellan schema-based=1.0, Dist=0.54, JL=0.787, "
              "EmbDI=0.818; ING#1 Dist=0.857 best, SimFl=0.357 worst; "
              "ING#2 Dist=0.879 best, COMA~0.13\n");
  return 0;
}
