// Reproduces paper Fig. 5: effectiveness of the instance-based methods —
// Distribution-based (both threshold regimes), COMA (instances), and the
// Jaccard-Levenshtein baseline — per scenario, split into verbatim and
// noisy instance variants as in the figure.

#include "bench_common.h"
#include "matchers/jaccard_levenshtein.h"

using namespace valentine;
using namespace valentine::bench;

namespace {
// The baseline with a tighter distinct-value cap for bench runtimes.
MethodFamily FastJaccardLevenshteinFamily() {
  MethodFamily family{"JaccardLevenshtein", {}};
  for (double th : {0.4, 0.5, 0.6, 0.7, 0.8}) {
    JaccardLevenshteinOptions o;
    o.threshold = th;
    o.max_distinct_values = 100;
    family.grid.push_back(
        {"th=" + FormatDouble(th, 1),
         std::make_shared<JaccardLevenshteinMatcher>(o)});
  }
  return family;
}

void RunBlock(const std::vector<DatasetPair>& suite, const char* title,
              const char* paper_shape) {
  std::printf("== Fig. 5 (%s) ==\n", title);
  std::printf("paper shape: %s\n\n", paper_shape);
  RunAndPrintFamily(DistributionFamily1(), suite);
  RunAndPrintFamily(DistributionFamily2(), suite);
  RunAndPrintFamily(ComaInstancesFamily(), suite);
  RunAndPrintFamily(FastJaccardLevenshteinFamily(), suite);
}
}  // namespace

int main() {
  PairSuiteOptions opt;
  opt.seed = 2;
  auto all = MakeCombinedSuite(opt);

  RunBlock(FilterByInstanceNoise(all, /*noisy=*/false),
           "verbatim instances",
           "joinable easy (~1); view-unionable much harder than unionable; "
           "COMA most effective; JL baseline competitive");
  RunBlock(FilterByInstanceNoise(all, /*noisy=*/true),
           "noisy instances",
           "all methods degrade; semantically-joinable worse than joinable; "
           "high dispersion");
  return 0;
}
