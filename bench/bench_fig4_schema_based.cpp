// Reproduces paper Fig. 4: effectiveness (Recall@|GT|, min/median/max)
// of the schema-based methods — Cupid, Similarity Flooding, COMA
// (schema) — per relatedness scenario over the fabricated suites with
// NOISY schemata, plus the verbatim-schema sanity check the text
// describes ("with verbatim schemata ... all schema-based methods are
// accurate").

#include "bench_common.h"

using namespace valentine;
using namespace valentine::bench;

int main() {
  PairSuiteOptions opt;
  opt.seed = 1;
  auto all = MakeCombinedSuite(opt);

  std::printf("== Fig. 4: schema-based methods, noisy schemata ==\n");
  std::printf("paper shape: inconsistent results, median <= ~0.6; Cupid "
              "slightly worst\n\n");
  auto noisy = FilterBySchemaNoise(all, /*noisy=*/true);
  RunAndPrintFamily(CupidFamily(), noisy);
  RunAndPrintFamily(SimilarityFloodingFamily(), noisy);
  RunAndPrintFamily(ComaSchemaFamily(), noisy);

  std::printf("== Fig. 4 sanity check: verbatim schemata ==\n");
  std::printf("paper shape: all schema-based methods place correct matches "
              "at the top (recall ~1)\n\n");
  auto verbatim = FilterBySchemaNoise(all, /*noisy=*/false);
  RunAndPrintFamily(CupidFamily(), verbatim);
  RunAndPrintFamily(SimilarityFloodingFamily(), verbatim);
  RunAndPrintFamily(ComaSchemaFamily(), verbatim);
  return 0;
}
