// Reproduces paper Table I: the matcher-capability taxonomy, queried
// from live matcher metadata rather than hard-coded.

#include <cstdio>
#include <memory>
#include <vector>

#include "harness/report.h"
#include "matchers/coma.h"
#include "matchers/cupid.h"
#include "matchers/distribution_based.h"
#include "matchers/embdi.h"
#include "matchers/jaccard_levenshtein.h"
#include "matchers/semprop.h"
#include "matchers/similarity_flooding.h"

using namespace valentine;

int main() {
  std::vector<std::unique_ptr<ColumnMatcher>> matchers;
  matchers.push_back(std::make_unique<CupidMatcher>());
  matchers.push_back(std::make_unique<SimilarityFloodingMatcher>());
  {
    ComaOptions schema_opt;
    schema_opt.strategy = ComaStrategy::kSchema;
    matchers.push_back(std::make_unique<ComaMatcher>(schema_opt));
    ComaOptions inst_opt;
    inst_opt.strategy = ComaStrategy::kInstances;
    matchers.push_back(std::make_unique<ComaMatcher>(inst_opt));
  }
  matchers.push_back(std::make_unique<DistributionBasedMatcher>());
  matchers.push_back(std::make_unique<SemPropMatcher>(nullptr));
  matchers.push_back(std::make_unique<EmbdiMatcher>());
  matchers.push_back(std::make_unique<JaccardLevenshteinMatcher>());

  const MatchType kAllTypes[] = {
      MatchType::kAttributeOverlap, MatchType::kValueOverlap,
      MatchType::kSemanticOverlap,  MatchType::kDataType,
      MatchType::kDistribution,     MatchType::kEmbeddings,
  };

  std::printf("== Table I: matching methods and the match types they cover ==\n\n");
  std::vector<std::string> header = {"Method", "Category"};
  for (MatchType t : kAllTypes) header.push_back(MatchTypeName(t));
  std::vector<std::vector<std::string>> rows;
  for (const auto& m : matchers) {
    std::vector<std::string> row = {m->Name(),
                                    MatcherCategoryName(m->Category())};
    auto caps = m->Capabilities();
    for (MatchType t : kAllTypes) {
      bool has = false;
      for (MatchType c : caps) has = has || c == t;
      row.push_back(has ? "x" : "");
    }
    rows.push_back(std::move(row));
  }
  PrintTable(header, rows);
  return 0;
}
