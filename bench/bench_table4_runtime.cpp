// Reproduces paper Table IV: average runtime per experiment (one method
// configuration on one table pair) for every method. Absolute numbers
// are not comparable to the paper's (different hardware, scaled data) —
// the reproduced claim is the ORDERING: schema-based methods are
// fastest (COMA-schema < SimFlooding ~ Cupid), instance-based methods
// are orders of magnitude slower, and EmbDI is the slowest overall.

#include <algorithm>

#include "bench_common.h"
#include "datasets/chembl.h"
#include "matchers/embdi.h"
#include "matchers/jaccard_levenshtein.h"

using namespace valentine;
using namespace valentine::bench;

int main() {
  // A small, fixed sample of pairs so every method sees identical input.
  // Larger tables than the effectiveness benches: runtime scaling with
  // instance volume is exactly what this table measures.
  PairSuiteOptions opt;
  opt.row_overlaps = {0.5};
  opt.column_overlaps = {0.5};
  opt.schema_noise_variants = false;
  opt.instance_noise_variants = false;
  opt.seed = 4;
  auto suite = MakeCombinedSuite(opt, /*rows=*/1500);

  struct Entry {
    std::string name;
    double avg_ms;
  };
  std::vector<Entry> entries;
  auto time_family = [&](const MethodFamily& family) {
    auto outcomes = RunFamilyOnSuite(family, suite);
    entries.push_back({family.name, AverageRuntimeMsPerRun(outcomes)});
  };

  // Single-configuration variants so runtimes measure the method, not
  // the grid size.
  {
    MethodFamily f{"Cupid", {CupidFamily().grid.front()}};
    time_family(f);
  }
  time_family(SimilarityFloodingFamily());
  time_family(ComaSchemaFamily());
  time_family(ComaInstancesFamily());
  {
    MethodFamily f{"DistributionBased",
                   {DistributionFamily1().grid.front()}};
    time_family(f);
  }
  {
    Ontology efo = MakeEfoLikeOntology();
    MethodFamily f{"SemProp", {SemPropFamily(&efo).grid.front()}};
    // SemProp only ran on ChEMBL pairs in the paper; keep that here.
    std::vector<DatasetPair> chembl;
    for (const auto& p : suite) {
      if (p.id.find("assays") != std::string::npos) chembl.push_back(p);
    }
    auto outcomes = RunFamilyOnSuite(f, chembl);
    entries.push_back({f.name, AverageRuntimeMsPerRun(outcomes)});
  }
  {
    EmbdiOptions o;
    o.max_rows = 400;
    o.walks_per_node = 3;
    o.sentence_length = 40;
    o.dimensions = 48;
    o.epochs = 2;
    MethodFamily f{"EmbDI", {{"scaled", std::make_shared<EmbdiMatcher>(o)}}};
    time_family(f);
  }
  {
    JaccardLevenshteinOptions o;
    o.max_distinct_values = 250;
    MethodFamily f{"JaccardLevenshtein",
                   {{"th=0.5", std::make_shared<JaccardLevenshteinMatcher>(o)}}};
    time_family(f);
  }

  std::printf("== Table IV: average runtime per experiment ==\n\n");
  std::vector<std::string> header = {"Method", "Avg runtime (ms)"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& e : entries) {
    rows.push_back({e.name, FormatDouble(e.avg_ms, 2)});
  }
  PrintTable(header, rows);
  std::printf("\npaper ordering (s): COMA-schema 1.67 < SimFl 7.09 < Cupid "
              "9.64 << Dist 71.2 < COMA-inst 318 < JL 523 < SemProp 735 << "
              "EmbDI 4818\n");
  return 0;
}
