// Google-benchmark microbenchmarks of the computational primitives the
// matchers are built on: string similarities, EMD, MinHash, histogram
// construction, word2vec steps, and whole-matcher invocations on a
// fixed small pair. Useful for tracking regressions in the kernels that
// dominate Table IV's runtimes.

#include <benchmark/benchmark.h>

#include "datasets/tpcdi.h"
#include "fabrication/fabricator.h"
#include "knowledge/hash_embedding.h"
#include "knowledge/word2vec.h"
#include "matchers/coma.h"
#include "matchers/cupid.h"
#include "matchers/distribution_based.h"
#include "matchers/jaccard_levenshtein.h"
#include "matchers/similarity_flooding.h"
#include "stats/emd.h"
#include "stats/histogram.h"
#include "stats/minhash.h"
#include "text/string_similarity.h"

namespace valentine {
namespace {

void BM_Levenshtein(benchmark::State& state) {
  std::string a = "application_identifier";
  std::string b = "applciation_identifeir";
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  std::string a = "customer_address";
  std::string b = "client_residence";
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaroWinklerSimilarity(a, b));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_TrigramSimilarity(benchmark::State& state) {
  std::string a = "permit_application_date";
  std::string b = "application_issue_date";
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrigramSimilarity(a, b));
  }
}
BENCHMARK(BM_TrigramSimilarity);

void BM_QuantileHistogram(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> data(static_cast<size_t>(state.range(0)));
  for (auto& d : data) d = rng.Gaussian(100, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QuantileHistogram::Build(data, 32));
  }
}
BENCHMARK(BM_QuantileHistogram)->Arg(1000)->Arg(10000);

void BM_Emd(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> a(5000), b(5000);
  for (auto& d : a) d = rng.Gaussian(100, 15);
  for (auto& d : b) d = rng.Gaussian(110, 20);
  auto ha = QuantileHistogram::Build(a, 32);
  auto hb = QuantileHistogram::Build(b, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EmdBetweenHistograms(ha, hb));
  }
}
BENCHMARK(BM_Emd);

void BM_MinHashBuild(benchmark::State& state) {
  std::unordered_set<std::string> set;
  for (int i = 0; i < 1000; ++i) set.insert("value_" + std::to_string(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinHashSignature::Build(set, 64));
  }
}
BENCHMARK(BM_MinHashBuild);

void BM_HashEmbedWord(benchmark::State& state) {
  HashEmbedder embedder(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedder.EmbedWord("acetylcholinesterase"));
  }
}
BENCHMARK(BM_HashEmbedWord);

void BM_Word2VecTrain(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::vector<std::string>> sentences;
  for (int s = 0; s < 200; ++s) {
    std::vector<std::string> sentence;
    for (int w = 0; w < 20; ++w) {
      sentence.push_back("tok" + std::to_string(rng.Index(300)));
    }
    sentences.push_back(std::move(sentence));
  }
  for (auto _ : state) {
    Word2VecOptions o;
    o.dimensions = 32;
    o.epochs = 1;
    Word2Vec model(o);
    model.Train(sentences);
    benchmark::DoNotOptimize(model.vocab_size());
  }
}
BENCHMARK(BM_Word2VecTrain);

// Whole-matcher invocations on one fixed fabricated pair.
const DatasetPair& FixedPair() {
  static const DatasetPair* kPair = [] {
    Table t = MakeTpcdiProspect(200, 2026);
    FabricationOptions fab;
    fab.scenario = Scenario::kUnionable;
    fab.row_overlap = 0.5;
    fab.noisy_schema = true;
    fab.seed = 9;
    return new DatasetPair(FabricateDatasetPair(t, fab).ValueOrDie());
  }();
  return *kPair;
}

void BM_MatcherCupid(benchmark::State& state) {
  const DatasetPair& p = FixedPair();
  for (auto _ : state) {
    CupidMatcher m;  // fresh instance: include cache-cold cost
    benchmark::DoNotOptimize(m.Match(p.source, p.target));
  }
}
BENCHMARK(BM_MatcherCupid);

void BM_MatcherSimilarityFlooding(benchmark::State& state) {
  const DatasetPair& p = FixedPair();
  SimilarityFloodingMatcher m;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Match(p.source, p.target));
  }
}
BENCHMARK(BM_MatcherSimilarityFlooding);

void BM_MatcherComaSchema(benchmark::State& state) {
  const DatasetPair& p = FixedPair();
  ComaMatcher m;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Match(p.source, p.target));
  }
}
BENCHMARK(BM_MatcherComaSchema);

void BM_MatcherDistribution(benchmark::State& state) {
  const DatasetPair& p = FixedPair();
  DistributionBasedMatcher m;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Match(p.source, p.target));
  }
}
BENCHMARK(BM_MatcherDistribution);

void BM_MatcherJaccardLevenshtein(benchmark::State& state) {
  const DatasetPair& p = FixedPair();
  JaccardLevenshteinOptions o;
  o.max_distinct_values = 150;
  JaccardLevenshteinMatcher m(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Match(p.source, p.target));
  }
}
BENCHMARK(BM_MatcherJaccardLevenshtein);

}  // namespace
}  // namespace valentine

BENCHMARK_MAIN();
