// Ablation bench for the extension modules the paper's §IX motivates:
// (a) exact vs sketch-based value-overlap matching (accuracy/runtime
//     trade-off of MinHash + Lazo + LSH pruning),
// (b) value normalization on semantically-joinable pairs,
// (c) the human-in-the-loop feedback loop (recall vs labeled pairs).

#include <chrono>
#include <memory>

#include "bench_common.h"
#include "datasets/wikidata.h"
#include "harness/feedback.h"
#include "matchers/coma.h"
#include "matchers/jaccard_levenshtein.h"
#include "metrics/metrics.h"
#include "scaling/approximate_matcher.h"
#include "text/normalizer.h"

using namespace valentine;
using namespace valentine::bench;

namespace {
struct Timed {
  double recall;
  double ms;
};

Timed RunTimed(const ColumnMatcher& m, const DatasetPair& p) {
  auto start = std::chrono::steady_clock::now();
  MatchResult r = m.Match(p.source, p.target);
  auto end = std::chrono::steady_clock::now();
  return {RecallAtGroundTruth(r, p.ground_truth),
          std::chrono::duration<double, std::milli>(end - start).count()};
}
}  // namespace

int main() {
  std::printf("== Ablation: exact vs approximate value-overlap matching ==\n\n");
  {
    // A larger *noisy* pair: with perturbed instances, the exact
    // baseline falls into its quadratic fuzzy stage — the regime the
    // paper's §IX says needs approximation.
    Table big = MakeTpcdiProspect(1500, 2026);
    FabricationOptions fab;
    fab.scenario = Scenario::kSemanticallyJoinable;
    fab.column_overlap = 0.5;
    fab.seed = 21;
    DatasetPair pair = FabricateDatasetPair(big, fab).ValueOrDie();

    JaccardLevenshteinOptions exact_opt;
    exact_opt.threshold = 0.4;
    exact_opt.max_distinct_values = 600;
    JaccardLevenshteinMatcher exact(exact_opt);

    ApproximateOverlapOptions sketch_opt;
    sketch_opt.estimate_all_pairs = true;
    ApproximateOverlapMatcher sketch_all(sketch_opt);

    // LSH pruning tuned to the noisy regime: more bands with fewer rows
    // shift the S-curve left so moderate-Jaccard pairs still collide.
    ApproximateOverlapOptions lsh_opt;
    lsh_opt.lsh.bands = 64;
    lsh_opt.lsh.rows_per_band = 2;
    ApproximateOverlapMatcher sketch_lsh(lsh_opt);

    Timed t_exact = RunTimed(exact, pair);
    Timed t_sketch = RunTimed(sketch_all, pair);
    Timed t_lsh = RunTimed(sketch_lsh, pair);

    PrintTable({"variant", "Recall@|GT|", "runtime (ms)"},
               {{"exact fuzzy Jaccard", FormatDouble(t_exact.recall, 2),
                 FormatDouble(t_exact.ms, 1)},
                {"MinHash+Lazo, all pairs", FormatDouble(t_sketch.recall, 2),
                 FormatDouble(t_sketch.ms, 1)},
                {"MinHash+Lazo, LSH-pruned", FormatDouble(t_lsh.recall, 2),
                 FormatDouble(t_lsh.ms, 1)}});
    std::printf("expected: sketches preserve recall at a fraction of the "
                "exact fuzzy runtime; LSH banding must be tuned to the "
                "expected overlap regime\n\n");
  }

  std::printf("== Ablation: value normalization on semantic joins ==\n\n");
  {
    auto pairs = MakeWikidataPairs(300, 7);
    std::vector<std::string> header = {"pair", "plain JL", "normalized JL"};
    std::vector<std::vector<std::string>> rows;
    for (const auto& p : pairs) {
      JaccardLevenshteinOptions o;
      o.threshold = 0.0;
      o.max_distinct_values = 150;
      JaccardLevenshteinMatcher plain(o);
      NormalizeOptions norm;
      norm.sort_tokens = true;  // unify "Last, First" with "First Last"
      NormalizingMatcher normalized(
          std::make_unique<JaccardLevenshteinMatcher>(o), norm);
      rows.push_back({ScenarioName(p.scenario),
                      FormatDouble(RunTimed(plain, p).recall, 2),
                      FormatDouble(RunTimed(normalized, p).recall, 2)});
    }
    PrintTable(header, rows);
    std::printf("expected: normalization recovers the re-encoded columns of "
                "the unionable pair; the residual semantic-join gaps "
                "(acronyms, added name tokens) resist normalization — the "
                "paper's point that semantic instance similarity is a hard "
                "open problem\n\n");
  }

  std::printf("== Ablation: human-in-the-loop feedback rounds ==\n\n");
  {
    Table original = MakeTpcdiProspect(kSourceRows, 2026);
    FabricationOptions fab;
    fab.scenario = Scenario::kUnionable;
    fab.noisy_schema = true;
    fab.seed = 23;
    DatasetPair pair = FabricateDatasetPair(original, fab).ValueOrDie();
    ComaOptions copt;
    copt.selection = ComaSelection::kAll;
    ComaMatcher matcher(copt);
    MatchResult base = matcher.Match(pair.source, pair.target);

    std::vector<std::string> header = {"labeled pairs", "Recall@|GT|"};
    std::vector<std::vector<std::string>> rows;
    FeedbackSession session;
    rows.push_back({"0", FormatDouble(
                             RecallAtGroundTruth(base, pair.ground_truth),
                             2)});
    size_t total_labeled = 0;
    for (int round = 0; round < 6; ++round) {
      total_labeled +=
          SimulateReviewRound(session.Apply(base), pair.ground_truth, 4,
                              &session);
      rows.push_back({std::to_string(total_labeled),
                      FormatDouble(RecallAtGroundTruth(session.Apply(base),
                                                       pair.ground_truth),
                                   2)});
    }
    PrintTable(header, rows);
    std::printf("expected: recall climbs monotonically as the (simulated) "
                "user labels ranked candidates\n");
  }
  return 0;
}
