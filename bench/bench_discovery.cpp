// Discovery-quality bench: plant known join/union partners of several
// query tables inside a synthetic lake of decoys and measure whether the
// DiscoveryEngine ranks them first (precision@1 / @3 of *table* search —
// the metric a dataset discovery method built on Valentine would care
// about, §II-B).

#include <cstdio>

#include "bench_common.h"
#include "datasets/wikidata.h"
#include "discovery/discovery.h"

using namespace valentine;
using namespace valentine::bench;

int main() {
  // Lake: for each source, a joinable shard and a unionable shard of
  // the query are planted among all other sources' tables.
  auto sources = MakeFabricationSources(250);

  size_t join_hits_at1 = 0;
  size_t join_hits_at3 = 0;
  size_t union_hits_at1 = 0;
  size_t union_hits_at3 = 0;
  size_t queries = 0;

  for (size_t qi = 0; qi < sources.size(); ++qi) {
    FabricationOptions join_fab;
    join_fab.scenario = Scenario::kJoinable;
    join_fab.column_overlap = 0.4;
    join_fab.seed = 100 + qi;
    auto join_split = FabricateDatasetPair(sources[qi].table, join_fab);
    FabricationOptions union_fab;
    union_fab.scenario = Scenario::kUnionable;
    union_fab.row_overlap = 0.2;
    union_fab.noisy_schema = true;
    union_fab.seed = 200 + qi;
    auto union_split = FabricateDatasetPair(sources[qi].table, union_fab);
    if (!join_split.ok() || !union_split.ok()) continue;

    DiscoveryEngine lake;
    Table join_partner = join_split->target;
    join_partner.set_name("planted_join");
    (void)lake.AddTable(std::move(join_partner));
    Table union_partner = union_split->target;
    union_partner.set_name("planted_union");
    (void)lake.AddTable(std::move(union_partner));
    for (size_t other = 0; other < sources.size(); ++other) {
      if (other == qi) continue;
      Table decoy = sources[other].table;
      decoy.set_name("decoy_" + sources[other].name);
      (void)lake.AddTable(std::move(decoy));
    }
    (void)lake.AddTable(MakeWikidataSingersBase(250, 7));

    Table query = join_split->source;
    query.set_name("query");
    ++queries;

    auto joinable = lake.FindJoinable(query, 3);
    for (size_t i = 0; i < joinable.size(); ++i) {
      if (joinable[i].table_name == "planted_join") {
        if (i == 0) ++join_hits_at1;
        ++join_hits_at3;
      }
    }
    auto unionable = lake.FindUnionable(query, 3);
    for (size_t i = 0; i < unionable.size(); ++i) {
      if (unionable[i].table_name == "planted_union" ||
          unionable[i].table_name == "planted_join") {
        // Both shards of the original are legitimately union-compatible
        // with the query at the schema level.
        if (i == 0) ++union_hits_at1;
        ++union_hits_at3;
        break;
      }
    }
  }

  std::printf("== Discovery quality over %zu planted-lake queries ==\n\n",
              queries);
  std::vector<std::string> header = {"task", "hit@1", "hit@3"};
  auto frac = [&](size_t n) {
    return FormatDouble(static_cast<double>(n) /
                            static_cast<double>(queries), 2);
  };
  PrintTable(header, {{"find joinable", frac(join_hits_at1),
                       frac(join_hits_at3)},
                      {"find unionable", frac(union_hits_at1),
                       frac(union_hits_at3)}});
  std::printf("\nexpected: planted partners rank first for every query "
              "(hit@1 = 1.0)\n");
  return 0;
}
