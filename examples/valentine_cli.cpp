// valentine_cli: the suite as a command-line tool over CSV files.
//
//   valentine_cli match <source.csv> <target.csv> [--method NAME]
//                 [--top K] [--json out.json]
//       Rank column correspondences between two CSV tables.
//
//   valentine_cli fabricate <table.csv> --scenario NAME [--out DIR]
//                 [--noisy-schema] [--noisy-instances] [--seed N]
//       Split one CSV into a scenario pair + ground truth file.
//
//   valentine_cli discover <query.csv> <repository-dir> [--k N]
//                 [--mode join|union]
//       Search a directory of CSV tables for joinable/unionable
//       partners of the query table.
//
//   valentine_cli methods
//       List the available matching methods.
//
// Methods: cupid, sf, coma, coma-inst, dist, jl, embdi, semprop, approx.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "discovery/discovery.h"
#include "fabrication/fabricator.h"
#include "harness/json_export.h"
#include "io/csv.h"
#include "matchers/coma.h"
#include "matchers/cupid.h"
#include "matchers/distribution_based.h"
#include "matchers/embdi.h"
#include "matchers/jaccard_levenshtein.h"
#include "matchers/semprop.h"
#include "matchers/similarity_flooding.h"
#include "scaling/approximate_matcher.h"

using namespace valentine;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  valentine_cli match <source.csv> <target.csv> "
               "[--method NAME] [--top K] [--json out.json]\n"
               "  valentine_cli fabricate <table.csv> --scenario "
               "{unionable|view-unionable|joinable|semantically-joinable}\n"
               "                [--out DIR] [--noisy-schema] "
               "[--noisy-instances] [--seed N]\n"
               "  valentine_cli discover <query.csv> <repository-dir> "
               "[--k N] [--mode join|union]\n"
               "  valentine_cli methods\n");
  return 2;
}

MatcherPtr MakeMatcherByName(const std::string& name) {
  if (name == "cupid") return std::make_unique<CupidMatcher>();
  if (name == "sf") return std::make_unique<SimilarityFloodingMatcher>();
  if (name == "coma") return std::make_unique<ComaMatcher>();
  if (name == "coma-inst") {
    ComaOptions o;
    o.strategy = ComaStrategy::kInstances;
    return std::make_unique<ComaMatcher>(o);
  }
  if (name == "dist") return std::make_unique<DistributionBasedMatcher>();
  if (name == "jl") return std::make_unique<JaccardLevenshteinMatcher>();
  if (name == "embdi") {
    EmbdiOptions o;
    o.max_rows = 200;
    o.dimensions = 48;
    return std::make_unique<EmbdiMatcher>(o);
  }
  if (name == "semprop") return std::make_unique<SemPropMatcher>(nullptr);
  if (name == "approx") {
    // Interactive use is small-scale: estimate every pair rather than
    // LSH-prune (banding needs larger value sets to collide reliably).
    ApproximateOverlapOptions o;
    o.estimate_all_pairs = true;
    return std::make_unique<ApproximateOverlapMatcher>(o);
  }
  return nullptr;
}

int CmdMethods() {
  std::printf("cupid      Cupid (schema-based, linguistic + structural)\n"
              "sf         Similarity Flooding (schema-based, graph)\n"
              "coma       COMA, schema strategy (composite)\n"
              "coma-inst  COMA, instance strategy\n"
              "dist       Distribution-based (EMD clustering)\n"
              "jl         Jaccard-Levenshtein baseline\n"
              "embdi      EmbDI (local embeddings)\n"
              "semprop    SemProp (hybrid; syntactic-only without "
              "ontology)\n"
              "approx     MinHash/LSH approximate overlap\n");
  return 0;
}

int CmdMatch(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string src_path = argv[2];
  std::string tgt_path = argv[3];
  std::string method = "coma";
  size_t top_k = 20;
  std::string json_path;
  for (int i = 4; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--method") && i + 1 < argc) {
      method = argv[++i];
    } else if (!std::strcmp(argv[i], "--top") && i + 1 < argc) {
      top_k = static_cast<size_t>(std::atol(argv[++i]));
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return Usage();
    }
  }
  MatcherPtr matcher = MakeMatcherByName(method);
  if (!matcher) {
    std::fprintf(stderr, "unknown method '%s' (see: valentine_cli methods)\n",
                 method.c_str());
    return 2;
  }
  Result<Table> src = ReadCsvFile(src_path, "source");
  if (!src.ok()) {
    std::fprintf(stderr, "%s: %s\n", src_path.c_str(),
                 src.status().ToString().c_str());
    return 1;
  }
  Result<Table> tgt = ReadCsvFile(tgt_path, "target");
  if (!tgt.ok()) {
    std::fprintf(stderr, "%s: %s\n", tgt_path.c_str(),
                 tgt.status().ToString().c_str());
    return 1;
  }
  MatchResult ranked = matcher->Match(*src, *tgt);
  std::printf("%s: %s vs %s -> %zu ranked pairs\n\n",
              matcher->Name().c_str(), src->Describe().c_str(),
              tgt->Describe().c_str(), ranked.size());
  for (const Match& m : ranked.TopK(top_k)) {
    std::printf("  %-30s -> %-30s %.4f\n", m.source.column.c_str(),
                m.target.column.c_str(), m.score);
  }
  if (!json_path.empty()) {
    Status st = WriteJsonFile(ToJson(ranked), json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

int CmdFabricate(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string table_path = argv[2];
  std::string scenario_name;
  std::string out_dir = ".";
  FabricationOptions fab;
  for (int i = 3; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--scenario") && i + 1 < argc) {
      scenario_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--noisy-schema")) {
      fab.noisy_schema = true;
    } else if (!std::strcmp(argv[i], "--noisy-instances")) {
      fab.noisy_instances = true;
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      fab.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      return Usage();
    }
  }
  if (scenario_name == "unionable") {
    fab.scenario = Scenario::kUnionable;
  } else if (scenario_name == "view-unionable") {
    fab.scenario = Scenario::kViewUnionable;
  } else if (scenario_name == "joinable") {
    fab.scenario = Scenario::kJoinable;
  } else if (scenario_name == "semantically-joinable") {
    fab.scenario = Scenario::kSemanticallyJoinable;
  } else {
    std::fprintf(stderr, "missing or unknown --scenario\n");
    return Usage();
  }
  Result<Table> original = ReadCsvFile(table_path, "original");
  if (!original.ok()) {
    std::fprintf(stderr, "%s: %s\n", table_path.c_str(),
                 original.status().ToString().c_str());
    return 1;
  }
  Result<DatasetPair> pair = FabricateDatasetPair(*original, fab);
  if (!pair.ok()) {
    std::fprintf(stderr, "fabrication failed: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  std::string base = out_dir + "/" + pair->id;
  Status st = WriteCsvFile(pair->source, base + "_source.csv");
  if (st.ok()) st = WriteCsvFile(pair->target, base + "_target.csv");
  if (st.ok()) {
    // Ground truth as its own small CSV.
    Table gt("ground_truth");
    Column s("source_column", DataType::kString);
    Column t("target_column", DataType::kString);
    for (const auto& entry : pair->ground_truth) {
      s.Append(Value::String(entry.source_column));
      t.Append(Value::String(entry.target_column));
    }
    (void)gt.AddColumn(std::move(s));
    (void)gt.AddColumn(std::move(t));
    st = WriteCsvFile(gt, base + "_ground_truth.csv");
  }
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s_{source,target,ground_truth}.csv\n", base.c_str());
  std::printf("  source: %s\n  target: %s\n  ground truth: %zu matches\n",
              pair->source.Describe().c_str(),
              pair->target.Describe().c_str(), pair->ground_truth.size());
  return 0;
}

int CmdDiscover(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string query_path = argv[2];
  std::string repo_dir = argv[3];
  size_t k = 5;
  std::string mode = "join";
  for (int i = 4; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--k") && i + 1 < argc) {
      k = static_cast<size_t>(std::atol(argv[++i]));
    } else if (!std::strcmp(argv[i], "--mode") && i + 1 < argc) {
      mode = argv[++i];
    } else {
      return Usage();
    }
  }
  if (mode != "join" && mode != "union") return Usage();

  Result<Table> query = ReadCsvFile(query_path, "query");
  if (!query.ok()) {
    std::fprintf(stderr, "%s: %s\n", query_path.c_str(),
                 query.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<Table>> repo = ReadCsvDirectory(repo_dir);
  if (!repo.ok()) {
    std::fprintf(stderr, "%s\n", repo.status().ToString().c_str());
    return 1;
  }
  DiscoveryEngine engine;
  for (Table& t : const_cast<std::vector<Table>&>(*repo)) {
    Status st = engine.AddTable(std::move(t));
    if (!st.ok()) {
      std::fprintf(stderr, "skipping table: %s\n", st.ToString().c_str());
    }
  }
  std::printf("Query: %s; repository: %zu tables\n\n",
              query->Describe().c_str(), engine.num_tables());
  auto results = mode == "join" ? engine.FindJoinable(*query, k)
                                : engine.FindUnionable(*query, k);
  for (const DiscoveryResult& r : results) {
    std::printf("  %-32s score=%.3f", r.table_name.c_str(), r.score);
    if (!r.evidence.empty()) {
      std::printf("  via %s -> %s", r.evidence[0].source.column.c_str(),
                  r.evidence[0].target.column.c_str());
    }
    std::printf("\n");
  }
  if (results.empty()) std::printf("  (no candidates)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (!std::strcmp(argv[1], "methods")) return CmdMethods();
  if (!std::strcmp(argv[1], "match")) return CmdMatch(argc, argv);
  if (!std::strcmp(argv[1], "fabricate")) return CmdFabricate(argc, argv);
  if (!std::strcmp(argv[1], "discover")) return CmdDiscover(argc, argv);
  return Usage();
}
