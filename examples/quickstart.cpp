// Quickstart: load two small CSV tables, run a matcher, print the ranked
// matches — the minimal end-to-end use of the public API.

#include <cstdio>

#include "io/csv.h"
#include "matchers/coma.h"
#include "matchers/jaccard_levenshtein.h"

using namespace valentine;

int main() {
  const char* kClientsCsv =
      "name,surname,city,income\n"
      "John,Smith,Boston,52000\n"
      "Mary,Jones,Denver,61000\n"
      "Ann,Brown,Boston,48000\n"
      "Bob,White,Seattle,75000\n";
  const char* kCustomersCsv =
      "first_name,last_name,location,salary\n"
      "John,Smith,Boston,52000\n"
      "Peter,Green,Austin,58000\n"
      "Mary,Jones,Denver,61000\n";

  Result<Table> clients = ReadCsvString(kClientsCsv, "clients");
  Result<Table> customers = ReadCsvString(kCustomersCsv, "customers");
  if (!clients.ok() || !customers.ok()) {
    std::fprintf(stderr, "CSV parse failed\n");
    return 1;
  }

  std::printf("Source: %s\nTarget: %s\n\n", clients->Describe().c_str(),
              customers->Describe().c_str());

  // A schema+synonym matcher...
  ComaMatcher coma;
  MatchResult ranked = coma.Match(*clients, *customers);
  std::printf("COMA (schema strategy) ranking:\n%s\n",
              ranked.ToString(8).c_str());

  // ...and the instance-overlap baseline.
  JaccardLevenshteinMatcher baseline;
  MatchResult ranked2 = baseline.Match(*clients, *customers);
  std::printf("Jaccard-Levenshtein baseline ranking:\n%s",
              ranked2.ToString(8).c_str());
  return 0;
}
