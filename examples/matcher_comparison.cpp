// Matcher leaderboard: run every method in the suite on one curated
// WikiData pair and print a ranked comparison — a compact version of
// what the Fig. 7 bench does at full scale.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "datasets/wikidata.h"
#include "matchers/coma.h"
#include "matchers/cupid.h"
#include "matchers/distribution_based.h"
#include "matchers/embdi.h"
#include "matchers/jaccard_levenshtein.h"
#include "matchers/semprop.h"
#include "matchers/similarity_flooding.h"
#include "metrics/metrics.h"

using namespace valentine;

int main() {
  auto pairs = MakeWikidataPairs(/*rows=*/250, /*seed=*/7);
  const DatasetPair& pair = pairs[0];  // the unionable variant
  std::printf("Pair: %s\n  source: %s\n  target: %s\n  |GT| = %zu\n\n",
              pair.id.c_str(), pair.source.Describe().c_str(),
              pair.target.Describe().c_str(), pair.ground_truth.size());

  std::vector<std::unique_ptr<ColumnMatcher>> matchers;
  matchers.push_back(std::make_unique<CupidMatcher>());
  matchers.push_back(std::make_unique<SimilarityFloodingMatcher>());
  matchers.push_back(std::make_unique<ComaMatcher>());
  {
    ComaOptions o;
    o.strategy = ComaStrategy::kInstances;
    matchers.push_back(std::make_unique<ComaMatcher>(o));
  }
  matchers.push_back(std::make_unique<DistributionBasedMatcher>());
  matchers.push_back(std::make_unique<SemPropMatcher>(nullptr));
  {
    EmbdiOptions o;
    o.max_rows = 80;
    o.walks_per_node = 2;
    o.sentence_length = 20;
    o.dimensions = 32;
    matchers.push_back(std::make_unique<EmbdiMatcher>(o));
  }
  {
    JaccardLevenshteinOptions o;
    o.max_distinct_values = 150;
    matchers.push_back(std::make_unique<JaccardLevenshteinMatcher>(o));
  }

  struct Row {
    std::string name;
    std::string category;
    double recall;
    double map;
  };
  std::vector<Row> rows;
  for (const auto& m : matchers) {
    MatchResult r = m->Match(pair.source, pair.target);
    rows.push_back({m->Name(), MatcherCategoryName(m->Category()),
                    RecallAtGroundTruth(r, pair.ground_truth),
                    MeanAveragePrecision(r, pair.ground_truth)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.recall > b.recall; });

  std::printf("%-22s %-16s %-12s %s\n", "method", "category", "Recall@|GT|",
              "MAP");
  for (const Row& row : rows) {
    std::printf("%-22s %-16s %-12.3f %.3f\n", row.name.c_str(),
                row.category.c_str(), row.recall, row.map);
  }
  std::printf("\n(paper Fig. 7: instance-based methods beat schema-based "
              "ones on these curated pairs)\n");
  return 0;
}
