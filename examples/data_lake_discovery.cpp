// Dataset-discovery scenario: register a small synthetic "data lake" in
// the DiscoveryEngine, then ask it for joinable and unionable partners
// of a query table — the matchers acting as the discovery method's
// matching component, exactly the usage pattern Valentine targets
// (paper §II-B).

#include <cstdio>

#include "datasets/chembl.h"
#include "datasets/opendata.h"
#include "datasets/tpcdi.h"
#include "datasets/wikidata.h"
#include "discovery/discovery.h"
#include "fabrication/fabricator.h"

using namespace valentine;

namespace {
void PrintResults(const char* title,
                  const std::vector<DiscoveryResult>& results,
                  const std::string& planted) {
  std::printf("%s\n", title);
  for (const DiscoveryResult& r : results) {
    std::printf("  %-24s score=%.3f", r.table_name.c_str(), r.score);
    if (!r.evidence.empty()) {
      std::printf("  (top evidence: %s -> %s)",
                  r.evidence[0].source.column.c_str(),
                  r.evidence[0].target.column.c_str());
    }
    if (r.table_name == planted) std::printf("   <-- planted partner");
    std::printf("\n");
  }
  std::printf("\n");
}
}  // namespace

int main() {
  // Build the query and its planted partners from one original table.
  Table prospect = MakeTpcdiProspect(300, 2026);

  FabricationOptions join_fab;
  join_fab.scenario = Scenario::kJoinable;
  join_fab.column_overlap = 0.4;
  join_fab.seed = 4;
  DatasetPair join_split = FabricateDatasetPair(prospect, join_fab).ValueOrDie();

  FabricationOptions union_fab;
  union_fab.scenario = Scenario::kUnionable;
  union_fab.row_overlap = 0.2;
  union_fab.seed = 5;
  DatasetPair union_split =
      FabricateDatasetPair(prospect, union_fab).ValueOrDie();

  Table query = join_split.source;
  query.set_name("query_customers");

  // The lake: the planted partners plus unrelated tables.
  DiscoveryEngine lake;
  {
    Table t = join_split.target;
    t.set_name("prospect_details");  // joinable with the query
    if (!lake.AddTable(std::move(t)).ok()) return 1;
    Table u = union_split.target;
    u.set_name("prospect_archive");  // unionable with the query
    if (!lake.AddTable(std::move(u)).ok()) return 1;
    if (!lake.AddTable(MakeOpenDataTable(300, 4711)).ok()) return 1;
    if (!lake.AddTable(MakeChemblAssays(300, 99)).ok()) return 1;
    if (!lake.AddTable(MakeWikidataSingersBase(300, 7)).ok()) return 1;
  }

  std::printf("Query table: %s\nLake: %zu tables\n\n",
              query.Describe().c_str(), lake.num_tables());

  auto joinable = lake.FindJoinable(query, 3);
  PrintResults("Top joinable tables:", joinable, "prospect_details");

  auto unionable = lake.FindUnionable(query, 3);
  PrintResults("Top unionable tables:", unionable, "prospect_archive");

  bool ok = !joinable.empty() &&
            joinable[0].table_name == "prospect_details" &&
            !unionable.empty() &&
            (unionable[0].table_name == "prospect_archive" ||
             unionable[0].table_name == "prospect_details");
  std::printf("%s\n", ok ? "OK: planted partners ranked first."
                         : "WARNING: planted partners not on top.");
  return ok ? 0 : 1;
}
