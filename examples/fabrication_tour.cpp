// Fabrication tour: walk through the four relatedness scenarios of the
// paper (§III/§IV) on one source table — show what the fabricator
// produces, persist the shards as CSV, and verify a matcher against the
// generated ground truth.

#include <cstdio>

#include "datasets/tpcdi.h"
#include "fabrication/fabricator.h"
#include "io/csv.h"
#include "matchers/coma.h"
#include "metrics/metrics.h"

using namespace valentine;

int main(int argc, char** argv) {
  const char* out_dir = argc > 1 ? argv[1] : "/tmp";
  Table original = MakeTpcdiProspect(200, 2026);
  std::printf("Original table: %s\n\n", original.Describe().c_str());

  const Scenario kScenarios[] = {
      Scenario::kUnionable,
      Scenario::kViewUnionable,
      Scenario::kJoinable,
      Scenario::kSemanticallyJoinable,
  };

  ComaOptions coma_opt;
  coma_opt.strategy = ComaStrategy::kInstances;
  ComaMatcher matcher(coma_opt);

  for (Scenario scenario : kScenarios) {
    FabricationOptions fab;
    fab.scenario = scenario;
    fab.row_overlap = 0.5;
    fab.column_overlap = 0.5;
    fab.noisy_schema = true;
    fab.seed = 11;
    auto result = FabricateDatasetPair(original, fab);
    if (!result.ok()) {
      std::fprintf(stderr, "fabrication failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const DatasetPair& pair = *result;

    std::printf("== %s ==\n", ScenarioName(scenario));
    std::printf("  source: %s\n  target: %s\n  ground truth: %zu matches\n",
                pair.source.Describe().c_str(),
                pair.target.Describe().c_str(), pair.ground_truth.size());
    for (size_t i = 0; i < std::min<size_t>(3, pair.ground_truth.size());
         ++i) {
      std::printf("    e.g. %s <-> %s\n",
                  pair.ground_truth[i].source_column.c_str(),
                  pair.ground_truth[i].target_column.c_str());
    }

    // Persist the pair the way the original suite ships its benchmark.
    std::string src_path = std::string(out_dir) + "/" + pair.id + "_src.csv";
    std::string tgt_path = std::string(out_dir) + "/" + pair.id + "_tgt.csv";
    if (!WriteCsvFile(pair.source, src_path).ok() ||
        !WriteCsvFile(pair.target, tgt_path).ok()) {
      std::fprintf(stderr, "CSV write failed\n");
      return 1;
    }
    std::printf("  wrote %s (+ _tgt.csv)\n", src_path.c_str());

    MatchResult matches = matcher.Match(pair.source, pair.target);
    std::printf("  COMA-Instances Recall@|GT| = %.3f\n\n",
                RecallAtGroundTruth(matches, pair.ground_truth));
  }
  return 0;
}
