// ML feature augmentation: the paper's motivating discovery application
// ([10], [11] in its references) — given a "training table", search the
// lake for joinable feature tables, pick the best join key with a
// matcher, execute the join, and report the new feature columns.

#include <cstdio>

#include "core/join.h"
#include "datasets/chembl.h"
#include "datasets/opendata.h"
#include "datasets/tpcdi.h"
#include "discovery/discovery.h"
#include "fabrication/fabricator.h"

using namespace valentine;

int main() {
  // The training table: a vertical shard of Prospect (ids + target-ish
  // columns); the complementary shard lives in the lake with the extra
  // "features" we want back.
  Table prospect = MakeTpcdiProspect(300, 2026);
  FabricationOptions fab;
  fab.scenario = Scenario::kJoinable;
  fab.column_overlap = 0.15;  // narrow join key, many fresh features
  fab.seed = 14;
  DatasetPair split = FabricateDatasetPair(prospect, fab).ValueOrDie();
  Table training = split.source;
  training.set_name("training_data");

  DiscoveryEngine lake;
  {
    Table features = split.target;
    features.set_name("demographics");
    if (!lake.AddTable(std::move(features)).ok()) return 1;
    if (!lake.AddTable(MakeOpenDataTable(300, 4711)).ok()) return 1;
    if (!lake.AddTable(MakeChemblAssays(300, 99)).ok()) return 1;
  }

  std::printf("Training table: %s (%zu feature columns)\n",
              training.Describe().c_str(), training.num_columns());

  // 1. Discover joinable feature tables.
  auto candidates = lake.FindJoinable(training, 1);
  if (candidates.empty() || candidates[0].evidence.empty()) {
    std::fprintf(stderr, "no joinable feature table found\n");
    return 1;
  }
  const DiscoveryResult& best = candidates[0];
  // Among the evidence matches, prefer the highest-cardinality key:
  // low-cardinality columns (flags, counts) match perfectly too, but
  // make terrible join keys.
  const Match* key_ptr = &best.evidence[0];
  size_t best_cardinality = 0;
  for (const Match& m : best.evidence) {
    const Column* col = training.FindColumn(m.source.column);
    if (col == nullptr) continue;
    size_t cardinality = col->DistinctStringSet().size();
    if (cardinality > best_cardinality) {
      best_cardinality = cardinality;
      key_ptr = &m;
    }
  }
  const Match& key = *key_ptr;
  std::printf("Best feature table: %s (score %.3f)\n",
              best.table_name.c_str(), best.score);
  std::printf("Join key: %s == %s\n\n", key.source.column.c_str(),
              key.target.column.c_str());

  // 2. Execute the join against the discovered table.
  std::shared_ptr<const RegisteredTable> feature_entry =
      lake.repository().Find(best.table_name);
  if (feature_entry == nullptr) return 1;
  const Table* feature_table = &feature_entry->table;
  JoinOptions jopt;
  jopt.type = JoinType::kLeft;  // keep every training row
  Result<Table> augmented = HashJoin(training, key.source.column,
                                     *feature_table, key.target.column,
                                     jopt);
  if (!augmented.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 augmented.status().ToString().c_str());
    return 1;
  }

  // 3. Report the augmentation.
  std::printf("Augmented table: %s\n", augmented->Describe().c_str());
  std::printf("New feature columns (%zu):\n",
              augmented->num_columns() - training.num_columns());
  for (size_t c = training.num_columns(); c < augmented->num_columns();
       ++c) {
    const Column& col = augmented->column(c);
    size_t filled = col.size() - col.NullCount();
    std::printf("  %-28s coverage %zu/%zu\n", col.name().c_str(), filled,
                col.size());
  }
  bool grew = augmented->num_columns() > training.num_columns();
  std::printf("\n%s\n", grew ? "OK: training data augmented with discovered "
                               "features."
                             : "WARNING: no features gained.");
  return grew ? 0 : 1;
}
