// Race-detector stress driver for RunFamilyOnSuiteParallel.
//
// Hammers the parallel runner with every matcher family — all workers
// sharing one set of matcher instances — across a sweep of thread counts
// (default 8..32), and asserts that every run is byte-identical to the
// sequential baseline. Built for soaking under ThreadSanitizer:
//
//   cmake --preset tsan && cmake --build --preset tsan --target race_stress
//   TSAN_OPTIONS=halt_on_error=1 ./build/tsan/tools/race_stress/race_stress
//
// Exits 0 when every run matched, 1 on any divergence (and TSan itself
// aborts the process on a race report). Thread counts intentionally
// exceed hardware concurrency to force preemption inside Match calls.
//
// Usage: race_stress [--rows N] [--repeats N] [--min-threads N]
//                    [--max-threads N] [--families a,b,c]

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "datasets/tpcdi.h"
#include "harness/json_export.h"
#include "harness/parallel.h"
#include "matchers/embdi.h"

namespace valentine {
namespace {

struct StressOptions {
  size_t rows = 30;
  int repeats = 3;
  size_t min_threads = 8;
  size_t max_threads = 32;
  std::string families;  // comma list; empty = all
};

std::string CanonicalJson(std::vector<FamilyPairOutcome> outcomes) {
  // Wall-clock runtime is the one field allowed to vary run-to-run.
  for (auto& o : outcomes) o.total_ms = 0.0;
  return ToJson(outcomes);
}

MethodFamily Truncate(MethodFamily family, size_t n) {
  if (family.grid.size() > n) family.grid.resize(n);
  return family;
}

Ontology StressOntology() {
  Ontology o;
  size_t root = o.AddClass("root", {"entity"});
  o.AddSubclass(root, "person", {"person", "customer", "prospect"});
  o.AddSubclass(root, "address", {"address", "city", "country"});
  return o;
}

// All seven matcher families, grids truncated so a full sweep finishes
// under TSan in minutes: concurrency coverage comes from shared
// instances, not grid breadth.
std::vector<MethodFamily> StressFamilies(const Ontology* ontology) {
  std::vector<MethodFamily> families;
  families.push_back(Truncate(CupidFamily(), 2));
  families.push_back(SimilarityFloodingFamily());
  families.push_back(ComaFamily());
  families.push_back(Truncate(DistributionFamily1(), 2));
  families.push_back(Truncate(SemPropFamily(ontology), 2));
  {
    // Minimal word2vec budget (default EmbdiFamily trains ~60s per
    // sweep point); concurrency coverage needs Match to run, not to
    // converge.
    EmbdiOptions opt;
    opt.dimensions = 8;
    opt.walks_per_node = 1;
    opt.epochs = 1;
    opt.sentence_length = 20;
    opt.max_rows = 40;
    MethodFamily embdi{"EmbDI", {}};
    embdi.grid.push_back(
        {"word2vec tiny", std::make_shared<EmbdiMatcher>(opt)});
    families.push_back(std::move(embdi));
  }
  families.push_back(Truncate(JaccardLevenshteinFamily(), 2));
  return families;
}

bool WantFamily(const StressOptions& opt, const std::string& name) {
  if (opt.families.empty()) return true;
  size_t pos = 0;
  while (pos <= opt.families.size()) {
    size_t comma = opt.families.find(',', pos);
    if (comma == std::string::npos) comma = opt.families.size();
    if (opt.families.substr(pos, comma - pos) == name) return true;
    pos = comma + 1;
  }
  return false;
}

int RunStress(const StressOptions& opt) {
  Table original = MakeTpcdiProspect(opt.rows, 99);
  PairSuiteOptions suite_opt;
  suite_opt.row_overlaps = {0.5};
  suite_opt.column_overlaps = {0.5};
  suite_opt.instance_noise_variants = false;
  std::vector<DatasetPair> suite = BuildFabricatedSuite(original, suite_opt);
  std::printf("suite: %zu pairs fabricated from %zu-row table\n",
              suite.size(), opt.rows);

  Ontology ontology = StressOntology();
  int divergences = 0;
  size_t runs = 0;
  for (MethodFamily& family : StressFamilies(&ontology)) {
    if (!WantFamily(opt, family.name)) continue;
    std::string expected = CanonicalJson(RunFamilyOnSuite(family, suite));
    for (size_t threads = opt.min_threads; threads <= opt.max_threads;
         threads *= 2) {
      for (int repeat = 0; repeat < opt.repeats; ++repeat) {
        // Same family object throughout: every worker of every run hits
        // the same matcher instances and their memo caches.
        std::string got =
            CanonicalJson(RunFamilyOnSuiteParallel(family, suite, threads));
        ++runs;
        if (got != expected) {
          ++divergences;
          size_t byte = 0;
          while (byte < got.size() && byte < expected.size() &&
                 got[byte] == expected[byte]) {
            ++byte;
          }
          std::fprintf(stderr,
                       "FAIL %s: %zu threads repeat %d diverged from "
                       "sequential at byte %zu\n",
                       family.name.c_str(), threads, repeat, byte);
        }
      }
    }
    std::printf("%-20s %s\n", family.name.c_str(),
                divergences == 0 ? "byte-identical" : "DIVERGED");
  }
  std::printf("%zu parallel runs, %d divergences\n", runs, divergences);
  return divergences == 0 ? 0 : 1;
}

}  // namespace
}  // namespace valentine

int main(int argc, char** argv) {
  valentine::StressOptions opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--rows") == 0) {
      opt.rows = std::strtoull(next("--rows"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--repeats") == 0) {
      opt.repeats = std::atoi(next("--repeats"));
    } else if (std::strcmp(argv[i], "--min-threads") == 0) {
      opt.min_threads = std::strtoull(next("--min-threads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-threads") == 0) {
      opt.max_threads = std::strtoull(next("--max-threads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--families") == 0) {
      opt.families = next("--families");
    } else {
      std::fprintf(stderr,
                   "usage: race_stress [--rows N] [--repeats N] "
                   "[--min-threads N] [--max-threads N] [--families a,b]\n");
      return 2;
    }
  }
  if (opt.rows == 0 || opt.repeats <= 0 || opt.min_threads == 0 ||
      opt.max_threads < opt.min_threads) {
    std::fprintf(stderr, "invalid stress options\n");
    return 2;
  }
  return valentine::RunStress(opt);
}
