#!/bin/sh
# Sequential acceptance run for the sanitizer matrix (1-CPU box).
cd /root/repo || exit 1
log() { echo "=== $* ($(date +%H:%M:%S)) ==="; }

log "release: configure"
cmake --preset release || exit 1
log "release: build"
cmake --build --preset release -j1 || exit 1
log "release: lint target"
cmake --build build --target lint || exit 1
log "release: ctest"
ctest --preset release || exit 1

log "tsan: configure"
cmake --preset tsan || exit 1
log "tsan: build"
cmake --build --preset tsan -j1 || exit 1
log "tsan: ctest -L tsan"
ctest --preset tsan -L tsan || exit 1

log "asan-ubsan: configure"
cmake --preset asan-ubsan || exit 1
log "asan-ubsan: build"
cmake --build --preset asan-ubsan -j1 || exit 1
log "asan-ubsan: ctest"
ctest --preset asan-ubsan || exit 1

log "ALL GREEN"
