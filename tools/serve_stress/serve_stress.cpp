// Overload soak + probe client for the serving daemon.
//
// Default (soak) mode spins an in-process HttpServer with a deliberately
// tiny worker pool and admission queue, fires N concurrent closed-loop
// clients at it, and asserts the overload contract end to end:
//
//   * every response is 200 (served) or 503 (shed);
//   * every 503 carries Retry-After;
//   * valentine_serve_shed_total (scraped from /metrics) equals the
//     number of 503s the clients actually observed — overload is
//     *accounted*, not just survived;
//   * admitted requests all complete (no hangs, no torn responses).
//
// --probe HOST:PORT instead runs a one-shot functional probe against an
// externally started daemon (used by the smoke_test.sh SIGTERM drain
// script): healthz, register, discovery, 404 envelope, malformed JSON.
//
// Exits 0 when every assertion holds, 1 otherwise, 2 on usage.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/server.h"
#include "serve/service.h"
#include "tests/http_client.h"

namespace valentine {
namespace serve {
namespace {

using testing::HttpClientResponse;
using testing::HttpFetch;

struct StressOptions {
  size_t clients = 16;
  size_t requests = 5;
  size_t workers = 1;
  size_t queue = 2;
  size_t rows = 200;
  std::string mode = "unionable";
  std::string probe_host;
  uint16_t probe_port = 0;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--clients N] [--requests N] [--workers N] "
               "[--queue N] [--rows N] [--mode joinable|unionable]\n"
               "       %s --probe HOST:PORT\n",
               argv0, argv0);
  return 2;
}

std::string TableJson(const std::string& name, size_t rows, size_t salt) {
  std::string values_a, values_b;
  for (size_t i = 0; i < rows; ++i) {
    if (i > 0) {
      values_a += ",";
      values_b += ",";
    }
    values_a += "\"id_" + std::to_string(i * salt % (rows * 2)) + "\"";
    values_b += std::to_string(i);
  }
  return "{\"name\":\"" + name +
         "\",\"columns\":[{\"name\":\"key\",\"values\":[" + values_a +
         "]},{\"name\":\"amount\",\"values\":[" + values_b + "]}]}";
}

uint64_t ScrapeCounter(const std::string& metrics_text,
                       const std::string& name) {
  size_t pos = metrics_text.find("\n" + name + " ");
  if (pos == std::string::npos) {
    if (metrics_text.compare(0, name.size() + 1, name + " ") == 0) {
      pos = 0;
    } else {
      return 0;
    }
  } else {
    pos += 1;
  }
  return std::strtoull(metrics_text.c_str() + pos + name.size() + 1, nullptr,
                       10);
}

int RunSoak(const StressOptions& opt) {
  MetricsRegistry metrics;
  ServiceOptions service_opt;
  service_opt.metrics = &metrics;
  DiscoveryService service(service_opt);

  // A repository table so discovery requests do real matcher work.
  {
    HttpRequest seed;
    seed.method = "POST";
    seed.target = "/v1/tables";
    seed.body = TableJson("repo_orders", opt.rows, 3);
    HttpResponse r = service.Handle(seed);
    if (r.status != 200) {
      std::fprintf(stderr, "serve_stress: seeding table failed: %s\n",
                   r.body.c_str());
      return 1;
    }
  }

  ServerOptions server_opt;
  server_opt.workers = opt.workers;
  server_opt.queue_capacity = opt.queue;
  server_opt.metrics = &metrics;
  HttpServer server(&service, server_opt);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve_stress: %s\n", started.message().c_str());
    return 1;
  }
  const uint16_t port = server.port();

  const std::string request_body = "{\"table\":" +
                                   TableJson("probe_orders", opt.rows, 7) +
                                   ",\"k\":5}";
  const std::string target = "/v1/discovery/" + opt.mode;

  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> shed_count{0};
  std::atomic<uint64_t> contract_violations{0};
  std::vector<std::thread> clients;
  clients.reserve(opt.clients);
  for (size_t c = 0; c < opt.clients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < opt.requests; ++r) {
        Result<HttpClientResponse> got =
            HttpFetch("127.0.0.1", port, "POST", target, request_body,
                      /*timeout_ms=*/30000);
        if (!got.ok()) {
          std::fprintf(stderr, "serve_stress: client %zu: %s\n", c,
                       got.status().message().c_str());
          ++contract_violations;
          continue;
        }
        const HttpClientResponse& response = got.ValueOrDie();
        if (response.status == 200) {
          ++ok_count;
          if (response.body.find("\"results\":") == std::string::npos) {
            std::fprintf(stderr,
                         "serve_stress: 200 without results array\n");
            ++contract_violations;
          }
        } else if (response.status == 503) {
          ++shed_count;
          if (response.Header("retry-after").empty()) {
            std::fprintf(stderr,
                         "serve_stress: 503 without Retry-After\n");
            ++contract_violations;
          }
          if (response.body.find("\"ResourceExhausted\"") ==
              std::string::npos) {
            std::fprintf(
                stderr,
                "serve_stress: shed envelope lacks ResourceExhausted\n");
            ++contract_violations;
          }
        } else {
          std::fprintf(stderr, "serve_stress: unexpected status %d\n",
                       response.status);
          ++contract_violations;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Scrape the shed counter over the same HTTP surface (the soak is
  // over, so this request cannot itself be shed).
  Result<HttpClientResponse> scrape =
      HttpFetch("127.0.0.1", port, "GET", "/metrics");
  uint64_t metric_shed = 0;
  if (scrape.ok() && scrape.ValueOrDie().status == 200) {
    metric_shed =
        ScrapeCounter(scrape.ValueOrDie().body, "valentine_serve_shed_total");
  } else {
    std::fprintf(stderr, "serve_stress: /metrics scrape failed\n");
    ++contract_violations;
  }
  server.Shutdown(2000.0);

  const uint64_t total = ok_count + shed_count;
  const uint64_t expected =
      static_cast<uint64_t>(opt.clients) * opt.requests;
  std::printf(
      "serve_stress: %llu requests: %llu served, %llu shed "
      "(metric says %llu; server counted %llu)\n",
      static_cast<unsigned long long>(expected),
      static_cast<unsigned long long>(ok_count.load()),
      static_cast<unsigned long long>(shed_count.load()),
      static_cast<unsigned long long>(metric_shed),
      static_cast<unsigned long long>(server.shed_total()));
  int failures = 0;
  if (contract_violations != 0) {
    std::fprintf(stderr, "serve_stress: %llu contract violations\n",
                 static_cast<unsigned long long>(contract_violations.load()));
    ++failures;
  }
  if (total != expected) {
    std::fprintf(stderr,
                 "serve_stress: %llu responses for %llu requests — an "
                 "admitted request was dropped\n",
                 static_cast<unsigned long long>(total),
                 static_cast<unsigned long long>(expected));
    ++failures;
  }
  if (metric_shed != shed_count) {
    std::fprintf(stderr,
                 "serve_stress: valentine_serve_shed_total=%llu but clients "
                 "saw %llu 503s\n",
                 static_cast<unsigned long long>(metric_shed),
                 static_cast<unsigned long long>(shed_count.load()));
    ++failures;
  }
  if (server.shed_total() != shed_count) {
    std::fprintf(stderr, "serve_stress: queue shed_total=%llu != %llu\n",
                 static_cast<unsigned long long>(server.shed_total()),
                 static_cast<unsigned long long>(shed_count.load()));
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

#define PROBE_EXPECT(cond, what)                              \
  do {                                                        \
    if (!(cond)) {                                            \
      std::fprintf(stderr, "serve_stress probe: %s\n", what); \
      return 1;                                               \
    }                                                         \
  } while (0)

int RunProbe(const std::string& host, uint16_t port) {
  Result<HttpClientResponse> health =
      HttpFetch(host, port, "GET", "/healthz");
  PROBE_EXPECT(health.ok() && health.ValueOrDie().status == 200,
               "healthz not 200");
  PROBE_EXPECT(health.ValueOrDie().body.find("\"status\":\"ok\"") !=
                   std::string::npos,
               "healthz body mismatch");

  Result<HttpClientResponse> registered = HttpFetch(
      host, port, "POST", "/v1/tables", TableJson("probe_table", 20, 3));
  PROBE_EXPECT(registered.ok() && registered.ValueOrDie().status == 200,
               "register not 200");

  Result<HttpClientResponse> found =
      HttpFetch(host, port, "POST", "/v1/discovery/unionable",
                "{\"table\":" + TableJson("probe_q", 20, 7) + ",\"k\":3}");
  PROBE_EXPECT(found.ok() && found.ValueOrDie().status == 200,
               "unionable not 200");
  PROBE_EXPECT(found.ValueOrDie().body.find("probe_table") !=
                   std::string::npos,
               "unionable did not rank the registered table");

  Result<HttpClientResponse> missing =
      HttpFetch(host, port, "GET", "/v1/nope");
  PROBE_EXPECT(missing.ok() && missing.ValueOrDie().status == 404,
               "unknown route not 404");
  PROBE_EXPECT(missing.ValueOrDie().body.find("\"NotFound\"") !=
                   std::string::npos,
               "404 envelope lacks NotFound");

  Result<HttpClientResponse> bad =
      HttpFetch(host, port, "POST", "/v1/tables", "{not json");
  PROBE_EXPECT(bad.ok() && bad.ValueOrDie().status == 400,
               "malformed JSON not 400");

  Result<HttpClientResponse> cleanup =
      HttpFetch(host, port, "DELETE", "/v1/tables/probe_table");
  PROBE_EXPECT(cleanup.ok() && cleanup.ValueOrDie().status == 200,
               "unregister not 200");
  std::printf("serve_stress: probe of %s:%u passed\n", host.c_str(), port);
  return 0;
}

int Run(int argc, char** argv) {
  StressOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--clients" && (v = next())) {
      opt.clients = static_cast<size_t>(std::atol(v));
    } else if (arg == "--requests" && (v = next())) {
      opt.requests = static_cast<size_t>(std::atol(v));
    } else if (arg == "--workers" && (v = next())) {
      opt.workers = static_cast<size_t>(std::atol(v));
    } else if (arg == "--queue" && (v = next())) {
      opt.queue = static_cast<size_t>(std::atol(v));
    } else if (arg == "--rows" && (v = next())) {
      opt.rows = static_cast<size_t>(std::atol(v));
    } else if (arg == "--mode" && (v = next())) {
      opt.mode = v;
    } else if (arg == "--probe" && (v = next())) {
      std::string hp = v;
      size_t colon = hp.rfind(':');
      if (colon == std::string::npos) return Usage(argv[0]);
      opt.probe_host = hp.substr(0, colon);
      opt.probe_port =
          static_cast<uint16_t>(std::atoi(hp.c_str() + colon + 1));
    } else {
      return Usage(argv[0]);
    }
  }
  if (opt.mode != "joinable" && opt.mode != "unionable") {
    return Usage(argv[0]);
  }
  if (!opt.probe_host.empty()) return RunProbe(opt.probe_host, opt.probe_port);
  return RunSoak(opt);
}

}  // namespace
}  // namespace serve
}  // namespace valentine

int main(int argc, char** argv) { return valentine::serve::Run(argc, argv); }
