#!/usr/bin/env python3
"""Self-test for valentine_lint.

The linter guards the suite's byte-identity contract, so it needs its own
regression net: a rule that silently stops firing is worse than no rule.
Each case runs valentine_lint.main() in-process against a deliberately
violating fixture (via --pretend-rel, so path-scoped rules see the path
they are scoped to) and asserts both the exit status and the rule id in
the output. Exit status: 0 all cases pass, 1 otherwise.
"""

from __future__ import annotations

import contextlib
import io
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import valentine_lint  # noqa: E402

TESTDATA = Path(__file__).resolve().parent / "testdata"

FAILURES = []


def run_lint(argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        status = valentine_lint.main(argv)
    return status, out.getvalue() + err.getvalue()


def expect(name, argv, want_status, want_substring=None):
    status, output = run_lint(argv)
    if status != want_status:
        FAILURES.append(f"{name}: exit {status}, wanted {want_status}\n"
                        f"{output}")
        return
    if want_substring and want_substring not in output:
        FAILURES.append(f"{name}: output lacks {want_substring!r}\n{output}")


def main() -> int:
    fixture = str(TESTDATA / "fuzzy_jaccard_hash_order.cpp")

    # The bug class this PR fixed: leftover emission by unordered_map
    # iteration inside src/text/ must be flagged...
    expect("old-fuzzyjaccard-pattern-flagged",
           ["--pretend-rel", "src/text/string_similarity.cpp", fixture],
           1, "unordered-iteration")
    # ...and in the other order-sensitive trees.
    expect("flagged-under-matchers",
           ["--pretend-rel", "src/matchers/some_matcher.cpp", fixture],
           1, "unordered-iteration")
    expect("flagged-under-stats",
           ["--pretend-rel", "src/stats/some_stat.cpp", fixture],
           1, "unordered-iteration")
    expect("flagged-under-discovery",
           ["--pretend-rel", "src/discovery/engine_helper.cpp", fixture],
           1, "unordered-iteration")
    expect("flagged-under-knowledge",
           ["--pretend-rel", "src/knowledge/thesaurus_helper.cpp", fixture],
           1, "unordered-iteration")
    # src/serve/ serializes responses whose bytes must match direct
    # engine calls, so it sits in the order-sensitive scope too.
    expect("flagged-under-serve",
           ["--pretend-rel", "src/serve/responder.cpp", fixture],
           1, "unordered-iteration")

    # src/obs/ serializes traces, op counters, and Prometheus text whose
    # bytes must be run-stable, so it is order-sensitive too (the
    # opcount/metrics surfacing paths live here).
    expect("flagged-under-obs",
           ["--pretend-rel", "src/obs/opcount_export.cpp", fixture],
           1, "unordered-iteration")

    # Outside the order-sensitive scope the same code is legal (hash
    # order feeding a set/count is fine; the rule targets ranked paths).
    expect("ignored-outside-scope",
           ["--pretend-rel", "src/harness/report_helper.cpp", fixture], 0)

    # Pointer-keyed caches are rejected in src/ library code; the one
    # lint:allow'd line in the fixture must not count, hence exactly 3.
    pointer_fixture = str(TESTDATA / "pointer_keyed_cache.cpp")
    expect("pointer-cache-key-flagged",
           ["--pretend-rel", "src/harness/prepared_registry.cpp",
            pointer_fixture],
           1, "pointer-cache-key")
    expect("pointer-cache-key-allow-respected",
           ["--pretend-rel", "src/harness/prepared_registry.cpp",
            pointer_fixture],
           1, "3 violation(s)")
    # ...but the sanctioned stats::ProfileCache location is exempt.
    expect("pointer-cache-key-profile-cache-exempt",
           ["--pretend-rel", "src/stats/column_profile.cpp",
            pointer_fixture], 0)

    # Raw steady_clock::now() reads bypass the injectable Clock: flagged
    # in ordinary src/ library code, with the lint:allow'd read excluded
    # (hence exactly 2 findings)...
    clock_fixture = str(TESTDATA / "raw_steady_clock.cpp")
    expect("raw-steady-clock-flagged",
           ["--pretend-rel", "src/harness/timing_helper.cpp", clock_fixture],
           1, "wallclock-time")
    expect("raw-steady-clock-allow-respected",
           ["--pretend-rel", "src/harness/timing_helper.cpp", clock_fixture],
           1, "2 violation(s)")
    # ...but sanctioned inside the Clock abstraction and the Deadline
    # machinery (which deliberately stays on the real steady clock).
    expect("raw-steady-clock-obs-exempt",
           ["--pretend-rel", "src/obs/clock.cpp", clock_fixture], 0)
    expect("raw-steady-clock-deadline-exempt",
           ["--pretend-rel", "src/core/deadline.cpp", clock_fixture], 0)
    # The serving event loop (src/serve/server.*) times live socket
    # requests, which no injectable clock can witness — exempt. The
    # rest of src/serve/ gets no such pass.
    expect("raw-steady-clock-serve-event-loop-exempt",
           ["--pretend-rel", "src/serve/server.cpp", clock_fixture], 0)
    expect("raw-steady-clock-serve-service-not-exempt",
           ["--pretend-rel", "src/serve/service.cpp", clock_fixture],
           1, "wallclock-time")
    # The request-telemetry spine measures handler time on the
    # injectable clock by contract (byte-stable fake-clock access logs);
    # it must never inherit the event loop's steady-clock pass.
    expect("raw-steady-clock-serve-telemetry-not-exempt",
           ["--pretend-rel", "src/serve/telemetry.cpp", clock_fixture],
           1, "wallclock-time")
    # Outside src/ the rule does not apply at all.
    expect("raw-steady-clock-out-of-scope",
           ["--pretend-rel", "tools/bench_report/bench_report.cpp",
            clock_fixture], 0)

    # Raw std::mutex / std::lock_guard in src/ library code bypass the
    # annotated valentine::Mutex layer: flagged everywhere in src/
    # except the wrapper itself, with the lint:allow'd lock_guard
    # excluded (hence exactly 4 findings: include, member, two guards).
    naked_fixture = str(TESTDATA / "naked_mutex.cpp")
    expect("naked-mutex-flagged",
           ["--pretend-rel", "src/obs/some_registry.cpp", naked_fixture],
           1, "naked-mutex")
    # The telemetry spine's access-log/ring mutex must come from the
    # annotated layer (it carries a lock rank the checker verifies).
    expect("naked-mutex-serve-telemetry-flagged",
           ["--pretend-rel", "src/serve/telemetry.cpp", naked_fixture],
           1, "naked-mutex")
    expect("naked-mutex-allow-respected",
           ["--pretend-rel", "src/obs/some_registry.cpp", naked_fixture],
           1, "4 violation(s)")
    # ...but src/core/mutex.* is the sanctioned home of the raw
    # primitives, and code outside src/ (tests, tools) is out of scope.
    expect("naked-mutex-wrapper-exempt",
           ["--pretend-rel", "src/core/mutex.cpp", naked_fixture], 0)
    expect("naked-mutex-out-of-scope",
           ["--pretend-rel", "tools/bench_report/bench_report.cpp",
            naked_fixture], 0)

    # Members sharing a class with a Mutex must declare GUARDED_BY or
    # opt out: exactly 2 findings — the annotated member, the
    # lint:allow'd immutable, the atomic, and the static constexpr are
    # all exempt, as is the multi-line declaration whose GUARDED_BY
    # sits on a continuation line.
    guarded_fixture = str(TESTDATA / "guarded_by_missing.cpp")
    expect("guarded-by-coverage-flagged",
           ["--pretend-rel", "src/stats/export_cache.cpp", guarded_fixture],
           1, "guarded-by-coverage")
    expect("guarded-by-coverage-exemptions-respected",
           ["--pretend-rel", "src/stats/export_cache.cpp", guarded_fixture],
           1, "2 violation(s)")
    # Outside src/ the heuristic does not apply (tests may build ad-hoc
    # scaffolding without annotations).
    expect("guarded-by-coverage-out-of-scope",
           ["--pretend-rel", "tests/export_cache_test.cpp",
            guarded_fixture], 0)

    # Fixtures never leak into a default tree scan: the real tree must
    # still lint clean with the deliberately bad file present.
    expect("default-tree-clean", [], 0)

    # Guard the guard: --pretend-rel refuses multi-file invocations.
    expect("pretend-rel-single-file",
           ["--pretend-rel", "src/text/x.cpp", fixture, fixture], 2)

    if FAILURES:
        for f in FAILURES:
            print(f"lint_selftest FAIL {f}", file=sys.stderr)
        return 1
    print("lint_selftest: OK (29 cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
