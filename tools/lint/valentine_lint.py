#!/usr/bin/env python3
"""valentine_lint: repo-invariant linter for the Valentine C++ suite.

The experiment pipeline promises byte-identical results whether a suite
runs sequentially or on 80 cores (see src/harness/parallel.h). Most of
that contract cannot be expressed in the type system, so this linter
machine-checks the repo-wide invariants that protect it:

  forbidden-random      Nondeterministic randomness sources (std::rand,
                        srand, time(), std::random_device, raw mt19937
                        construction) anywhere outside src/core/rng.*.
                        All randomness must flow through the seeded Rng.
  unordered-iteration   Iteration over std::unordered_map/unordered_set
                        in ranked-output / serialization paths
                        (src/matchers/, src/discovery/, src/knowledge/,
                        src/obs/, src/harness/json_export.*). Hash-order
                        iteration silently reorders equal-score matches
                        and serialized records between platforms/runs.
  ignored-status        Statement-level calls to functions returning
                        Status/Result<T> whose value is discarded.
                        (Backstop for compilers/configs where the
                        [[nodiscard]] warning is not fatal.)
  header-guard          Every header's include guard must be the
                        canonical VALENTINE_<REL_PATH>_H_ spelling.
  include-hygiene       No <bits/stdc++.h>; project headers included
                        with quotes, never angle brackets; a .cpp under
                        src/ includes its own header first (catches
                        headers that are not self-contained).
  pointer-cache-key     std::map/std::unordered_map keyed on a pointer
                        type in src/ library code, outside the sanctioned
                        stats::ProfileCache (src/stats/column_profile.*).
                        Address keys go stale when the pointee's storage
                        moves or is recycled; caches must key on content
                        (cf. matchers::ArtifactCache).
  naked-mutex           Raw std::mutex / std::lock_guard / std::unique_lock
                        (and <mutex>-family includes) in src/ outside the
                        sanctioned wrapper (src/core/mutex.*). Library
                        code must lock through valentine::Mutex/MutexLock
                        so the Clang capability analysis and the debug
                        lock-rank registry both apply; a raw mutex is
                        invisible to both.
  guarded-by-coverage   A class that declares a valentine::Mutex (or raw
                        std::mutex) member must annotate every sibling
                        data member with GUARDED_BY/PT_GUARDED_BY — or
                        explicitly opt it out with
                        // lint:allow(guarded-by-coverage) plus a reason
                        (immutable-after-construction members, typically).
                        Heuristic companion to -Wthread-safety: GCC
                        builds cannot run the analysis, but they can
                        refuse unannotated shared state. static /
                        constexpr / std::atomic members are exempt.
  wallclock-time        std::chrono::system_clock, thread sleeps
                        (sleep_for / sleep_until), and raw
                        steady_clock::now() reads in src/ library code
                        (the latter outside src/obs/ and
                        src/core/deadline.*). Wall clocks jump under
                        NTP and break Deadline math; library code must
                        never block the calling thread (waits are
                        cooperative or delegated via
                        ExecutionPolicy::backoff_wait); and raw steady-
                        clock measurements bypass the injectable
                        valentine::Clock, making timing fields
                        nondeterministic under test.

Usage:
  tools/lint/valentine_lint.py            # lint the default tree
  tools/lint/valentine_lint.py FILE...    # lint specific files
  tools/lint/valentine_lint.py --list-rules

Suppress a finding by appending  // lint:allow(<rule-id>)  with a reason
on the offending line. Exit status: 0 clean, 1 violations, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

# Directories scanned when no explicit files are given.
DEFAULT_DIRS = ("src", "tests", "bench", "examples", "tools")

CPP_SUFFIXES = {".cpp", ".cc", ".cxx", ".h", ".hpp"}

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")


class Violation:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        try:
            rel = self.path.relative_to(REPO_ROOT)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Blanks out string/char literals and // comments so rule regexes
    never fire on prose. Block comments are handled line-wise by the
    caller via in_block_comment state."""
    out = []
    i, n = 0, len(line)
    in_str = None  # quote char when inside a literal
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in ('"', "'"):
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a comment
        out.append(c)
        i += 1
    return "".join(out)


def iter_code_lines(text: str):
    """Yields (lineno, raw_line, code_line) with comments/strings blanked."""
    in_block = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                yield lineno, raw, ""
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        # Remove any complete /* ... */ spans, then detect an opener.
        line = re.sub(r"/\*.*?\*/", " ", line)
        start = line.find("/*")
        if start >= 0:
            line = line[:start]
            in_block = True
        yield lineno, raw, strip_comments_and_strings(line)


def allowed(raw_line: str, rule: str) -> bool:
    m = ALLOW_RE.search(raw_line)
    return bool(m and m.group(1) == rule)


# --------------------------------------------------------------------------
# Rule: forbidden-random
# --------------------------------------------------------------------------

RANDOM_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*rand\b|(?<![\w:])rand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:])time\s*\("), "time()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937"),
]

# The one place allowed to own raw entropy primitives.
RNG_SOURCES = {"src/core/rng.h", "src/core/rng.cpp"}


def check_forbidden_random(path: Path, rel: str, text: str, out: list):
    if rel in RNG_SOURCES:
        return
    for lineno, raw, code in iter_code_lines(text):
        for pattern, what in RANDOM_PATTERNS:
            if pattern.search(code) and not allowed(raw, "forbidden-random"):
                out.append(Violation(
                    path, lineno, "forbidden-random",
                    f"{what} breaks run-to-run determinism; route randomness "
                    f"through the seeded valentine::Rng (src/core/rng.h)"))


# --------------------------------------------------------------------------
# Rule: unordered-iteration
# --------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*&?\s*(\w+)\s*[;={(,)]")
# src/text/ and src/stats/ are in scope because their outputs feed ranked
# scores directly (the FuzzyJaccard leftover-pairing bug lived in
# src/text/): greedy/sequential reductions there are just as
# order-sensitive as the matchers themselves. src/discovery/ ranks
# repository tables and src/knowledge/ feeds matcher scores through the
# thesaurus, so hash-order iteration there reorders results the same way.
# src/obs/ serializes traces and Prometheus text that must be
# byte-reproducible under a FakeClock, so its export paths may never
# iterate a hash container either. src/serve/ serializes JSON responses
# whose bytes are contractually identical to direct engine calls
# (tests/serve_service_test.cpp pins this), so the same applies.
ORDER_SENSITIVE_PREFIXES = ("src/matchers/", "src/text/", "src/stats/",
                            "src/discovery/", "src/knowledge/", "src/obs/",
                            "src/serve/", "src/io/", "src/scaling/")
ORDER_SENSITIVE_FILES = {"src/harness/json_export.h", "src/harness/json_export.cpp"}


def order_sensitive(rel: str) -> bool:
    return rel in ORDER_SENSITIVE_FILES or any(
        rel.startswith(p) for p in ORDER_SENSITIVE_PREFIXES)


def check_unordered_iteration(path: Path, rel: str, text: str, out: list):
    if not order_sensitive(rel):
        return
    # Pass 1: names declared (variable or member) with an unordered type.
    unordered_names = set()
    for _, _, code in iter_code_lines(text):
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))
    if not unordered_names:
        return
    name_alt = "|".join(re.escape(n) for n in sorted(unordered_names))
    range_for_re = re.compile(
        rf"\bfor\s*\([^;)]*:\s*\*?(?:\w+(?:\.|->))*({name_alt})\s*\)")
    iter_re = re.compile(rf"\b({name_alt})\s*\.\s*(?:begin|cbegin)\s*\(")
    # Pass 2: iteration over those names.
    for lineno, raw, code in iter_code_lines(text):
        m = range_for_re.search(code) or iter_re.search(code)
        if m and not allowed(raw, "unordered-iteration"):
            out.append(Violation(
                path, lineno, "unordered-iteration",
                f"iterating '{m.group(1)}' (std::unordered_*) in a "
                f"ranked-output/serialization path: hash order is "
                f"nondeterministic across runs and platforms — copy into a "
                f"sorted container (std::map / sorted vector) first"))


# --------------------------------------------------------------------------
# Rule: ignored-status
# --------------------------------------------------------------------------

STATUS_FN_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+)*"
    r"(?:::)?(?:valentine::)?(?:Status|Result\s*<[^;{]+>)\s+(\w+)\s*\(")

# Declarations of the same *name* with a non-Status return type. The rule
# matches call sites by bare method name, so a name used for both (e.g.
# LshIndex::Add returns Status while MatchResult::Add returns void) cannot
# be judged at the token level — such names are dropped from the set and
# left to the compiler's [[nodiscard]] enforcement, which is type-aware.
NONSTATUS_FN_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+|constexpr\s+)*"
    r"(?:void|bool|int|int64_t|uint64_t|size_t|double|float|auto|"
    r"std::\s*\w[\w:<>,\s*&]*|[A-Z]\w*(?:<[^;{()]*>)?[*&]?)\s+(\w+)\s*\(")


def collect_status_functions(files) -> set:
    """Names of functions/methods declared to return Status or Result<T>,
    harvested from the repo's own headers. Names that are *also* declared
    with a non-Status return type anywhere are excluded as ambiguous."""
    status_names = set()
    other_names = set()
    for path in files:
        if path.suffix != ".h":
            continue
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        for _, _, code in iter_code_lines(text):
            m = STATUS_FN_DECL_RE.match(code)
            if m:
                status_names.add(m.group(1))
                continue
            m = NONSTATUS_FN_DECL_RE.match(code)
            if m:
                other_names.add(m.group(1))
    return status_names - other_names


def check_ignored_status(path: Path, rel: str, text: str,
                         status_fns: set, out: list):
    if not status_fns:
        return
    name_alt = "|".join(re.escape(n) for n in sorted(status_fns))
    # A bare statement whose whole content is a (possibly qualified) call
    # to a Status-returning function: `WriteJsonFile(...);`,
    # `table.AddColumn(...);`, `io::csv::WriteCsvFile(...);`. The
    # qualifier chain deliberately excludes parentheses so calls wrapped
    # in macros (VALENTINE_RETURN_NOT_OK, EXPECT_TRUE, ...) or in a
    # `(void)` cast never match.
    call_stmt_re = re.compile(
        rf"^\s*(?:\w+(?:\.|->|::))*({name_alt})\s*\(")
    prev_terminated = True  # whether the previous code line ended a statement
    for lineno, raw, code in iter_code_lines(text):
        stmt_start = prev_terminated
        stripped = code.strip()
        if stripped:
            prev_terminated = (stripped.endswith((";", "{", "}", ":")) or
                               stripped.startswith("#"))
        m = call_stmt_re.match(code)
        if not m or not stmt_start:
            continue
        if not stripped.endswith((";", "(", ",")):
            continue  # part of a larger expression; let the compiler judge
        # A call used as a value on its own line still feeds something:
        # `Foo(...).status();` or `Foo(...).ValueOrDie();` chains are
        # out of scope here.
        if re.search(rf"({name_alt})\s*\([^;]*\)\s*\.", code):
            continue
        if allowed(raw, "ignored-status"):
            continue
        out.append(Violation(
            path, lineno, "ignored-status",
            f"return value of {m.group(1)}() (Status/Result) is discarded; "
            f"check it, propagate with VALENTINE_RETURN_NOT_OK, or cast to "
            f"(void) with a comment"))


# --------------------------------------------------------------------------
# Rule: pointer-cache-key
# --------------------------------------------------------------------------

POINTER_KEY_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:unordered_)?(?:multi)?map\s*<\s*(?:const\s+)?"
    r"[\w:]+\s*(?:const\s*)?\*")

# The one sanctioned pointer-keyed cache: stats::ProfileCache keys on the
# Table's address by design — the harness guarantees every profiled table
# outlives the campaign, and the serving-predicate tests pin down its
# aliasing semantics. Everything else must key on content (fingerprint +
# name + prepare key, cf. src/matchers/artifact_cache.*): an address key
# silently ties a cache entry to storage that can move (vector growth) or
# be reused (allocator recycling), producing stale hits.
POINTER_KEY_EXEMPT = {"src/stats/column_profile.h",
                      "src/stats/column_profile.cpp"}


def check_pointer_cache_key(path: Path, rel: str, text: str, out: list):
    if not rel.startswith("src/") or rel in POINTER_KEY_EXEMPT:
        return
    for lineno, raw, code in iter_code_lines(text):
        if POINTER_KEY_RE.search(code) and not allowed(raw, "pointer-cache-key"):
            out.append(Violation(
                path, lineno, "pointer-cache-key",
                "pointer-keyed map: keying on an object's address ties the "
                "entry to storage that can move or be recycled; key on "
                "content instead (table fingerprint + name, see "
                "src/matchers/artifact_cache.h) or justify with "
                "// lint:allow(pointer-cache-key)"))


# --------------------------------------------------------------------------
# Rule: wallclock-time
# --------------------------------------------------------------------------

# (pattern, message, exempt prefixes). Raw steady-clock reads are only
# sanctioned inside the Clock abstraction itself (src/obs/) and the
# Deadline machinery (src/core/deadline.*), which deliberately stays on
# the real steady clock so wall-clock budgets hold even under a
# FakeClock; every *measurement* elsewhere must flow through an
# injectable valentine::Clock or timing fields go nondeterministic and
# tests are back to scrubbing them.
WALLCLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"),
     "std::chrono::system_clock is wall-clock time (jumps under NTP); "
     "use std::chrono::steady_clock / valentine::Deadline",
     ()),
    (re.compile(r"\bsleep_(?:for|until)\s*\("),
     "library code must not sleep; poll MatchContext::Check for "
     "cooperative waits or route delays through "
     "ExecutionPolicy::backoff_wait",
     ()),
    (re.compile(r"\bsteady_clock\s*::\s*now\s*\("),
     "raw steady_clock::now() makes timing fields nondeterministic; "
     "read time through an injectable valentine::Clock "
     "(src/obs/clock.h) so tests can inject a FakeClock",
     # src/serve/server.* is the socket event loop: it times live
     # requests (socket + engine work of a real connection), which no
     # injectable clock can witness — the measurement is inherently a
     # property of this process, not of a simulated timeline.
     ("src/obs/", "src/core/deadline.", "src/serve/server.")),
]


def check_wallclock_time(path: Path, rel: str, text: str, out: list):
    if not rel.startswith("src/"):
        return
    for lineno, raw, code in iter_code_lines(text):
        for pattern, message, exempt_prefixes in WALLCLOCK_PATTERNS:
            if any(rel.startswith(p) for p in exempt_prefixes):
                continue
            if pattern.search(code) and not allowed(raw, "wallclock-time"):
                out.append(Violation(path, lineno, "wallclock-time", message))


# --------------------------------------------------------------------------
# Rule: naked-mutex
# --------------------------------------------------------------------------

# The one sanctioned home of the raw primitives: the annotated wrapper.
# Everything else in src/ locks through valentine::Mutex/MutexLock, so
# the Clang capability analysis (thread_annotations.h) and the debug
# lock-rank registry (lock_rank.h) see every critical section.
MUTEX_WRAPPER_FILES = {"src/core/mutex.h", "src/core/mutex.cpp"}

NAKED_MUTEX_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*(?:recursive_|timed_|recursive_timed_|"
                r"shared_)?mutex\b"),
     "std::mutex"),
    (re.compile(r"\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock|"
                r"shared_lock)\b"),
     "std::lock_guard/unique_lock/scoped_lock"),
    (re.compile(r"\bstd\s*::\s*condition_variable(?:_any)?\b"),
     "std::condition_variable"),
    (re.compile(r"^\s*#\s*include\s+<(?:mutex|shared_mutex|"
                r"condition_variable)>"),
     "<mutex>-family include"),
]


def check_naked_mutex(path: Path, rel: str, text: str, out: list):
    if not rel.startswith("src/") or rel in MUTEX_WRAPPER_FILES:
        return
    for lineno, raw, code in iter_code_lines(text):
        for pattern, what in NAKED_MUTEX_PATTERNS:
            if pattern.search(code) and not allowed(raw, "naked-mutex"):
                out.append(Violation(
                    path, lineno, "naked-mutex",
                    f"{what} bypasses the annotated locking layer; use "
                    f"valentine::Mutex / MutexLock (src/core/mutex.h) so "
                    f"-Wthread-safety and the lock-rank registry cover "
                    f"this critical section"))
                break  # one finding per line is enough


# --------------------------------------------------------------------------
# Rule: guarded-by-coverage
# --------------------------------------------------------------------------

CLASS_OPEN_RE = re.compile(r"^\s*(?:template\s*<[^>]*>\s*)?(?:class|struct)\b")
ENUM_CLASS_RE = re.compile(r"^\s*enum\s+(?:class|struct)\b")
# A valentine::Mutex (or raw std::mutex) data member.
MUTEX_MEMBER_RE = re.compile(
    r"\b(?:valentine\s*::\s*)?(?:Mutex|std\s*::\s*mutex)\s+(\w+)\s*[;{=]")
# A data member by the repo's trailing-underscore convention: an
# identifier ending in '_' directly followed by ';', '=', '{' (brace
# init), or a thread-safety annotation. Function declarations never
# match: their names carry no trailing underscore and their parameter
# lists put '(' right after the name.
DATA_MEMBER_RE = re.compile(
    r"\b(\w+_)\s*(?:;|=|\{|GUARDED_BY\s*\(|PT_GUARDED_BY\s*\()")
GUARD_ANNOTATION_RE = re.compile(r"\b(?:PT_)?GUARDED_BY\s*\(")


def check_guarded_by_coverage(path: Path, rel: str, text: str, out: list):
    if not rel.startswith("src/") or rel in MUTEX_WRAPPER_FILES:
        return
    # Statements: code lines joined until one ends with ';', '{' or '}'
    # (multi-line member declarations carry their GUARDED_BY on a
    # continuation line). Each statement keeps the raw lines so
    # lint:allow anywhere in the declaration is honored.
    statements = []  # (first_lineno, depth_at_start, code, [raw lines])
    depth = 0
    pending = None
    for lineno, raw, code in iter_code_lines(text):
        stripped = code.strip()
        if not stripped and pending is None:
            continue
        if pending is None:
            pending = [lineno, depth, stripped, [raw]]
        else:
            pending[2] += " " + stripped
            pending[3].append(raw)
        depth += code.count("{") - code.count("}")
        if stripped.endswith((";", "{", "}")) or stripped.startswith("#"):
            statements.append(tuple(pending))
            pending = None
    if pending is not None:
        statements.append(tuple(pending))

    # Class scopes: members live at start_depth + 1.
    class_stack = []  # (member_depth, members: [(lineno, code, raws)],
    #                    mutex names)
    findings = []  # deferred: only reported for classes that own a mutex

    def close_scope(scope):
        member_depth, members, mutexes = scope
        if not mutexes:
            return
        for lineno, code, raws in members:
            m = DATA_MEMBER_RE.search(code)
            if not m or m.group(1) in mutexes:
                continue
            if GUARD_ANNOTATION_RE.search(code):
                continue
            if re.search(r"\b(?:static|constexpr)\b", code):
                continue
            if re.search(r"\b(?:std\s*::\s*)?atomic\s*<", code):
                continue
            if any(allowed(r, "guarded-by-coverage") for r in raws):
                continue
            findings.append(Violation(
                path, lineno, "guarded-by-coverage",
                f"member '{m.group(1)}' sits next to mutex "
                f"'{'/'.join(sorted(mutexes))}' but carries no "
                f"GUARDED_BY/PT_GUARDED_BY annotation; annotate it, or "
                f"opt out with // lint:allow(guarded-by-coverage) and a "
                f"reason (e.g. immutable after construction)"))

    for lineno, start_depth, code, raws in statements:
        while class_stack and start_depth < class_stack[-1][0]:
            close_scope(class_stack.pop())
        if (CLASS_OPEN_RE.match(code) and not ENUM_CLASS_RE.match(code)
                and code.rstrip().endswith("{")):
            class_stack.append((start_depth + 1, [], set()))
            continue
        if class_stack and start_depth == class_stack[-1][0]:
            mm = MUTEX_MEMBER_RE.search(code)
            if mm:
                class_stack[-1][2].add(mm.group(1))
            elif code.endswith(";"):
                class_stack[-1][1].append((lineno, code, raws))
    while class_stack:
        close_scope(class_stack.pop())
    out.extend(findings)


# --------------------------------------------------------------------------
# Rule: header-guard
# --------------------------------------------------------------------------

def canonical_guard(rel: str) -> str:
    # src/core/rng.h -> VALENTINE_CORE_RNG_H_ ; files outside src/ keep
    # their top-level dir: tests/foo.h -> VALENTINE_TESTS_FOO_H_.
    parts = Path(rel).with_suffix("").parts
    if parts[0] == "src":
        parts = parts[1:]
    body = "_".join(p.upper().replace("-", "_").replace(".", "_") for p in parts)
    return f"VALENTINE_{body}_H_"


def check_header_guard(path: Path, rel: str, text: str, out: list):
    if path.suffix != ".h":
        return
    expected = canonical_guard(rel)
    ifndef = re.search(r"^#ifndef\s+(\w+)\s*$", text, re.MULTILINE)
    define = re.search(r"^#define\s+(\w+)\s*$", text, re.MULTILINE)
    if not ifndef or not define:
        out.append(Violation(path, 1, "header-guard",
                             f"missing include guard (expected {expected})"))
        return
    if ifndef.group(1) != expected or define.group(1) != expected:
        lineno = text[:ifndef.start()].count("\n") + 1
        out.append(Violation(
            path, lineno, "header-guard",
            f"guard '{ifndef.group(1)}' should be '{expected}'"))


# --------------------------------------------------------------------------
# Rule: include-hygiene
# --------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"])([^>"]+)[>"]')


def check_include_hygiene(path: Path, rel: str, text: str,
                          project_headers: set, out: list):
    first_include = None
    for lineno, raw, _ in iter_code_lines(text):
        m = INCLUDE_RE.match(raw)
        if not m:
            continue
        style, target = m.group(1), m.group(2)
        if first_include is None:
            first_include = (lineno, target)
        if target == "bits/stdc++.h":
            if not allowed(raw, "include-hygiene"):
                out.append(Violation(
                    path, lineno, "include-hygiene",
                    "<bits/stdc++.h> is non-portable and hides real "
                    "dependencies; include what you use"))
            continue
        if style == "<" and target in project_headers:
            if not allowed(raw, "include-hygiene"):
                out.append(Violation(
                    path, lineno, "include-hygiene",
                    f'project header should be included as "{target}", '
                    f"not <{target}>"))
    # Own-header-first, for library implementation files only.
    if rel.startswith("src/") and path.suffix == ".cpp":
        own = str(Path(rel).with_suffix(".h").relative_to("src"))
        if own in project_headers and first_include and first_include[1] != own:
            out.append(Violation(
                path, first_include[0], "include-hygiene",
                f'first include of {Path(rel).name} should be its own header '
                f'"{own}" (proves the header is self-contained)'))


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

RULES = ("forbidden-random", "unordered-iteration", "ignored-status",
         "header-guard", "include-hygiene", "wallclock-time",
         "pointer-cache-key", "naked-mutex", "guarded-by-coverage")


# Deliberately-violating fixtures for the lint self-test; never part of
# a default tree scan.
TESTDATA_DIR = REPO_ROOT / "tools" / "lint" / "testdata"


def gather_files(args_paths):
    if args_paths:
        files = []
        for p in args_paths:
            path = Path(p).resolve()
            if path.is_dir():
                files.extend(sorted(path.rglob("*")))
            else:
                files.append(path)
    else:
        files = []
        for d in DEFAULT_DIRS:
            root = REPO_ROOT / d
            if root.is_dir():
                files.extend(sorted(root.rglob("*")))
        files = [f for f in files if TESTDATA_DIR not in f.parents]
    return [f for f in files if f.suffix in CPP_SUFFIXES and f.is_file()]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: repo tree)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument(
        "--pretend-rel", metavar="REL",
        help="lint the single given file as if it lived at repo-relative "
             "path REL (the self-test uses this to run fixtures through "
             "path-scoped rules)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    files = gather_files(args.paths)
    if not files:
        print("valentine_lint: no C++ files to lint", file=sys.stderr)
        return 2
    if args.pretend_rel and len(files) != 1:
        print("valentine_lint: --pretend-rel requires exactly one file",
              file=sys.stderr)
        return 2

    # Status-returning names and project-header paths come from the full
    # src/ tree even when linting a subset, so single-file runs see the
    # same rule surface as full runs.
    src_headers = sorted((REPO_ROOT / "src").rglob("*.h"))
    status_fns = collect_status_functions(src_headers)
    project_headers = {
        str(h.relative_to(REPO_ROOT / "src")) for h in src_headers}

    violations = []
    for path in files:
        if args.pretend_rel:
            rel = args.pretend_rel
        else:
            try:
                rel = str(path.relative_to(REPO_ROOT))
            except ValueError:
                rel = str(path)
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as e:
            print(f"valentine_lint: cannot read {path}: {e}", file=sys.stderr)
            return 2
        check_forbidden_random(path, rel, text, violations)
        check_unordered_iteration(path, rel, text, violations)
        check_ignored_status(path, rel, text, status_fns, violations)
        check_header_guard(path, rel, text, violations)
        check_include_hygiene(path, rel, text, project_headers, violations)
        check_wallclock_time(path, rel, text, violations)
        check_pointer_cache_key(path, rel, text, violations)
        check_naked_mutex(path, rel, text, violations)
        check_guarded_by_coverage(path, rel, text, violations)

    for v in violations:
        print(v)
    if violations:
        print(f"valentine_lint: {len(violations)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"valentine_lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
