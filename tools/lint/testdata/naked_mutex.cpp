// Deliberately-violating fixture for the naked-mutex rule: raw
// standard-library locking primitives in src/ library code, which the
// Clang capability analysis and the lock-rank registry cannot see.
// Expected findings when linted as src/<anything outside core/mutex.*>:
// 4 — the <mutex> include, the member, one lock_guard, one unique_lock
// (the lint:allow'd lock_guard in Clear() is exempt). The same file
// linted as src/core/mutex.cpp (the sanctioned wrapper) or outside
// src/ is clean. names_ carries GUARDED_BY so this fixture stays
// single-purpose (guarded-by-coverage-clean).
#include "core/mutex.h"

#include <mutex>  // finding 1: <mutex>-family include

#include <string>
#include <vector>

namespace valentine {

class BadRegistry {
 public:
  void Add(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);  // finding 3
    names_.push_back(name);
  }

  size_t Size() const {
    std::unique_lock<std::mutex> lock(mu_);  // finding 4
    return names_.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);  // lint:allow(naked-mutex) fixture
    names_.clear();
  }

 private:
  mutable std::mutex mu_;  // finding 2
  std::vector<std::string> names_ GUARDED_BY(mu_);
};

}  // namespace valentine
