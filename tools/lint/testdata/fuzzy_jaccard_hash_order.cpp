// Lint self-test fixture: the order-dependence bug class the
// unordered-iteration rule exists to catch, reduced from the original
// FuzzyJaccard implementation. The leftover list for `b` is emitted by
// iterating an unordered_map, so the greedy pairing downstream — and
// every score built on it — depends on hash iteration order. The rule
// must flag the range-for over `b_counts` when this file is treated as
// living under src/text/ (see lint_selftest.py); it must stay out of
// default tree scans.

#include <string>
#include <unordered_map>
#include <vector>

namespace valentine_lint_fixture {

std::vector<std::string> LeftoversInHashOrder(
    const std::vector<std::string>& b,
    std::unordered_map<std::string, size_t>& b_counts) {
  std::vector<std::string> b_left;
  for (const auto& [s, count] : b_counts) {
    for (size_t k = 0; k < count; ++k) b_left.push_back(s);
  }
  (void)b;
  return b_left;
}

}  // namespace valentine_lint_fixture
