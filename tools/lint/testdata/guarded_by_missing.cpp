// Deliberately-violating fixture for the guarded-by-coverage rule —
// the shared-state shape the PR 1 COMA/SemProp episode taught us to
// distrust: a stats/export cache whose members sit next to a mutex
// with nothing declaring which of them the mutex guards. On a Clang
// build -Wthread-safety would catch an unlocked read of `scores_` on
// the export path; this heuristic makes GCC builds refuse the missing
// annotation itself. Expected findings when linted as src/<...>:
// 2 — `scores_` and `hits_`. `export_order_` is annotated, `spec_` is
// lint:allow'd (immutable), `pending_` is atomic, `kMaxEntries` is
// static constexpr; the multi-line `by_family_` declaration carries
// its GUARDED_BY on the continuation line and must not be flagged.
// Outside src/ the rule does not apply.
#include "core/mutex.h"

#include <atomic>
#include <map>
#include <string>
#include <vector>

namespace valentine {

struct ExportSpec {
  size_t cap = 16;
};

class StatsExportCache {
 public:
  explicit StatsExportCache(ExportSpec spec) : spec_(spec) {}

  void Record(const std::string& name, double score) {
    MutexLock lock(&mu_);
    scores_[name] = score;
    export_order_.push_back(name);
    ++hits_;
  }

 private:
  static constexpr size_t kMaxEntries = 1024;
  const ExportSpec spec_;  // lint:allow(guarded-by-coverage) immutable
  mutable Mutex mu_{LockRank::kProfileCache, "StatsExportCache"};
  std::map<std::string, double> scores_;  // finding 1: no GUARDED_BY
  std::vector<std::string> export_order_ GUARDED_BY(mu_);
  std::map<std::string, std::vector<double>> by_family_
      GUARDED_BY(mu_);
  size_t hits_ = 0;  // finding 2: no GUARDED_BY
  std::atomic<uint64_t> lockfree_reads_{0};
};

}  // namespace valentine
