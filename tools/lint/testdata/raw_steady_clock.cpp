// Fixture for the wallclock-time rule's steady_clock::now() pattern:
// raw monotonic-clock reads are fine inside src/obs/ (the Clock
// abstraction) and src/core/deadline.* (real-time budgets), but
// anywhere else in src/ they bypass the injectable valentine::Clock and
// make timing fields nondeterministic. Deliberately violating; only
// linted via --pretend-rel from lint_selftest.py. No sleeps, no
// system_clock, and no includes at all (the self-test pretends this
// file lives at several different paths, and any first include would
// trip include-hygiene's own-header-first check under one of them), so
// the exempt-path cases pass with zero findings.

namespace valentine_lint_fixture {

using int64_t = long long;

int64_t MeasureStart() {
  // BAD outside src/obs/ and src/core/deadline.*: raw monotonic read.
  auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

double MeasureElapsedMs(int64_t start_ns) {
  // BAD: the matching end-read, same rule.
  auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(t1.time_since_epoch().count() - start_ns) / 1e6;
}

int64_t SanctionedRead() {
  // Justified reads stay allowed anywhere.
  auto t = std::chrono::steady_clock::now();  // lint:allow(wallclock-time)
  return t.time_since_epoch().count();
}

}  // namespace valentine_lint_fixture
