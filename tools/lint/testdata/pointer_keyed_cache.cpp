// Deliberately violating fixture for the pointer-cache-key rule: caches
// keyed on object addresses. The first include matches the exemption
// path's own header so the self-test can also run this file pretending
// to be src/stats/column_profile.cpp without tripping include-hygiene.
#include "stats/column_profile.h"

#include <map>
#include <string>
#include <unordered_map>

namespace valentine {

class Table;

// Both of these must be flagged anywhere in src/ outside the exemption.
std::map<const Table*, std::string> g_serialized_cache;
std::unordered_map<Table*, int> g_hit_counts;

// A justified pointer key is suppressible line-by-line.
std::map<const Table*, int> g_generation;  // lint:allow(pointer-cache-key)

int Lookup(const std::map<const Table*, std::string>& cache) {
  return static_cast<int>(cache.size());
}

}  // namespace valentine
