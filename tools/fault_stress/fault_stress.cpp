// Fault-injection soak driver for the fault-tolerant harness.
//
// Crosses a matrix of deterministic fault plans (fail-N-then-succeed,
// probabilistic, hang, always-fail) with a sweep of thread counts and
// asserts three contracts on every cell:
//
//   1. determinism — the parallel run's canonical report is
//      byte-identical to the sequential run under the same plan;
//   2. convergence — recoverable plans (failures < retry budget) end
//      with the same best recalls and best configs as a fault-free run;
//   3. containment — the always-fail plan completes without aborting,
//      quarantining every configuration into the failure taxonomy.
//
// Built for soaking under ThreadSanitizer:
//
//   cmake --preset tsan && cmake --build --preset tsan --target fault_stress
//   TSAN_OPTIONS=halt_on_error=1 ./build/tsan/tools/fault_stress/fault_stress
//
// Exits 0 when every contract held, 1 otherwise.
//
// Usage: fault_stress [--rows N] [--repeats N] [--max-threads N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "datasets/tpcdi.h"
#include "harness/json_export.h"
#include "harness/parallel.h"
#include "matchers/fault_injection.h"

namespace valentine {
namespace {

struct StressOptions {
  size_t rows = 30;
  int repeats = 2;
  size_t max_threads = 8;
};

struct PlanCase {
  std::string name;
  FaultPlan plan;
  bool recoverable = false;  ///< retries must fully mask the faults
  bool terminal = false;     ///< every experiment must end failed
};

std::vector<PlanCase> PlanMatrix() {
  std::vector<PlanCase> cases;
  cases.push_back({"baseline", FaultPlan{}, true, false});
  {
    FaultPlan p;
    p.fail_first = 1;
    cases.push_back({"fail-1-then-succeed", p, true, false});
  }
  {
    FaultPlan p;
    p.fail_first = 2;
    p.code = StatusCode::kIOError;
    cases.push_back({"fail-2-then-succeed", p, true, false});
  }
  {
    FaultPlan p;
    p.fail_probability = 0.3;
    p.seed = 1234;
    cases.push_back({"probabilistic-0.3", p, false, false});
  }
  {
    FaultPlan p;
    p.hang_ms = 2.0;
    cases.push_back({"hang-2ms", p, true, false});
  }
  {
    FaultPlan p;
    p.always_fail = true;
    cases.push_back({"always-fail", p, false, true});
  }
  return cases;
}

/// A small, fast family with every matcher wrapped in a fresh
/// fault-injecting decorator (fresh per run: the decorators carry
/// per-experiment attempt counters).
MethodFamily WrappedFamily(const FaultPlan& plan) {
  MethodFamily base = JaccardLevenshteinFamily();
  if (base.grid.size() > 3) base.grid.resize(3);
  MethodFamily wrapped{base.name, {}};
  for (const ConfiguredMatcher& cm : base.grid) {
    wrapped.grid.push_back(
        {cm.description,
         std::make_shared<FaultInjectingMatcher>(cm.matcher, plan)});
  }
  return wrapped;
}

std::string CanonicalJson(std::vector<FamilyPairOutcome> outcomes) {
  // Wall-clock runtime is the one field allowed to vary run-to-run.
  for (auto& o : outcomes) o.total_ms = 0.0;
  return ToJson(outcomes);
}

int RunStress(const StressOptions& opt) {
  Table original = MakeTpcdiProspect(opt.rows, 99);
  PairSuiteOptions suite_opt;
  suite_opt.row_overlaps = {0.5};
  suite_opt.column_overlaps = {0.5};
  suite_opt.instance_noise_variants = false;
  std::vector<DatasetPair> suite = BuildFabricatedSuite(original, suite_opt);
  std::printf("suite: %zu pairs fabricated from %zu-row table\n",
              suite.size(), opt.rows);

  FamilyRunContext run;
  run.policy.max_attempts = 4;
  run.policy.budget_ms = 0.0;

  // Fault-free reference for the convergence contract.
  std::vector<FamilyPairOutcome> reference =
      RunFamilyOnSuite(WrappedFamily(FaultPlan{}), suite, run);

  int violations = 0;
  size_t runs = 0;
  for (const PlanCase& pc : PlanMatrix()) {
    std::string expected =
        CanonicalJson(RunFamilyOnSuite(WrappedFamily(pc.plan), suite, run));

    // Contract 1: parallel == sequential for every thread count.
    for (size_t threads = 2; threads <= opt.max_threads; threads *= 2) {
      for (int repeat = 0; repeat < opt.repeats; ++repeat) {
        std::string got = CanonicalJson(RunFamilyOnSuiteParallel(
            WrappedFamily(pc.plan), suite, threads, run));
        ++runs;
        if (got != expected) {
          ++violations;
          std::fprintf(stderr,
                       "FAIL %s: %zu threads repeat %d diverged from "
                       "sequential\n",
                       pc.name.c_str(), threads, repeat);
        }
      }
    }

    // Contracts 2 + 3 on the sequential outcomes.
    std::vector<FamilyPairOutcome> outcomes =
        RunFamilyOnSuite(WrappedFamily(pc.plan), suite, run);
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (pc.recoverable &&
          (outcomes[i].best_recall != reference[i].best_recall ||
           outcomes[i].best_config != reference[i].best_config)) {
        ++violations;
        std::fprintf(stderr,
                     "FAIL %s: pair %s best (%g, %s) != fault-free "
                     "(%g, %s)\n",
                     pc.name.c_str(), outcomes[i].pair_id.c_str(),
                     outcomes[i].best_recall,
                     outcomes[i].best_config.c_str(),
                     reference[i].best_recall,
                     reference[i].best_config.c_str());
      }
      if (pc.terminal &&
          (outcomes[i].failed_runs != outcomes[i].runs ||
           !outcomes[i].best_config.empty())) {
        ++violations;
        std::fprintf(stderr, "FAIL %s: pair %s not fully quarantined\n",
                     pc.name.c_str(), outcomes[i].pair_id.c_str());
      }
    }
    std::printf("%-22s %s\n", pc.name.c_str(),
                violations == 0 ? "ok" : "VIOLATED");
  }
  std::printf("%zu parallel runs, %d contract violations\n", runs,
              violations);
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace valentine

int main(int argc, char** argv) {
  valentine::StressOptions opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--rows") == 0) {
      opt.rows = std::strtoull(next("--rows"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--repeats") == 0) {
      opt.repeats = std::atoi(next("--repeats"));
    } else if (std::strcmp(argv[i], "--max-threads") == 0) {
      opt.max_threads = std::strtoull(next("--max-threads"), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: fault_stress [--rows N] [--repeats N] "
                   "[--max-threads N]\n");
      return 2;
    }
  }
  if (opt.rows == 0 || opt.repeats <= 0 || opt.max_threads < 2) {
    std::fprintf(stderr, "invalid stress options\n");
    return 2;
  }
  return valentine::RunStress(opt);
}
