#!/usr/bin/env bash
# Process-level lifecycle smoke for valentine_serve:
#   1. start the daemon on an ephemeral port (--port-file handshake);
#   2. probe the full API surface over real sockets (serve_stress --probe);
#   3. SIGTERM it and assert: clean drain, exit code 0, metrics flushed.
#
# Usage: smoke_test.sh <valentine_serve-binary> <serve_stress-binary>
set -u

SERVE_BIN="${1:?usage: smoke_test.sh <valentine_serve> <serve_stress>}"
STRESS_BIN="${2:?usage: smoke_test.sh <valentine_serve> <serve_stress>}"

WORK_DIR="$(mktemp -d)"
PORT_FILE="$WORK_DIR/port"
METRICS_FILE="$WORK_DIR/metrics.prom"
LOG_FILE="$WORK_DIR/serve.log"

SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  [ -f "$LOG_FILE" ] && sed 's/^/serve_smoke:   log: /' "$LOG_FILE" >&2
  exit 1
}

"$SERVE_BIN" --port 0 --port-file "$PORT_FILE" --workers 2 --queue 8 \
  --drain-ms 2000 --metrics-out "$METRICS_FILE" >"$LOG_FILE" 2>&1 &
SERVER_PID=$!

# Wait for the port-file handshake (daemon is accepting once it exists).
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.1
done
[ -s "$PORT_FILE" ] || fail "port file never appeared"
PORT="$(cat "$PORT_FILE")"

"$STRESS_BIN" --probe "127.0.0.1:$PORT" || fail "API probe failed"

kill -TERM "$SERVER_PID" || fail "could not signal daemon"
DRAIN_EXIT=0
wait "$SERVER_PID" || DRAIN_EXIT=$?
SERVER_PID=""
[ "$DRAIN_EXIT" -eq 0 ] || fail "daemon exited $DRAIN_EXIT after SIGTERM"

[ -s "$METRICS_FILE" ] || fail "metrics were not flushed on drain"
grep -q "valentine_serve_requests_total" "$METRICS_FILE" ||
  fail "flushed metrics lack valentine_serve_requests_total"

echo "serve_smoke: PASS (port $PORT, drained cleanly, metrics flushed)"
exit 0
