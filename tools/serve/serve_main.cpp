// The discovery serving daemon: a DiscoveryService behind the blocking
// HttpServer, wrapped with POSIX signal-driven lifecycle so process
// managers get the contract they expect:
//
//   valentine_serve --port 0 --port-file /tmp/port --workers 4 &
//   curl -fsS "http://127.0.0.1:$(cat /tmp/port)/healthz"
//   kill -TERM %1        # graceful drain: finish/cancel in-flight,
//                        # flush --metrics-out, exit 0
//
// SIGTERM and SIGINT are *blocked* in every thread and received
// synchronously via sigwait() in main — no async-signal-safety
// gymnastics, no self-pipe in the handler; the server's own drain
// machinery does the actual work.
//
// Usage: valentine_serve [--host A] [--port N] [--port-file PATH]
//                        [--workers N] [--queue N] [--drain-ms D]
//                        [--read-timeout-ms D] [--write-timeout-ms D]
//                        [--metrics-out PATH] [--store DIR]
//                        [--access-log PATH] [--retry-after S]
//                        [--trace-buffer N]
//
// --store DIR attaches the persistent artifact store: table
// registrations resolve their sketches/profiles from DIR by content
// fingerprint (building and persisting on miss), so restarts and
// registry rebuilds skip the expensive derivations.
//
// --access-log PATH streams one JSONL line per completed request
// (trace id, route, status, bytes, queue-wait, handler time); the
// request-telemetry spine behind it also powers /statusz and /tracez.
//
// Exits 0 on clean drain, 1 on startup failure, 2 on usage errors.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "io/artifact_store.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "serve/service.h"

namespace valentine {
namespace serve {
namespace {

struct DaemonOptions {
  ServerOptions server;
  std::string port_file;
  std::string metrics_out;
  std::string store_dir;
  std::string access_log;
  size_t trace_buffer = 64;
  double drain_ms = 2000.0;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host A] [--port N] [--port-file PATH] [--workers N]\n"
      "          [--queue N] [--drain-ms D] [--read-timeout-ms D]\n"
      "          [--write-timeout-ms D] [--metrics-out PATH] [--store DIR]\n"
      "          [--access-log PATH] [--retry-after S] [--trace-buffer N]\n",
      argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, DaemonOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) {
      opt->server.host = v;
    } else if (arg == "--port" && (v = next())) {
      opt->server.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--port-file" && (v = next())) {
      opt->port_file = v;
    } else if (arg == "--workers" && (v = next())) {
      opt->server.workers = static_cast<size_t>(std::atol(v));
    } else if (arg == "--queue" && (v = next())) {
      opt->server.queue_capacity = static_cast<size_t>(std::atol(v));
    } else if (arg == "--drain-ms" && (v = next())) {
      opt->drain_ms = std::atof(v);
    } else if (arg == "--read-timeout-ms" && (v = next())) {
      opt->server.read_timeout_ms = std::atoi(v);
    } else if (arg == "--write-timeout-ms" && (v = next())) {
      opt->server.write_timeout_ms = std::atoi(v);
    } else if (arg == "--metrics-out" && (v = next())) {
      opt->metrics_out = v;
    } else if (arg == "--store" && (v = next())) {
      opt->store_dir = v;
    } else if (arg == "--access-log" && (v = next())) {
      opt->access_log = v;
    } else if (arg == "--retry-after" && (v = next())) {
      opt->server.retry_after_s = std::atoi(v);
    } else if (arg == "--trace-buffer" && (v = next())) {
      opt->trace_buffer = static_cast<size_t>(std::atol(v));
    } else {
      return false;
    }
  }
  return true;
}

int RunDaemon(const DaemonOptions& opt) {
  MetricsRegistry metrics;
  metrics.SetHelp("valentine_serve_shed_total",
                  "Connections refused by the admission queue");
  metrics.SetHelp("valentine_serve_requests_total",
                  "Requests handled, by route and HTTP code");

  std::unique_ptr<ArtifactStore> store;
  if (!opt.store_dir.empty()) {
    store = std::make_unique<ArtifactStore>(opt.store_dir);
  }

  ServeTelemetry::Options telemetry_opt;
  telemetry_opt.metrics = &metrics;
  telemetry_opt.trace_buffer_capacity = opt.trace_buffer;
  telemetry_opt.access_log_path = opt.access_log;
  ServeTelemetry telemetry(telemetry_opt);
  if (!telemetry.status().ok()) {
    std::fprintf(stderr, "valentine_serve: %s\n",
                 telemetry.status().message().c_str());
    return 1;
  }

  ServiceOptions service_opt;
  service_opt.metrics = &metrics;
  service_opt.store = store.get();
  service_opt.telemetry = &telemetry;
  service_opt.retry_after_s = opt.server.retry_after_s;
  DiscoveryService service(service_opt);

  ServerOptions server_opt = opt.server;
  server_opt.metrics = &metrics;
  server_opt.telemetry = &telemetry;
  HttpServer server(&service, server_opt);

  // Block the lifecycle signals *before* Start() spawns threads so
  // every worker inherits the mask and sigwait below is the only
  // receiver.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  if (pthread_sigmask(SIG_BLOCK, &mask, nullptr) != 0) {
    std::fprintf(stderr, "valentine_serve: pthread_sigmask failed\n");
    return 1;
  }

  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "valentine_serve: %s\n",
                 started.message().c_str());
    return 1;
  }
  std::printf("valentine_serve: listening on %s:%u (workers=%zu queue=%zu)\n",
              server_opt.host.c_str(), server.port(), server_opt.workers,
              server_opt.queue_capacity);
  std::fflush(stdout);
  if (!opt.port_file.empty()) {
    Status wrote =
        WriteTextFile(std::to_string(server.port()) + "\n", opt.port_file);
    if (!wrote.ok()) {
      std::fprintf(stderr, "valentine_serve: %s\n", wrote.message().c_str());
      server.Shutdown(0.0);
      return 1;
    }
  }

  int sig = 0;
  while (sigwait(&mask, &sig) != 0) {
  }
  std::printf("valentine_serve: received %s, draining (%.0f ms budget)\n",
              sig == SIGTERM ? "SIGTERM" : "SIGINT", opt.drain_ms);
  std::fflush(stdout);
  server.Shutdown(opt.drain_ms);

  if (!opt.metrics_out.empty()) {
    Status wrote =
        WriteTextFile(metrics.RenderPrometheusText(), opt.metrics_out);
    if (!wrote.ok()) {
      std::fprintf(stderr, "valentine_serve: %s\n", wrote.message().c_str());
      return 1;
    }
  }
  std::printf(
      "valentine_serve: drained (admitted=%llu shed=%llu), exiting\n",
      static_cast<unsigned long long>(server.admitted_total()),
      static_cast<unsigned long long>(server.shed_total()));
  return 0;
}

}  // namespace
}  // namespace serve
}  // namespace valentine

int main(int argc, char** argv) {
  valentine::serve::DaemonOptions opt;
  if (!valentine::serve::ParseArgs(argc, argv, &opt)) {
    return valentine::serve::Usage(argv[0]);
  }
  return valentine::serve::RunDaemon(opt);
}
