// A/B benchmark for the shared ProfileCache and the early-exit
// similarity kernels, reproducing the Table IV runtime story: what do
// the instance-based families cost per experiment before and after the
// optimization, on identical inputs, with byte-identical reports?
//
//   baseline   no profile cache; Jaccard-Levenshtein on the full-matrix
//              kNaive kernel (the pre-optimization code path).
//   optimized  one ProfileCache shared across all families (artifacts
//              built once per table, profile build time reported
//              separately) and the default banded kernel.
//
// The tool *asserts* the canonical reports of the two modes are
// byte-identical (and that kConfig-granularity parallel execution
// reproduces sequential bytes) and exits 1 on any divergence — the
// speedup numbers are only meaningful if the scores did not move.
// Micro-kernel timings (full-matrix vs banded Levenshtein, naive vs
// banded FuzzyJaccard) are appended for the kernel-level view.
//
// Usage: bench_report [--rows N] [--out PATH] [--smoke]
//   --rows N   rows per generated source table (default 300)
//   --out P    output JSON path (default BENCH_table4.json)
//   --smoke    CI-sized run: 80 rows, trimmed micro iterations

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/rng.h"
#include "harness/json_export.h"
#include "harness/parallel.h"
#include "knowledge/ontology.h"
#include "matchers/jaccard_levenshtein.h"
#include "text/string_similarity.h"

namespace valentine {
namespace {

struct Options {
  size_t rows = 300;
  std::string out = "BENCH_table4.json";
  bool smoke = false;
};

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string CanonicalJson(std::vector<FamilyPairOutcome> outcomes) {
  for (auto& o : outcomes) o.total_ms = 0.0;
  return ToJson(outcomes);
}

Ontology BenchOntology() {
  Ontology o;
  size_t root = o.AddClass("root", {"entity"});
  o.AddSubclass(root, "person", {"person", "customer", "prospect"});
  o.AddSubclass(root, "address", {"address", "city", "country"});
  o.AddSubclass(root, "finance", {"income", "credit", "value"});
  return o;
}

// The Jaccard-Levenshtein grid on the reference kernel: the exact code
// path the matcher ran before the banded kernel landed.
MethodFamily NaiveKernelJaccardLevenshteinFamily() {
  MethodFamily family{"JaccardLevenshtein", {}};
  for (double th : {0.4, 0.5, 0.6, 0.7, 0.8}) {
    JaccardLevenshteinOptions opt;
    opt.threshold = th;
    opt.kernel = LevenshteinKernel::kNaive;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "th=%.1f", th);
    family.grid.push_back(
        {buf, std::make_shared<JaccardLevenshteinMatcher>(opt)});
  }
  return family;
}

struct FamilyAB {
  std::string name;
  size_t configs = 0;
  double baseline_ms = 0.0;
  double optimized_ms = 0.0;
  bool reports_identical = false;
};

struct MicroResult {
  std::string name;
  double reference_ns = 0.0;
  double optimized_ns = 0.0;
};

// Deterministic corpus of realistic column values: shared prefixes
// (codes), varying suffixes, some pure numbers — the string shapes the
// fabricated datasets produce.
std::vector<std::string> MicroCorpus(size_t n, uint64_t seed) {
  static const char* kPrefixes[] = {"cust_", "ACC-", "2024-", "item",
                                    "", "val_"};
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string s = kPrefixes[rng.Index(6)];
    size_t len = 4 + rng.Index(10);
    for (size_t k = 0; k < len; ++k) {
      s.push_back(static_cast<char>('0' + rng.Index(36) % 10 +
                                    (rng.Bernoulli(0.5) ? 0 : 'a' - '0')));
    }
    out.push_back(std::move(s));
  }
  return out;
}

MicroResult MicroLevenshtein(size_t iters) {
  auto corpus = MicroCorpus(256, 7);
  MicroResult r;
  r.name = "levenshtein_full_vs_banded";
  volatile size_t sink = 0;  // keep the kernels from being optimized out
  double t0 = NowMs();
  for (size_t it = 0; it < iters; ++it) {
    const auto& a = corpus[it % corpus.size()];
    const auto& b = corpus[(it * 7 + 1) % corpus.size()];
    sink += LevenshteinDistance(a, b);
  }
  double t1 = NowMs();
  for (size_t it = 0; it < iters; ++it) {
    const auto& a = corpus[it % corpus.size()];
    const auto& b = corpus[(it * 7 + 1) % corpus.size()];
    size_t bound = std::max(a.size(), b.size()) / 4 + 1;
    sink += LevenshteinWithin(a, b, bound);
  }
  double t2 = NowMs();
  (void)sink;
  r.reference_ns = (t1 - t0) * 1e6 / static_cast<double>(iters);
  r.optimized_ns = (t2 - t1) * 1e6 / static_cast<double>(iters);
  return r;
}

MicroResult MicroFuzzyJaccard(size_t iters) {
  auto a = MicroCorpus(200, 11);
  auto b = MicroCorpus(200, 13);
  MicroResult r;
  r.name = "fuzzy_jaccard_naive_vs_banded";
  volatile double sink = 0.0;
  double t0 = NowMs();
  for (size_t it = 0; it < iters; ++it) {
    sink += FuzzyJaccard(a, b, 0.25, LevenshteinKernel::kNaive);
  }
  double t1 = NowMs();
  for (size_t it = 0; it < iters; ++it) {
    sink += FuzzyJaccard(a, b, 0.25, LevenshteinKernel::kBanded);
  }
  double t2 = NowMs();
  (void)sink;
  r.reference_ns = (t1 - t0) * 1e6 / static_cast<double>(iters);
  r.optimized_ns = (t2 - t1) * 1e6 / static_cast<double>(iters);
  return r;
}

void AppendKV(std::string& json, const char* key, double value,
              bool comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.3f%s", key, value,
                comma ? ", " : "");
  json += buf;
}

int Run(const Options& options) {
  PairSuiteOptions suite_opt;
  suite_opt.row_overlaps = {0.5};
  suite_opt.column_overlaps = {0.5};
  suite_opt.schema_noise_variants = false;
  suite_opt.instance_noise_variants = false;
  suite_opt.seed = 4;
  const auto suite = bench::MakeCombinedSuite(suite_opt, options.rows);
  std::fprintf(stderr, "bench_report: %zu pairs at %zu rows\n", suite.size(),
               options.rows);

  static const Ontology kOntology = BenchOntology();
  struct FamilyPair {
    MethodFamily baseline;
    MethodFamily optimized;
  };
  std::vector<FamilyPair> families;
  families.push_back({NaiveKernelJaccardLevenshteinFamily(),
                      JaccardLevenshteinFamily()});
  families.push_back({DistributionFamily1(), DistributionFamily1()});
  families.push_back({ComaInstancesFamily(), ComaInstancesFamily()});
  families.push_back({SemPropFamily(&kOntology), SemPropFamily(&kOntology)});

  // Baseline pass: no cache, per-experiment inline extraction.
  std::vector<FamilyAB> results;
  std::vector<std::string> baseline_reports;
  for (const auto& fp : families) {
    FamilyAB ab;
    ab.name = fp.baseline.name;
    ab.configs = fp.baseline.grid.size();
    double t0 = NowMs();
    auto outcomes = RunFamilyOnSuite(fp.baseline, suite);
    ab.baseline_ms = NowMs() - t0;
    baseline_reports.push_back(CanonicalJson(std::move(outcomes)));
    results.push_back(ab);
    std::fprintf(stderr, "  baseline  %-20s %8.1f ms\n", ab.name.c_str(),
                 ab.baseline_ms);
  }

  // Optimized pass: profiles built once per table up front (timed
  // separately — every family and configuration amortizes this cost),
  // then each family served from the warm cache.
  ProfileCache cache;
  double t0 = NowMs();
  for (const auto& pair : suite) {
    (void)cache.GetOrBuild(pair.source);
    (void)cache.GetOrBuild(pair.target);
  }
  const double profile_build_ms = NowMs() - t0;
  std::fprintf(stderr, "  profile build %8.1f ms (%zu tables)\n",
               profile_build_ms, cache.size());

  FamilyRunContext run;
  run.profiles = &cache;
  bool all_identical = true;
  for (size_t i = 0; i < families.size(); ++i) {
    double f0 = NowMs();
    auto outcomes = RunFamilyOnSuite(families[i].optimized, suite, run);
    results[i].optimized_ms = NowMs() - f0;
    results[i].reports_identical =
        CanonicalJson(std::move(outcomes)) == baseline_reports[i];
    all_identical = all_identical && results[i].reports_identical;
    std::fprintf(stderr, "  optimized %-20s %8.1f ms (%.2fx)%s\n",
                 results[i].name.c_str(), results[i].optimized_ms,
                 results[i].baseline_ms / results[i].optimized_ms,
                 results[i].reports_identical ? "" : "  REPORT DIVERGED");
  }

  // Determinism cross-check: intra-pair (kConfig) parallel execution
  // with the shared cache must reproduce the baseline bytes too.
  bool parallel_identical = true;
  for (size_t i = 0; i < families.size(); ++i) {
    auto outcomes = RunFamilyOnSuiteParallel(
        families[i].optimized, suite, 2, run, ParallelGranularity::kConfig);
    parallel_identical = parallel_identical &&
                         CanonicalJson(std::move(outcomes)) ==
                             baseline_reports[i];
  }

  const size_t micro_iters = options.smoke ? 2000 : 20000;
  const size_t fuzzy_iters = options.smoke ? 5 : 30;
  std::vector<MicroResult> micro;
  micro.push_back(MicroLevenshtein(micro_iters));
  micro.push_back(MicroFuzzyJaccard(fuzzy_iters));

  double baseline_total = 0.0, optimized_total = 0.0;
  for (const auto& ab : results) {
    baseline_total += ab.baseline_ms;
    optimized_total += ab.optimized_ms;
  }

  std::string json = "{\n  \"benchmark\": \"instance_based_profile_cache_ab\",\n";
  json += "  \"rows\": " + std::to_string(options.rows) + ",\n";
  json += "  \"pairs\": " + std::to_string(suite.size()) + ",\n  ";
  AppendKV(json, "profile_build_ms", profile_build_ms, false);
  json += ",\n  \"families\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& ab = results[i];
    json += "    {\"name\": \"" + ab.name + "\", \"configs\": " +
            std::to_string(ab.configs) + ", ";
    AppendKV(json, "baseline_ms", ab.baseline_ms);
    AppendKV(json, "optimized_ms", ab.optimized_ms);
    AppendKV(json, "speedup", ab.baseline_ms / ab.optimized_ms);
    json += std::string("\"reports_identical\": ") +
            (ab.reports_identical ? "true" : "false") + "}";
    json += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  json += "  ],\n  \"total\": {";
  AppendKV(json, "baseline_ms", baseline_total);
  AppendKV(json, "optimized_ms_including_profile_build",
           optimized_total + profile_build_ms);
  AppendKV(json, "speedup",
           baseline_total / (optimized_total + profile_build_ms), false);
  json += "},\n  \"determinism\": {\"cache_reports_identical\": ";
  json += all_identical ? "true" : "false";
  json += ", \"parallel_config_reports_identical\": ";
  json += parallel_identical ? "true" : "false";
  json += "},\n  \"microkernels\": [\n";
  for (size_t i = 0; i < micro.size(); ++i) {
    json += "    {\"name\": \"" + micro[i].name + "\", ";
    AppendKV(json, "reference_ns_per_op", micro[i].reference_ns);
    AppendKV(json, "optimized_ns_per_op", micro[i].optimized_ns);
    AppendKV(json, "speedup", micro[i].reference_ns / micro[i].optimized_ns,
             false);
    json += (i + 1 < micro.size()) ? "},\n" : "}\n";
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(options.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_report: cannot write %s\n",
                 options.out.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "bench_report: wrote %s\n", options.out.c_str());

  if (!all_identical || !parallel_identical) {
    std::fprintf(stderr,
                 "bench_report: FAIL — optimized reports diverged from "
                 "baseline bytes\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace valentine

int main(int argc, char** argv) {
  valentine::Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      options.rows = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      options.out = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      options.smoke = true;
      options.rows = 80;
    } else {
      std::fprintf(stderr,
                   "usage: bench_report [--rows N] [--out PATH] [--smoke]\n");
      return 2;
    }
  }
  return valentine::Run(options);
}
