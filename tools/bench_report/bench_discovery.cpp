// One-vs-many discovery benchmark: one query table scored against an
// N-table repository, comparing the legacy monolithic path (every
// Match() re-extracts both tables' artifacts from scratch) against the
// Prepare/Score pipeline (the query is prepared once per Find* call and
// repository artifacts are built once and served from the engine's
// ArtifactCache across calls) — the O(N * prepare) -> O(prepare +
// N * score) story of the discovery refactor.
//
// The tool *asserts* that both paths rank byte-identically (table
// order, scores, and evidence, serialized at full precision) on every
// repeat and exits 1 on any divergence — the speedups are only
// meaningful if the results did not move.
//
// Families measured: Distribution (quantile histograms are built in
// Prepare, scored by cheap EMD) and ComaInstances (token profiles in
// Prepare). Matchers whose Score *is* the full pairwise comparison
// (fuzzy Jaccard-Levenshtein) cannot amortize anything here by
// construction; their kernel-level A/B lives in bench_report /
// BENCH_table4.json instead.
//
// Usage: bench_discovery [--tables N] [--rows N] [--repeats R]
//                        [--out PATH] [--smoke]
//   --tables N   repository size (default 24)
//   --rows N     rows per generated table (default 1600 — artifact
//                extraction scales with rows, scoring mostly does not,
//                so small tables understate the pipeline's win)
//   --repeats R  Find* rounds per engine; round 1 is the cold-cache
//                round, later rounds serve warm artifacts (default 5)
//   --smoke      CI-sized run: 20 tables, 300 rows, 2 repeats (sized
//                for the byte-identity assertion, not the speedup)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "datasets/chembl.h"
#include "datasets/opendata.h"
#include "datasets/tpcdi.h"
#include "discovery/discovery.h"
#include "matchers/coma.h"
#include "matchers/distribution_based.h"
#include "matchers/jaccard_levenshtein.h"

namespace valentine {
namespace {

struct Options {
  size_t tables = 24;
  size_t rows = 1600;
  size_t repeats = 5;
  std::string out = "BENCH_discovery.json";
  bool smoke = false;
};

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Full-fidelity serialization of a result list: any divergence in
/// ranking, score, or evidence between the two paths is a byte diff.
std::string Serialize(const std::vector<DiscoveryResult>& results) {
  std::string out;
  for (const DiscoveryResult& r : results) {
    out += r.table_name + "=" + Num(r.score) + "[";
    for (const Match& m : r.evidence) {
      out += m.source.ToString() + "~" + m.target.ToString() + ":" +
             Num(m.score) + ";";
    }
    out += "]\n";
  }
  return out;
}

/// Hides a matcher's pipeline overrides: only MatchWithContext is
/// forwarded, so a DiscoveryEngine built on this wrapper degrades to
/// the pre-refactor monolithic per-pair path.
class MonolithicOnly : public ColumnMatcher {
 public:
  explicit MonolithicOnly(MatcherPtr inner) : inner_(std::move(inner)) {}
  std::string Name() const override { return inner_->Name(); }
  MatcherCategory Category() const override { return inner_->Category(); }
  std::vector<MatchType> Capabilities() const override {
    return inner_->Capabilities();
  }
  [[nodiscard]] Result<MatchResult> MatchWithContext(
      const Table& source, const Table& target,
      const MatchContext& context) const override {
    return inner_->Match(source, target, context);
  }

 private:
  MatcherPtr inner_;
};

/// Deterministic mixed repository: TPC-DI / open-data / ChEMBL shapes
/// round-robin, each with its own seed so no two tables are equal.
void FillRepository(DiscoveryEngine* engine, size_t tables, size_t rows) {
  for (size_t i = 0; i < tables; ++i) {
    Table t;
    uint64_t seed = 1000 + i;
    switch (i % 3) {
      case 0:
        t = MakeTpcdiProspect(rows, seed);
        break;
      case 1:
        t = MakeOpenDataTable(rows, seed);
        break;
      default:
        t = MakeChemblAssays(rows, seed);
        break;
    }
    char name[40];
    std::snprintf(name, sizeof(name), "repo_%03zu", i);
    t.set_name(name);
    Status added = engine->AddTable(std::move(t));
    if (!added.ok()) {
      std::fprintf(stderr, "bench_discovery: AddTable failed: %s\n",
                   added.ToString().c_str());
      std::exit(1);
    }
  }
}

struct FamilyAB {
  std::string name;
  double monolithic_ms = 0.0;
  double prepared_ms = 0.0;
  bool reports_identical = true;
};

MatcherPtr MakeFamily(const std::string& name) {
  if (name == "Distribution") {
    return std::make_unique<DistributionBasedMatcher>();
  }
  if (name == "ComaInstances") {
    ComaOptions opt;
    opt.strategy = ComaStrategy::kInstances;
    return std::make_unique<ComaMatcher>(opt);
  }
  return std::make_unique<JaccardLevenshteinMatcher>();
}

int Run(const Options& options) {
  const Table query = [&] {
    Table q = MakeTpcdiProspect(options.rows, 7);
    q.set_name("query");
    return q;
  }();
  const size_t k = options.tables;  // rank the full repository

  const std::vector<std::string> family_names = {"Distribution",
                                                 "ComaInstances"};
  std::vector<FamilyAB> results;
  bool all_identical = true;

  for (const std::string& family : family_names) {
    DiscoveryOptions mono_opt;
    mono_opt.matcher = std::make_unique<MonolithicOnly>(MakeFamily(family));
    DiscoveryEngine monolithic(std::move(mono_opt));
    FillRepository(&monolithic, options.tables, options.rows);

    DiscoveryOptions prep_opt;
    prep_opt.matcher = MakeFamily(family);
    DiscoveryEngine prepared(std::move(prep_opt));
    FillRepository(&prepared, options.tables, options.rows);

    FamilyAB ab;
    ab.name = family;
    for (size_t r = 0; r < options.repeats; ++r) {
      double t0 = NowMs();
      auto mono_join = monolithic.FindJoinable(query, k);
      auto mono_union = monolithic.FindUnionable(query, k);
      double t1 = NowMs();
      auto prep_join = prepared.FindJoinable(query, k);
      auto prep_union = prepared.FindUnionable(query, k);
      double t2 = NowMs();
      ab.monolithic_ms += t1 - t0;
      ab.prepared_ms += t2 - t1;
      bool identical = Serialize(mono_join) == Serialize(prep_join) &&
                       Serialize(mono_union) == Serialize(prep_union);
      ab.reports_identical = ab.reports_identical && identical;
    }
    all_identical = all_identical && ab.reports_identical;
    std::fprintf(stderr, "  %-20s monolithic %8.1f ms  prepared %8.1f ms "
                 "(%.2fx)%s\n",
                 ab.name.c_str(), ab.monolithic_ms, ab.prepared_ms,
                 ab.monolithic_ms / ab.prepared_ms,
                 ab.reports_identical ? "" : "  REPORT DIVERGED");
    results.push_back(ab);
  }

  double mono_total = 0.0, prep_total = 0.0;
  for (const auto& ab : results) {
    mono_total += ab.monolithic_ms;
    prep_total += ab.prepared_ms;
  }

  std::string json = "{\n  \"benchmark\": \"discovery_one_vs_many_ab\",\n";
  json += "  \"tables\": " + std::to_string(options.tables) + ",\n";
  json += "  \"rows\": " + std::to_string(options.rows) + ",\n";
  json += "  \"repeats\": " + std::to_string(options.repeats) + ",\n";
  json += "  \"families\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& ab = results[i];
    char buf[240];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"monolithic_ms\": %.3f, "
                  "\"prepared_ms\": %.3f, \"speedup\": %.3f, "
                  "\"reports_identical\": %s}%s\n",
                  ab.name.c_str(), ab.monolithic_ms, ab.prepared_ms,
                  ab.monolithic_ms / ab.prepared_ms,
                  ab.reports_identical ? "true" : "false",
                  (i + 1 < results.size()) ? "," : "");
    json += buf;
  }
  char total[200];
  std::snprintf(total, sizeof(total),
                "  ],\n  \"total\": {\"monolithic_ms\": %.3f, "
                "\"prepared_ms\": %.3f, \"speedup\": %.3f},\n",
                mono_total, prep_total, mono_total / prep_total);
  json += total;
  json += std::string("  \"determinism\": {\"reports_identical\": ") +
          (all_identical ? "true" : "false") + "}\n}\n";

  std::FILE* f = std::fopen(options.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_discovery: cannot write %s\n",
                 options.out.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "bench_discovery: wrote %s\n", options.out.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "bench_discovery: FAIL — prepared results diverged from "
                 "monolithic bytes\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace valentine

int main(int argc, char** argv) {
  valentine::Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tables") == 0 && i + 1 < argc) {
      options.tables = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      options.rows = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      options.repeats = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      options.out = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      options.smoke = true;
      options.tables = 20;
      options.rows = 300;
      options.repeats = 2;
    } else {
      std::fprintf(stderr,
                   "usage: bench_discovery [--tables N] [--rows N] "
                   "[--repeats R] [--out PATH] [--smoke]\n");
      return 2;
    }
  }
  return valentine::Run(options);
}
