#!/usr/bin/env python3
"""Kernel perf-regression gate: diff a fresh bench_kernels run against
the committed baseline.

Two comparison regimes, matching what each number can promise:

  * operation counts are bit-deterministic (seeded workloads, exact
    counters), so any mismatch — more ops, fewer ops, an op appearing
    or vanishing — fails the gate outright;
  * ns/op medians are hardware-noisy, so only a fresh/baseline ratio
    above the tolerance band fails (band from --ns-tolerance, else the
    baseline's tolerance.ns_ratio, else 5.0). Speedups never fail: the
    op counts already fence "fast because it stopped doing the work".

A kernel present in the baseline but missing from the fresh run fails
(coverage must not silently shrink); a new kernel only in the fresh run
is reported but passes (the baseline is updated by committing the fresh
file).

Usage:
  perf_gate.py --baseline BENCH_kernels.json --fresh fresh.json \
               [--ns-tolerance R] [--out diff.json]

Exit codes: 0 gate passes, 1 regression detected, 2 usage/input error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"perf_gate: cannot read {path}: {e}\n")
        sys.exit(2)
    if doc.get("schema") != "valentine-bench-kernels/1":
        sys.stderr.write(f"perf_gate: {path}: unrecognized schema "
                         f"{doc.get('schema')!r}\n")
        sys.exit(2)
    if not isinstance(doc.get("kernels"), dict):
        sys.stderr.write(f"perf_gate: {path}: missing 'kernels' object\n")
        sys.exit(2)
    return doc


def compare(baseline, fresh, ns_tolerance):
    """Returns (ok, results) where results is one dict per kernel."""
    results = []
    ok = True
    base_kernels = baseline["kernels"]
    fresh_kernels = fresh["kernels"]

    for name in sorted(base_kernels):
        base = base_kernels[name]
        entry = {"kernel": name}
        if name not in fresh_kernels:
            entry["verdict"] = "missing"
            entry["detail"] = "kernel present in baseline but not in fresh run"
            ok = False
            results.append(entry)
            continue
        cur = fresh_kernels[name]
        failures = []

        base_ops = base.get("ops", {})
        cur_ops = cur.get("ops", {})
        op_diffs = {}
        for op in sorted(set(base_ops) | set(cur_ops)):
            want = int(base_ops.get(op, 0))
            got = int(cur_ops.get(op, 0))
            if want != got:
                op_diffs[op] = {"baseline": want, "fresh": got}
        if op_diffs:
            entry["op_diffs"] = op_diffs
            failures.append(f"op counts diverged ({', '.join(sorted(op_diffs))})")

        base_ns = float(base.get("ns_per_iter", 0.0))
        cur_ns = float(cur.get("ns_per_iter", 0.0))
        entry["ns_baseline"] = base_ns
        entry["ns_fresh"] = cur_ns
        if base_ns > 0.0:
            ratio = cur_ns / base_ns
            entry["ns_ratio"] = round(ratio, 4)
            if ratio > ns_tolerance:
                failures.append(
                    f"ns/iter regressed {ratio:.2f}x (tolerance {ns_tolerance:.2f}x)")

        if failures:
            entry["verdict"] = "fail"
            entry["detail"] = "; ".join(failures)
            ok = False
        else:
            entry["verdict"] = "pass"
        results.append(entry)

    for name in sorted(set(fresh_kernels) - set(base_kernels)):
        results.append({
            "kernel": name,
            "verdict": "new",
            "detail": "kernel only in fresh run; commit the fresh file to adopt it",
        })

    return ok, results


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_kernels.json")
    parser.add_argument("--fresh", required=True,
                        help="bench_kernels output from this build")
    parser.add_argument("--ns-tolerance", type=float, default=None,
                        help="max fresh/baseline ns ratio (default: "
                             "baseline tolerance.ns_ratio, else 5.0)")
    parser.add_argument("--out", default=None,
                        help="write the diff report JSON here (CI artifact)")
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    ns_tolerance = args.ns_tolerance
    if ns_tolerance is None:
        ns_tolerance = float(
            baseline.get("tolerance", {}).get("ns_ratio", 5.0))
    if ns_tolerance <= 0:
        sys.stderr.write("perf_gate: --ns-tolerance must be positive\n")
        return 2

    ok, results = compare(baseline, fresh, ns_tolerance)

    report = {
        "gate": "pass" if ok else "fail",
        "ns_tolerance": ns_tolerance,
        "kernels": results,
    }
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as f:
                json.dump(report, f, indent=2, sort_keys=True)
                f.write("\n")
        except OSError as e:
            sys.stderr.write(f"perf_gate: cannot write {args.out}: {e}\n")
            return 2

    for entry in results:
        line = f"[{entry['verdict']:>7}] {entry['kernel']}"
        if "ns_ratio" in entry:
            line += f"  ns x{entry['ns_ratio']:.2f}"
        if entry.get("detail"):
            line += f"  — {entry['detail']}"
        print(line)
    print(f"perf_gate: {report['gate']} "
          f"({sum(1 for r in results if r['verdict'] == 'pass')} pass, "
          f"{sum(1 for r in results if r['verdict'] in ('fail', 'missing'))} fail, "
          f"tolerance {ns_tolerance:.2f}x)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
