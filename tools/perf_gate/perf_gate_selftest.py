#!/usr/bin/env python3
"""Self-test for perf_gate.

The gate is the regression fence for the kernel rewrites ROADMAP item 2
plans, so it needs its own net: a gate that silently stops failing is
worse than no gate. Each case runs perf_gate.main() in-process against
synthetic baseline/fresh documents (written to a temp dir) and asserts
the exit status and, where it matters, the verdict text. The committed
repo-root BENCH_kernels.json is also checked against itself, which pins
its schema without depending on this machine's timings. Exit status: 0
all cases pass, 1 otherwise.
"""

from __future__ import annotations

import contextlib
import copy
import io
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import perf_gate  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

BASELINE = {
    "schema": "valentine-bench-kernels/1",
    "repeats": 9,
    "tolerance": {"ns_ratio": 5.0},
    "kernels": {
        "levenshtein_full": {
            "ns_per_iter": 100000.0,
            "ops": {"levenshtein_cells": 7042},
        },
        "minhash_build": {
            "ns_per_iter": 2000000.0,
            "ops": {"minhash_hashes": 64000},
        },
    },
}

FAILURES = []


def run_gate(argv):
    out, err = io.StringIO(), io.StringIO()
    try:
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            status = perf_gate.main(argv)
    except SystemExit as e:  # load() exits directly on unreadable input
        status = e.code
    return status, out.getvalue() + err.getvalue()


def expect(name, argv, want_status, want_substring=None):
    status, output = run_gate(argv)
    if status != want_status:
        FAILURES.append(f"{name}: exit {status}, wanted {want_status}\n"
                        f"{output}")
        return
    if want_substring and want_substring not in output:
        FAILURES.append(f"{name}: output lacks {want_substring!r}\n{output}")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="perf_gate_selftest.") as tmp:
        tmpdir = Path(tmp)

        def write(name, doc):
            path = tmpdir / name
            path.write_text(json.dumps(doc), encoding="utf-8")
            return str(path)

        base = write("baseline.json", BASELINE)

        # Identical run: the no-change case must pass.
        expect("identical-passes",
               ["--baseline", base, "--fresh", base], 0, "gate: pass")

        # The committed baseline must parse and gate against itself —
        # pins the schema of the checked-in file.
        committed = str(REPO_ROOT / "BENCH_kernels.json")
        expect("committed-baseline-self-consistent",
               ["--baseline", committed, "--fresh", committed], 0)

        # An injected op-count regression (the --pessimize shape: every
        # count doubled) must fail even though ns stayed put.
        inflated = copy.deepcopy(BASELINE)
        for entry in inflated["kernels"].values():
            entry["ops"] = {k: 2 * v for k, v in entry["ops"].items()}
        expect("op-count-regression-fails",
               ["--baseline", base,
                "--fresh", write("inflated_ops.json", inflated)],
               1, "op counts diverged")

        # Fewer ops is just as suspicious (a kernel that stopped doing
        # the work): exact match cuts both ways.
        deflated = copy.deepcopy(BASELINE)
        deflated["kernels"]["minhash_build"]["ops"]["minhash_hashes"] = 1
        expect("op-count-shrink-fails",
               ["--baseline", base,
                "--fresh", write("deflated_ops.json", deflated)],
               1, "op counts diverged")

        # ns/iter beyond the band fails; inside the band passes; a large
        # speedup passes (ops fence the cheating case).
        slow = copy.deepcopy(BASELINE)
        slow["kernels"]["levenshtein_full"]["ns_per_iter"] = 100000.0 * 6
        expect("ns-regression-fails",
               ["--baseline", base, "--fresh", write("slow.json", slow)],
               1, "ns/iter regressed")
        mild = copy.deepcopy(BASELINE)
        mild["kernels"]["levenshtein_full"]["ns_per_iter"] = 100000.0 * 3
        mild_path = write("mild.json", mild)
        expect("ns-inside-band-passes",
               ["--baseline", base, "--fresh", mild_path], 0)
        fast = copy.deepcopy(BASELINE)
        fast["kernels"]["levenshtein_full"]["ns_per_iter"] = 100.0
        expect("speedup-passes",
               ["--baseline", base, "--fresh", write("fast.json", fast)], 0)

        # --ns-tolerance overrides the baseline's band.
        expect("ns-tolerance-flag-overrides",
               ["--baseline", base, "--fresh", mild_path,
                "--ns-tolerance", "2.0"],
               1, "ns/iter regressed")

        # Coverage must not silently shrink: a kernel vanishing from the
        # fresh run fails; a new kernel only reports.
        shrunk = copy.deepcopy(BASELINE)
        del shrunk["kernels"]["minhash_build"]
        expect("missing-kernel-fails",
               ["--baseline", base, "--fresh", write("shrunk.json", shrunk)],
               1, "missing")
        grown = copy.deepcopy(BASELINE)
        grown["kernels"]["emd_sweep"] = {
            "ns_per_iter": 50.0, "ops": {"emd_sweep_iterations": 64}}
        expect("new-kernel-passes",
               ["--baseline", base, "--fresh", write("grown.json", grown)],
               0, "new")

        # The diff artifact lands on disk with the gate verdict.
        diff_path = tmpdir / "diff.json"
        expect("diff-artifact-written",
               ["--baseline", base,
                "--fresh", write("slow2.json", slow),
                "--out", str(diff_path)],
               1)
        try:
            report = json.loads(diff_path.read_text(encoding="utf-8"))
            if report.get("gate") != "fail":
                FAILURES.append(f"diff-artifact-written: gate field "
                                f"{report.get('gate')!r}, wanted 'fail'")
        except (OSError, json.JSONDecodeError) as e:
            FAILURES.append(f"diff-artifact-written: unreadable diff: {e}")

        # Hostile inputs exit 2, never 0.
        expect("bad-schema-rejected",
               ["--baseline", write("bad.json", {"schema": "nope"}),
                "--fresh", base], 2)
        expect("unreadable-fresh-rejected",
               ["--baseline", base,
                "--fresh", str(tmpdir / "does_not_exist.json")], 2)

    if FAILURES:
        for f in FAILURES:
            print(f"perf_gate_selftest FAIL {f}", file=sys.stderr)
        return 1
    print("perf_gate_selftest: OK (13 cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
