// Observability smoke driver: runs a small traced campaign and writes
// every export the obs layer produces, so CI (and humans) can check the
// determinism contract end to end:
//
//   obs_smoke --fake-clock --threads 1 --trace-out a.json ...   # twice
//   diff the two trace/metrics/report outputs byte-for-byte;
//   obs_smoke --no-obs --report-out plain.json
//   diff plain.json against a traced run's report — identical.
//
// With --fake-clock all timing flows from a non-advancing FakeClock, so
// single-threaded runs serialize byte-identically; without it the real
// steady clock produces a trace worth opening in chrome://tracing.
//
// Usage: obs_smoke [--rows N] [--threads N] [--fake-clock] [--no-obs]
//                  [--trace-out PATH] [--trace-jsonl PATH]
//                  [--metrics-out PATH] [--report-out PATH]
//
// Exits 0 on success, 1 when the campaign or a write failed, 2 on usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "datasets/tpcdi.h"
#include "harness/campaign.h"
#include "harness/json_export.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace valentine {
namespace {

struct SmokeOptions {
  size_t rows = 25;
  size_t threads = 1;
  bool fake_clock = false;
  bool no_obs = false;
  std::string trace_out;
  std::string trace_jsonl;
  std::string metrics_out;
  std::string report_out;
};

/// Two small families keep the run under a second while still covering
/// prepare/score staging and cross-family metrics labels.
std::vector<MethodFamily> SmokeFamilies() {
  std::vector<MethodFamily> families;
  MethodFamily jl = JaccardLevenshteinFamily();
  if (jl.grid.size() > 2) jl.grid.resize(2);
  families.push_back(std::move(jl));
  MethodFamily dist = DistributionFamily1();
  if (dist.grid.size() > 2) dist.grid.resize(2);
  families.push_back(std::move(dist));
  return families;
}

int WriteOrFail(const std::string& text, const std::string& path,
                const char* what) {
  if (path.empty()) return 0;
  Status status = WriteTextFile(text, path);
  if (!status.ok()) {
    std::fprintf(stderr, "obs_smoke: writing %s to %s failed: %s\n", what,
                 path.c_str(), status.message().c_str());
    return 1;
  }
  std::printf("%s: %s (%zu bytes)\n", what, path.c_str(), text.size());
  return 0;
}

int RunSmoke(const SmokeOptions& opt) {
  Table original = MakeTpcdiProspect(opt.rows, 99);
  PairSuiteOptions suite_opt;
  suite_opt.row_overlaps = {0.5};
  suite_opt.column_overlaps = {0.5};
  suite_opt.schema_noise_variants = false;
  suite_opt.instance_noise_variants = false;
  std::vector<DatasetPair> suite = BuildFabricatedSuite(original, suite_opt);

  FakeClock fake_clock;
  Tracer tracer(opt.fake_clock ? &fake_clock : nullptr);
  MetricsRegistry metrics;

  CampaignOptions options;
  options.num_threads = opt.threads;
  if (opt.fake_clock) options.clock = &fake_clock;
  if (!opt.no_obs) {
    options.tracer = &tracer;
    options.metrics = &metrics;
  }
  CampaignReport report = RunCampaignOnSuite(suite, SmokeFamilies(), options);

  std::set<std::string> kinds;
  std::vector<SpanRecord> spans = tracer.Snapshot();
  for (const SpanRecord& span : spans) kinds.insert(span.kind);
  std::printf(
      "campaign: %zu pairs, %zu experiments, %zu failed; %zu spans, "
      "%zu span kinds\n",
      report.num_pairs, report.num_experiments, report.failed_experiments,
      spans.size(), kinds.size());

  int failures = 0;
  failures += WriteOrFail(ToJson(report), opt.report_out, "report");
  if (!opt.no_obs) {
    failures += WriteOrFail(ToChromeTraceJson(spans), opt.trace_out,
                            "chrome trace");
    failures += WriteOrFail(ToTraceJsonl(spans), opt.trace_jsonl,
                            "trace jsonl");
    failures += WriteOrFail(metrics.RenderPrometheusText(), opt.metrics_out,
                            "metrics");
  }
  if (report.num_experiments == 0 || report.failed_experiments != 0) {
    std::fprintf(stderr, "obs_smoke: unexpected campaign outcome\n");
    return 1;
  }
  // A traced run must cover the span taxonomy the docs promise.
  if (!opt.no_obs && kinds.size() < 5) {
    std::fprintf(stderr, "obs_smoke: only %zu span kinds recorded\n",
                 kinds.size());
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace valentine

int main(int argc, char** argv) {
  valentine::SmokeOptions opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--rows") == 0) {
      opt.rows = std::strtoull(next("--rows"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opt.threads = std::strtoull(next("--threads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--fake-clock") == 0) {
      opt.fake_clock = true;
    } else if (std::strcmp(argv[i], "--no-obs") == 0) {
      opt.no_obs = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      opt.trace_out = next("--trace-out");
    } else if (std::strcmp(argv[i], "--trace-jsonl") == 0) {
      opt.trace_jsonl = next("--trace-jsonl");
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      opt.metrics_out = next("--metrics-out");
    } else if (std::strcmp(argv[i], "--report-out") == 0) {
      opt.report_out = next("--report-out");
    } else {
      std::fprintf(stderr,
                   "usage: obs_smoke [--rows N] [--threads N] [--fake-clock] "
                   "[--no-obs] [--trace-out PATH] [--trace-jsonl PATH] "
                   "[--metrics-out PATH] [--report-out PATH]\n");
      return 2;
    }
  }
  if (opt.rows == 0) {
    std::fprintf(stderr, "invalid smoke options\n");
    return 2;
  }
  return valentine::RunSmoke(opt);
}
