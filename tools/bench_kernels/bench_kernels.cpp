// Deterministic kernel baseline driver behind tools/perf_gate.
//
// Runs a fixed, seeded workload per hot kernel family (the same
// primitives bench_micro_primitives times under google-benchmark) and
// emits canonical JSON with two kinds of numbers per kernel:
//
//   * exact operation counts from the opcount layer (DP cells, prefilter
//     hits/misses, hashes, gram emissions, sweep iterations) — these are
//     bit-deterministic, so the gate compares them *exactly*;
//   * the median ns per workload iteration over --repeats runs — noisy
//     by nature, so the gate applies a tolerance band.
//
// The committed BENCH_kernels.json at the repo root is this tool's
// output (plus the tolerance block); CI re-runs the tool and feeds both
// files to tools/perf_gate/perf_gate.py.
//
// Requires an opcount-enabled build (any Debug build, or Release with
// -DVALENTINE_OPCOUNT=ON); exits 3 otherwise so the gate can't silently
// compare empty counts.
//
// --pessimize runs every workload twice per iteration — an honest
// injected regression (2x ops, ~2x ns) used by the gate's selftest and
// by the acceptance check that the gate actually fails.
//
// Usage: bench_kernels [--out PATH] [--repeats N] [--pessimize]
// Exits 0 on success, 1 on I/O failure, 2 on usage, 3 when opcounts
// are compiled out.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "obs/export.h"
#include "obs/opcount.h"
#include "serve/json.h"
#include "stats/emd.h"
#include "stats/histogram.h"
#include "stats/minhash.h"
#include "text/string_similarity.h"

namespace valentine {
namespace {

/// Default upper bound on fresh_ns / baseline_ns before the gate fails.
/// Wide on purpose: ns medians cross machines; the tight fence is the
/// exact op-count match.
constexpr double kDefaultNsRatioTolerance = 5.0;

struct Kernel {
  std::string name;
  std::function<void()> work;
};

/// Deterministic pseudo-words: lowercase, length in [4, 18].
std::vector<std::string> MakeWords(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> words;
  words.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t len = 4 + rng.Index(15);
    std::string w;
    w.reserve(len);
    for (size_t j = 0; j < len; ++j) {
      w.push_back(static_cast<char>('a' + rng.Index(26)));
    }
    words.push_back(std::move(w));
  }
  return words;
}

std::vector<Kernel> MakeKernels() {
  std::vector<Kernel> kernels;

  kernels.push_back({"levenshtein_full", [] {
    std::vector<std::string> a = MakeWords(64, 11);
    std::vector<std::string> b = MakeWords(64, 12);
    size_t acc = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      acc += LevenshteinDistance(a[i], b[i]);
    }
    if (acc == static_cast<size_t>(-1)) std::abort();  // defeat DCE
  }});

  kernels.push_back({"levenshtein_banded", [] {
    std::vector<std::string> a = MakeWords(64, 21);
    std::vector<std::string> b = MakeWords(64, 22);
    size_t acc = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      acc += LevenshteinWithin(a[i], b[i], 3);
    }
    if (acc == static_cast<size_t>(-1)) std::abort();
  }});

  // FuzzyJaccard's banded kernel path: bag-distance prefilter +
  // leftover Levenshtein pairing.
  kernels.push_back({"fuzzy_jaccard", [] {
    std::vector<std::string> a = MakeWords(96, 31);
    std::vector<std::string> b = MakeWords(96, 32);
    double s = FuzzyJaccard(a, b, 0.25, LevenshteinKernel::kBanded);
    if (s < 0.0) std::abort();
  }});

  kernels.push_back({"minhash_build", [] {
    std::vector<std::string> values = MakeWords(1000, 41);
    std::unordered_set<std::string> set(values.begin(), values.end());
    MinHashSignature sig = MinHashSignature::Build(set, 64);
    if (sig.empty_set() && !set.empty()) std::abort();
  }});

  kernels.push_back({"char_ngrams", [] {
    std::vector<std::string> words = MakeWords(256, 51);
    size_t acc = 0;
    for (const std::string& w : words) {
      acc += CharNGrams(w, 3).size();
    }
    if (acc == 0) std::abort();
  }});

  kernels.push_back({"emd_sweep", [] {
    Rng rng(61);
    std::vector<double> a(5000), b(5000);
    for (double& d : a) d = rng.Gaussian(100, 15);
    for (double& d : b) d = rng.Gaussian(110, 20);
    QuantileHistogram ha = QuantileHistogram::Build(a, 32);
    QuantileHistogram hb = QuantileHistogram::Build(b, 32);
    double emd = EmdBetweenHistograms(ha, hb);
    if (emd < 0.0) std::abort();
  }});

  return kernels;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out PATH] [--repeats N] [--pessimize]\n",
               argv0);
  return 2;
}

int Run(int argc, char** argv) {
  std::string out_path;
  int repeats = 9;
  bool pessimize = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--repeats" && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
      if (repeats < 1) repeats = 1;
    } else if (arg == "--pessimize") {
      pessimize = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (!opcount::kEnabled) {
    std::fprintf(stderr,
                 "bench_kernels: opcounts are compiled out in this build; "
                 "configure with -DVALENTINE_OPCOUNT=ON (or build Debug)\n");
    return 3;
  }

  serve::JsonValue kernels_json = serve::JsonValue::Object();
  for (const Kernel& kernel : MakeKernels()) {
    auto iterate = [&] {
      kernel.work();
      if (pessimize) kernel.work();
    };

    // Exact op counts: one iteration bracketed by thread snapshots.
    opcount::Snapshot before = opcount::ThreadSnapshot();
    iterate();
    opcount::Snapshot delta = opcount::ThreadSnapshot().DeltaSince(before);

    // ns/iteration median over the repeats (each timed individually so
    // a single descheduling hit can't poison the estimate).
    std::vector<double> ns;
    ns.reserve(static_cast<size_t>(repeats));
    for (int r = 0; r < repeats; ++r) {
      auto t0 = std::chrono::steady_clock::now();
      iterate();
      auto t1 = std::chrono::steady_clock::now();
      ns.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    }
    std::sort(ns.begin(), ns.end());
    double median = ns[ns.size() / 2];

    serve::JsonValue ops = serve::JsonValue::Object();
    for (opcount::Op op : opcount::AllOps()) {
      uint64_t n = delta.value(op);
      if (n == 0) continue;
      ops.Set(opcount::OpName(op),
              serve::JsonValue::Number(static_cast<double>(n)));
    }
    serve::JsonValue entry = serve::JsonValue::Object();
    entry.Set("ns_per_iter", serve::JsonValue::Number(median));
    entry.Set("ops", std::move(ops));
    kernels_json.Set(kernel.name, std::move(entry));
  }

  serve::JsonValue tolerance = serve::JsonValue::Object();
  tolerance.Set("ns_ratio",
                serve::JsonValue::Number(kDefaultNsRatioTolerance));
  serve::JsonValue doc = serve::JsonValue::Object();
  doc.Set("schema", serve::JsonValue::String("valentine-bench-kernels/1"));
  doc.Set("repeats", serve::JsonValue::Number(repeats));
  doc.Set("tolerance", std::move(tolerance));
  doc.Set("kernels", std::move(kernels_json));

  std::string text = serve::WriteJson(doc) + "\n";
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  Status wrote = WriteTextFile(text, out_path);
  if (!wrote.ok()) {
    std::fprintf(stderr, "bench_kernels: %s\n", wrote.message().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace valentine

int main(int argc, char** argv) { return valentine::Run(argc, argv); }
