# Sanitizer instrumentation for the whole build.
#
# Drive via the VALENTINE_SANITIZE cache variable — a semicolon list of
# sanitizer names understood by the toolchain, e.g.
#
#   cmake -B build/tsan -DVALENTINE_SANITIZE=thread
#   cmake -B build/asan -DVALENTINE_SANITIZE=address;undefined
#
# Normally this is set through CMakePresets.json (`asan-ubsan`, `tsan`).
# Include this module before any add_subdirectory so every target in the
# tree (library, tests, tools) is built instrumented; sanitizers that mix
# instrumented and uninstrumented objects lose coverage (TSan) or crash
# at startup (ASan interceptors).
#
# The presets pair this with CMAKE_BUILD_TYPE=Sanitize: a dedicated
# config whose flags we own here, so neither Release's -O3 (inlines away
# stack frames in reports) nor Debug's -O0 (3-20x sanitizer slowdown on
# top of instrumentation) leaks in.

set(VALENTINE_SANITIZE "" CACHE STRING
    "Semicolon list of sanitizers to build with (e.g. address;undefined or thread)")

# Flags for the custom 'Sanitize' build type: light optimization so the
# suite finishes, full debug info so reports have file:line.
set(CMAKE_C_FLAGS_SANITIZE "-O1 -g" CACHE STRING
    "C flags used by the Sanitize build type")
set(CMAKE_CXX_FLAGS_SANITIZE "-O1 -g" CACHE STRING
    "C++ flags used by the Sanitize build type")
mark_as_advanced(CMAKE_C_FLAGS_SANITIZE CMAKE_CXX_FLAGS_SANITIZE)

if(VALENTINE_SANITIZE)
  if("thread" IN_LIST VALENTINE_SANITIZE AND
     ("address" IN_LIST VALENTINE_SANITIZE OR "leak" IN_LIST VALENTINE_SANITIZE))
    message(FATAL_ERROR
        "VALENTINE_SANITIZE: 'thread' cannot be combined with 'address'/'leak' "
        "(incompatible runtimes); configure separate build trees instead.")
  endif()

  list(JOIN VALENTINE_SANITIZE "," _valentine_fsan)
  set(_valentine_san_flags
      -fsanitize=${_valentine_fsan}
      -fno-omit-frame-pointer
      -fno-sanitize-recover=all)
  add_compile_options(${_valentine_san_flags})
  add_link_options(-fsanitize=${_valentine_fsan})

  message(STATUS "Sanitizers enabled: ${_valentine_fsan}")
endif()
